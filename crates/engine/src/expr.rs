//! Selection predicates.
//!
//! A [`Predicate`] is evaluated in two places:
//!
//! * row-at-a-time against a [`Table`] during exact (non-private) execution;
//! * cell-at-a-time against a histogram view's multi-dimensional domain when
//!   a query is rewritten into a linear query (see [`crate::transform`]).
//!
//! For binned integer attributes a histogram cell "matches" a range
//! predicate if the cell's bin *intersects* the requested range; with unit
//! bins (the default for every dataset in the experiments) this is exact.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::schema::{Attribute, AttributeType};
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// A boolean selection predicate over a single relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// `attribute BETWEEN low AND high` (inclusive) on an integer attribute.
    Range {
        /// The integer attribute being constrained.
        attribute: String,
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
    /// `attribute = value`.
    Equals {
        /// The attribute being constrained.
        attribute: String,
        /// The value it must equal.
        value: Value,
    },
    /// `attribute IN (values…)`.
    InSet {
        /// The attribute being constrained.
        attribute: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Conjunction of sub-predicates.
    And(Vec<Predicate>),
    /// Disjunction of sub-predicates.
    Or(Vec<Predicate>),
    /// Negation of a sub-predicate.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a range predicate.
    #[must_use]
    pub fn range(attribute: &str, low: i64, high: i64) -> Self {
        Predicate::Range {
            attribute: attribute.to_owned(),
            low,
            high,
        }
    }

    /// Convenience constructor for an equality predicate.
    #[must_use]
    pub fn equals(attribute: &str, value: impl Into<Value>) -> Self {
        Predicate::Equals {
            attribute: attribute.to_owned(),
            value: value.into(),
        }
    }

    /// Conjunction of two predicates (flattening nested `And`s).
    #[must_use]
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// The set of attribute names referenced by the predicate.
    #[must_use]
    pub fn attributes(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_attributes(&mut out);
        out
    }

    fn collect_attributes(&self, out: &mut BTreeSet<String>) {
        match self {
            Predicate::True => {}
            Predicate::Range { attribute, .. }
            | Predicate::Equals { attribute, .. }
            | Predicate::InSet { attribute, .. } => {
                out.insert(attribute.clone());
            }
            Predicate::And(children) | Predicate::Or(children) => {
                for c in children {
                    c.collect_attributes(out);
                }
            }
            Predicate::Not(inner) => inner.collect_attributes(out),
        }
    }

    /// Evaluates the predicate against one row of a table.
    pub fn evaluate_row(&self, table: &Table, row: usize) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Range {
                attribute,
                low,
                high,
            } => {
                let v = table.value_at(row, attribute)?;
                Ok(v.as_int().is_some_and(|x| x >= *low && x <= *high))
            }
            Predicate::Equals { attribute, value } => Ok(&table.value_at(row, attribute)? == value),
            Predicate::InSet { attribute, values } => {
                let v = table.value_at(row, attribute)?;
                Ok(values.contains(&v))
            }
            Predicate::And(children) => {
                for c in children {
                    if !c.evaluate_row(table, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Or(children) => {
                for c in children {
                    if c.evaluate_row(table, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Predicate::Not(inner) => Ok(!inner.evaluate_row(table, row)?),
        }
    }

    /// Evaluates the predicate against one histogram cell, described by the
    /// view's attributes and the cell's per-attribute domain indices.
    /// Attributes not present in the view make the predicate unanswerable;
    /// callers (the transform module) must check answerability first — here
    /// an unknown attribute simply evaluates to `false`.
    #[must_use]
    pub fn matches_cell(&self, attrs: &[&Attribute], indices: &[usize]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Range {
                attribute,
                low,
                high,
            } => match lookup(attrs, indices, attribute) {
                Some((attr, idx)) => match &attr.attr_type {
                    AttributeType::Integer { min, bin_width, .. } => {
                        let bin_lo = min + idx as i64 * bin_width;
                        let bin_hi = bin_lo + bin_width - 1;
                        bin_hi >= *low && bin_lo <= *high
                    }
                    AttributeType::Categorical { .. } => false,
                },
                None => false,
            },
            Predicate::Equals { attribute, value } => match lookup(attrs, indices, attribute) {
                Some((attr, idx)) => &attr.value_at(idx) == value,
                None => false,
            },
            Predicate::InSet { attribute, values } => match lookup(attrs, indices, attribute) {
                Some((attr, idx)) => values.contains(&attr.value_at(idx)),
                None => false,
            },
            Predicate::And(children) => children.iter().all(|c| c.matches_cell(attrs, indices)),
            Predicate::Or(children) => children.iter().any(|c| c.matches_cell(attrs, indices)),
            Predicate::Not(inner) => !inner.matches_cell(attrs, indices),
        }
    }
}

fn lookup<'a>(
    attrs: &[&'a Attribute],
    indices: &[usize],
    name: &str,
) -> Option<(&'a Attribute, usize)> {
    attrs
        .iter()
        .position(|a| a.name == name)
        .map(|pos| (attrs[pos], indices[pos]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(17, 90)),
            Attribute::new("sex", AttributeType::categorical(&["Female", "Male"])),
        ]);
        let mut t = Table::new("people", schema);
        for (age, sex) in [(25, "Male"), (40, "Female"), (67, "Female")] {
            t.insert_row(&[Value::Int(age), Value::text(sex)]).unwrap();
        }
        t
    }

    #[test]
    fn range_predicate_on_rows() {
        let t = table();
        let p = Predicate::range("age", 30, 50);
        assert!(!p.evaluate_row(&t, 0).unwrap());
        assert!(p.evaluate_row(&t, 1).unwrap());
        assert!(!p.evaluate_row(&t, 2).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let p = Predicate::range("age", 30, 90).and(Predicate::equals("sex", "Female"));
        assert!(!p.evaluate_row(&t, 0).unwrap());
        assert!(p.evaluate_row(&t, 1).unwrap());
        let not_p = Predicate::Not(Box::new(p));
        assert!(not_p.evaluate_row(&t, 0).unwrap());

        let or = Predicate::Or(vec![
            Predicate::equals("age", 25i64),
            Predicate::equals("age", 67i64),
        ]);
        assert!(or.evaluate_row(&t, 0).unwrap());
        assert!(!or.evaluate_row(&t, 1).unwrap());
    }

    #[test]
    fn and_with_true_is_identity() {
        let p = Predicate::range("age", 0, 10);
        assert_eq!(Predicate::True.and(p.clone()), p);
        assert_eq!(p.clone().and(Predicate::True), p);
    }

    #[test]
    fn attribute_collection() {
        let p = Predicate::range("age", 30, 50).and(Predicate::equals("sex", "Female"));
        let attrs = p.attributes();
        assert!(attrs.contains("age") && attrs.contains("sex"));
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn cell_matching_with_unit_bins_is_exact() {
        let age = Attribute::new("age", AttributeType::integer(17, 90));
        let attrs = vec![&age];
        let p = Predicate::range("age", 20, 29);
        // index 3 -> age 20, index 12 -> age 29, index 13 -> age 30.
        assert!(p.matches_cell(&attrs, &[3]));
        assert!(p.matches_cell(&attrs, &[12]));
        assert!(!p.matches_cell(&attrs, &[13]));
        assert!(!p.matches_cell(&attrs, &[0]));
    }

    #[test]
    fn cell_matching_uses_bin_intersection_for_wide_bins() {
        let hours = Attribute::new("hours", AttributeType::binned_integer(0, 99, 10));
        let attrs = vec![&hours];
        // Bin 2 covers [20, 29]; a range [25, 40] intersects bins 2, 3, 4.
        let p = Predicate::range("hours", 25, 40);
        assert!(p.matches_cell(&attrs, &[2]));
        assert!(p.matches_cell(&attrs, &[4]));
        assert!(!p.matches_cell(&attrs, &[1]));
        assert!(!p.matches_cell(&attrs, &[5]));
    }

    #[test]
    fn cell_matching_unknown_attribute_is_false() {
        let age = Attribute::new("age", AttributeType::integer(17, 90));
        let attrs = vec![&age];
        let p = Predicate::equals("sex", "Male");
        assert!(!p.matches_cell(&attrs, &[0]));
    }

    #[test]
    fn equality_on_categorical_cells() {
        let sex = Attribute::new("sex", AttributeType::categorical(&["Female", "Male"]));
        let attrs = vec![&sex];
        let p = Predicate::equals("sex", "Male");
        assert!(!p.matches_cell(&attrs, &[0]));
        assert!(p.matches_cell(&attrs, &[1]));
    }
}
