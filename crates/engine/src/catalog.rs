//! The view catalog and view selection.
//!
//! The administrator registers a set of views that together can answer all
//! incoming queries (the paper's experiments use one 1-way full-domain
//! histogram per attribute, §6.1.2). Given an incoming query the catalog
//! picks the answerable view with the smallest domain — a small domain
//! means fewer noisy cells contribute to the answer, hence lower error for
//! the same per-bin variance.

use serde::{Deserialize, Serialize};

use crate::database::Database;
use crate::query::Query;
use crate::transform::{transform_in, LinearQuery};
use crate::view::ViewDef;
use crate::{EngineError, Result};

/// A catalog of registered views.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ViewCatalog {
    views: Vec<ViewDef>,
}

impl ViewCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        ViewCatalog { views: Vec::new() }
    }

    /// Builds the paper's default catalog: one full-domain histogram view
    /// per attribute of the given table.
    pub fn one_per_attribute(db: &Database, table: &str) -> Result<Self> {
        let t = db.table(table)?;
        let mut catalog = ViewCatalog::new();
        for attr in t.schema().attributes() {
            catalog.add_view(ViewDef::histogram(
                &format!("{table}.{}", attr.name),
                table,
                &[attr.name.as_str()],
            ));
        }
        Ok(catalog)
    }

    /// Registers a view. Adding a view with an existing name replaces it
    /// (views can be added over time under the water-filling constraint
    /// specification, §5.3.2).
    pub fn add_view(&mut self, view: ViewDef) {
        if let Some(existing) = self.views.iter_mut().find(|v| v.name == view.name) {
            *existing = view;
        } else {
            self.views.push(view);
        }
    }

    /// The registered views.
    #[must_use]
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// Number of registered views.
    #[must_use]
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no views are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Looks up a view by name.
    pub fn view(&self, name: &str) -> Result<&ViewDef> {
        self.views
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| EngineError::UnknownView(name.to_owned()))
    }

    /// Selects the view used to answer a query: among all views the query is
    /// answerable over, the one with the smallest domain. Returns the view
    /// and the transformed linear query.
    pub fn select_view(&self, query: &Query, db: &Database) -> Result<(ViewDef, LinearQuery)> {
        let mut best: Option<(usize, ViewDef, LinearQuery)> = None;
        for view in &self.views {
            if let Some(lq) = transform_in(query, view, db)? {
                let size = view.domain_size(db.table(&view.table)?.schema())?;
                let better = match &best {
                    None => true,
                    Some((best_size, _, _)) => size < *best_size,
                };
                if better {
                    best = Some((size, view.clone(), lq));
                }
            }
        }
        best.map(|(_, v, lq)| (v, lq))
            .ok_or_else(|| EngineError::NotAnswerable(query.describe()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use crate::schema::{Attribute, AttributeType, Schema};
    use crate::table::Table;
    use crate::value::Value;

    fn db() -> Database {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(20, 29)),
            Attribute::new("sex", AttributeType::categorical(&["F", "M"])),
        ]);
        let mut t = Table::new("adult", schema);
        for (age, sex) in [(20, "F"), (25, "M"), (27, "F")] {
            t.insert_row(&[Value::Int(age), Value::text(sex)]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn one_per_attribute_builds_a_view_per_column() {
        let db = db();
        let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
        assert_eq!(catalog.len(), 2);
        assert!(catalog.view("adult.age").is_ok());
        assert!(catalog.view("adult.sex").is_ok());
        assert!(catalog.view("adult.zzz").is_err());
    }

    #[test]
    fn select_view_prefers_the_smallest_answerable_domain() {
        let db = db();
        let mut catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
        // A big 2-way view also answers sex-only queries but should lose to
        // the 1-way sex view (domain 2 < 20).
        catalog.add_view(ViewDef::histogram(
            "adult.age_sex",
            "adult",
            &["age", "sex"],
        ));
        let q = Query::count("adult").filter(Predicate::equals("sex", "F"));
        let (view, lq) = catalog.select_view(&q, &db).unwrap();
        assert_eq!(view.name, "adult.sex");
        assert_eq!(lq.bins_touched(), 1);

        // A query touching both attributes can only use the 2-way view.
        let q2 = Query::count("adult")
            .filter(Predicate::equals("sex", "F"))
            .filter(Predicate::range("age", 20, 24));
        let (view2, _) = catalog.select_view(&q2, &db).unwrap();
        assert_eq!(view2.name, "adult.age_sex");
    }

    #[test]
    fn unanswerable_queries_are_reported() {
        let db = db();
        let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
        // Touches two attributes but only 1-way views exist.
        let q = Query::count("adult")
            .filter(Predicate::equals("sex", "F"))
            .filter(Predicate::range("age", 20, 24));
        assert!(matches!(
            catalog.select_view(&q, &db),
            Err(EngineError::NotAnswerable(_))
        ));
    }

    #[test]
    fn adding_a_view_with_same_name_replaces_it() {
        let mut catalog = ViewCatalog::new();
        catalog.add_view(ViewDef::histogram("v", "adult", &["age"]));
        catalog.add_view(ViewDef::histogram("v", "adult", &["sex"]));
        assert_eq!(catalog.len(), 1);
        assert_eq!(
            catalog.view("v").unwrap().attributes,
            vec!["sex".to_owned()]
        );
    }
}
