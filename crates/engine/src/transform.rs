//! Query answerability and transformation (Definition 6).
//!
//! A query `q` is *answerable* over a histogram view `V` when there exists a
//! linear query `q̂` over the view's cells with `q(D) = q̂(V(D))`. For the
//! query class supported here the transformation is syntactic:
//!
//! * every attribute the query references must be covered by the view;
//! * `COUNT(*) WHERE P` becomes a 0/1 coefficient vector selecting the cells
//!   whose domain values satisfy `P`;
//! * `SUM(a) WHERE P` additionally multiplies each selected cell by the
//!   numeric value of `a` in that cell;
//! * `AVG` and `GROUP BY` are not answerable as a *single* linear query and
//!   are decomposed by the system layer (AVG = SUM / COUNT), so `transform`
//!   returns `None` for them.

use serde::{Deserialize, Serialize};

use crate::database::Database;
use crate::query::{AggregateKind, Query};
use crate::schema::Schema;
use crate::view::{flat_index, MultiIndexIter, ViewDef};
use crate::Result;

/// A linear query over a view's histogram cells: a sparse coefficient
/// vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearQuery {
    /// The view the coefficients are defined over.
    pub view: String,
    /// `(flat cell index, coefficient)` pairs, sorted by cell index.
    pub coefficients: Vec<(usize, f64)>,
    /// Total number of cells of the view (the dense dimension).
    pub view_cells: usize,
}

impl LinearQuery {
    /// Number of cells with non-zero coefficient — the `bins touched` factor
    /// used when translating a query-level accuracy bound into a per-bin
    /// bound (Algorithm 2, line 9).
    #[must_use]
    pub fn bins_touched(&self) -> usize {
        self.coefficients.len()
    }

    /// Evaluates the linear query against a dense cell-count vector.
    #[must_use]
    pub fn evaluate(&self, counts: &[f64]) -> f64 {
        self.coefficients
            .iter()
            .map(|&(idx, coeff)| coeff * counts[idx])
            .sum()
    }

    /// The variance of the linear query's answer when every cell carries
    /// independent noise of variance `per_bin_variance`.
    #[must_use]
    pub fn answer_variance(&self, per_bin_variance: f64) -> f64 {
        let coeff_sq: f64 = self.coefficients.iter().map(|&(_, c)| c * c).sum();
        coeff_sq * per_bin_variance
    }
}

/// Attempts to rewrite `query` into a linear query over `view`.
///
/// Returns `Ok(None)` when the query is well formed but not answerable over
/// this particular view (wrong table, uncovered attribute, or an aggregate
/// shape that needs decomposition).
pub fn transform(query: &Query, view: &ViewDef, schema: &Schema) -> Result<Option<LinearQuery>> {
    if query.table != view.table {
        return Ok(None);
    }
    if !query.group_by.is_empty() {
        return Ok(None);
    }
    if matches!(query.aggregate, AggregateKind::Avg(_)) {
        return Ok(None);
    }
    if !view.covers(&query.referenced_attributes()) {
        return Ok(None);
    }

    let attrs: Vec<_> = view
        .attributes
        .iter()
        .map(|a| schema.attribute(a))
        .collect::<Result<Vec<_>>>()?;
    let dims = view.dimensions(schema)?;
    let sum_position = match &query.aggregate {
        AggregateKind::Count => None,
        AggregateKind::Sum(a) => Some(
            view.attributes
                .iter()
                .position(|v| v == a)
                .expect("covered attribute"),
        ),
        AggregateKind::Avg(_) => unreachable!("handled above"),
    };

    let mut coefficients = Vec::new();
    for cell in MultiIndexIter::new(&dims) {
        if !query.predicate.matches_cell(&attrs, &cell) {
            continue;
        }
        let coeff = match sum_position {
            None => 1.0,
            Some(pos) => match attrs[pos].numeric_at(cell[pos]) {
                Some(v) => v,
                // SUM over a categorical attribute is not answerable.
                None => return Ok(None),
            },
        };
        if coeff != 0.0 {
            coefficients.push((flat_index(&dims, &cell), coeff));
        }
    }

    Ok(Some(LinearQuery {
        view: view.name.clone(),
        coefficients,
        view_cells: dims.iter().product(),
    }))
}

/// Convenience wrapper resolving the schema through the database.
pub fn transform_in(query: &Query, view: &ViewDef, db: &Database) -> Result<Option<LinearQuery>> {
    let table = db.table(&view.table)?;
    transform(query, view, table.schema())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::expr::Predicate;
    use crate::histogram::Histogram;
    use crate::schema::{Attribute, AttributeType, Schema};
    use crate::table::Table;
    use crate::value::Value;

    fn db() -> Database {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(20, 29)),
            Attribute::new("sex", AttributeType::categorical(&["F", "M"])),
            Attribute::new("hours", AttributeType::integer(1, 10)),
        ]);
        let mut t = Table::new("adult", schema);
        let rows = [
            (20, "F", 5),
            (22, "M", 8),
            (25, "F", 3),
            (25, "M", 10),
            (29, "F", 7),
            (23, "F", 2),
        ];
        for (age, sex, hours) in rows {
            t.insert_row(&[Value::Int(age), Value::text(sex), Value::Int(hours)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    fn answer_via_view(q: &Query, view: &ViewDef, db: &Database) -> Option<f64> {
        let lq = transform_in(q, view, db).unwrap()?;
        let h = Histogram::materialize(db, view).unwrap();
        Some(lq.evaluate(&h.counts))
    }

    #[test]
    fn range_count_matches_direct_execution() {
        let db = db();
        let view = ViewDef::histogram("v_age", "adult", &["age"]);
        let q = Query::range_count("adult", "age", 22, 26);
        let via_view = answer_via_view(&q, &view, &db).unwrap();
        let direct = execute(&db, &q).unwrap().scalar().unwrap();
        assert_eq!(via_view, direct);
        assert_eq!(via_view, 4.0);
    }

    #[test]
    fn multi_attribute_predicate_over_two_way_view() {
        let db = db();
        let view = ViewDef::histogram("v_age_sex", "adult", &["age", "sex"]);
        let q = Query::count("adult")
            .filter(Predicate::range("age", 20, 25))
            .filter(Predicate::equals("sex", "F"));
        let via_view = answer_via_view(&q, &view, &db).unwrap();
        let direct = execute(&db, &q).unwrap().scalar().unwrap();
        assert_eq!(via_view, direct);
        assert_eq!(via_view, 3.0);
    }

    #[test]
    fn sum_query_uses_value_coefficients() {
        let db = db();
        let view = ViewDef::histogram("v_hours", "adult", &["hours"]);
        let q = Query::sum("adult", "hours");
        let via_view = answer_via_view(&q, &view, &db).unwrap();
        let direct = execute(&db, &q).unwrap().scalar().unwrap();
        assert_eq!(via_view, direct);
        assert_eq!(via_view, 35.0);
    }

    #[test]
    fn uncovered_attribute_makes_query_unanswerable() {
        let db = db();
        let view = ViewDef::histogram("v_age", "adult", &["age"]);
        let q = Query::count("adult").filter(Predicate::equals("sex", "F"));
        assert!(transform_in(&q, &view, &db).unwrap().is_none());
    }

    #[test]
    fn wrong_table_group_by_and_avg_are_not_single_linear_queries() {
        let db = db();
        let view = ViewDef::histogram("v_age", "adult", &["age"]);
        let other_table = Query::count("tpch");
        assert!(transform_in(&other_table, &view, &db).is_ok());
        assert!(transform_in(&other_table, &view, &db).unwrap().is_none());

        let grouped = Query::count("adult").group_by(&["age"]);
        assert!(transform_in(&grouped, &view, &db).unwrap().is_none());

        let avg = Query::avg("adult", "age");
        assert!(transform_in(&avg, &view, &db).unwrap().is_none());
    }

    #[test]
    fn bins_touched_and_variance_propagation() {
        let db = db();
        let view = ViewDef::histogram("v_age", "adult", &["age"]);
        let q = Query::range_count("adult", "age", 22, 26);
        let lq = transform_in(&q, &view, &db).unwrap().unwrap();
        assert_eq!(lq.bins_touched(), 5);
        // Unit coefficients: query variance = bins * per-bin variance.
        assert_eq!(lq.answer_variance(2.0), 10.0);
        assert_eq!(lq.view_cells, 10);
    }

    #[test]
    fn full_count_touches_every_bin() {
        let db = db();
        let view = ViewDef::histogram("v_age", "adult", &["age"]);
        let lq = transform_in(&Query::count("adult"), &view, &db)
            .unwrap()
            .unwrap();
        assert_eq!(lq.bins_touched(), 10);
        let h = Histogram::materialize(&db, &view).unwrap();
        assert_eq!(lq.evaluate(&h.counts), 6.0);
    }
}
