//! A database instance: a named collection of tables.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::{EngineError, Result};

/// An in-memory database instance.
///
/// Instances are **epoch-versioned**: the database carries the id of the
/// last sealed update epoch (0 = the immutable setup state). The dynamic
/// data subsystem (`dprov-delta`) mutates tables through
/// [`Database::table_mut`] / [`crate::table::Table::apply_encoded_updates`]
/// and advances the epoch once per sealed batch set, so every consumer can
/// tag the state it answered against.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    #[serde(default)]
    epoch: u64,
}

impl Database {
    /// Creates an empty database (at epoch 0).
    #[must_use]
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
            epoch: 0,
        }
    }

    /// The id of the last sealed update epoch this instance reflects.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch id after a sealed batch of updates has been
    /// applied, returning the new epoch.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Sets the epoch id directly (recovery replays use this to land on
    /// the exact pre-crash epoch).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Registers a table, replacing any previous table with the same name.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_owned(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_owned()))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_owned()))
    }

    /// Names of all registered tables.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Total number of rows across all tables (used to cap the system-wide
    /// delta at `1 / |D|` as the paper recommends).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::num_rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType, Schema};
    use crate::value::Value;

    fn make_table(name: &str, rows: usize) -> Table {
        let schema = Schema::new(vec![Attribute::new("x", AttributeType::integer(0, 9))]);
        let mut t = Table::new(name, schema);
        for i in 0..rows {
            t.insert_row(&[Value::Int((i % 10) as i64)]).unwrap();
        }
        t
    }

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        db.add_table(make_table("a", 5));
        db.add_table(make_table("b", 7));
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(db.table("a").unwrap().num_rows(), 5);
        assert!(db.table("c").is_err());
        assert_eq!(db.total_rows(), 12);
    }

    #[test]
    fn epoch_starts_at_zero_and_advances() {
        let mut db = Database::new();
        assert_eq!(db.epoch(), 0);
        assert_eq!(db.advance_epoch(), 1);
        assert_eq!(db.advance_epoch(), 2);
        db.set_epoch(7);
        assert_eq!(db.epoch(), 7);
    }

    #[test]
    fn replacing_a_table_overwrites_it() {
        let mut db = Database::new();
        db.add_table(make_table("a", 5));
        db.add_table(make_table("a", 9));
        assert_eq!(db.table("a").unwrap().num_rows(), 9);
        assert_eq!(db.total_rows(), 9);
    }
}
