//! # `dprov-engine` — relational and view substrate for DProvDB
//!
//! The original DProvDB runs on PostgreSQL through the Chorus query
//! framework. This crate replaces that stack with a self-contained,
//! in-memory columnar engine that provides exactly the functionality the
//! DProvDB middleware needs:
//!
//! * a typed, finite-domain [`schema`] and columnar [`table`] storage;
//! * an aggregate [`query`] AST (COUNT / SUM / AVG with range and equality
//!   predicates and GROUP BY) with exact evaluation in [`exec`] and a small
//!   SQL front end in [`sql`];
//! * [`view`] definitions — full-domain histograms (k-way marginals) and
//!   clipped histograms — materialised into [`histogram::Histogram`]s;
//! * the query-answerability [`transform`] of Definition 6, rewriting an
//!   aggregate query into a linear query over a view;
//! * noisy [`synopsis::Synopsis`] objects that answer linear queries;
//! * a [`catalog::ViewCatalog`] that picks the view used to answer each
//!   incoming query;
//! * synthetic [`datagen`] generators standing in for the UCI Adult and
//!   TPC-H datasets used in the paper's evaluation.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
pub mod database;
pub mod datagen;
pub mod exec;
pub mod expr;
pub mod group;
pub mod histogram;
pub mod query;
pub mod schema;
pub mod sql;
pub mod star;
pub mod synopsis;
pub mod table;
pub mod transform;
pub mod value;
pub mod view;

/// Errors produced by the relational engine.
///
/// Marked `#[non_exhaustive]`: the query class grows over time, and new
/// failure modes must not break downstream matches or the stable
/// `dprov-api` error codes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced attribute does not exist in the schema.
    UnknownAttribute(String),
    /// A value does not belong to an attribute's domain.
    ValueOutOfDomain {
        /// The attribute whose domain was violated.
        attribute: String,
        /// A rendering of the offending value.
        value: String,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// The query cannot be answered over any view in the catalog.
    NotAnswerable(String),
    /// A view with this name already exists / does not exist.
    UnknownView(String),
    /// The SQL text could not be parsed.
    SqlParse(String),
    /// The query is malformed (e.g. SUM over a categorical attribute).
    InvalidQuery(String),
    /// A star-schema declaration is malformed (e.g. widened attribute
    /// names collide).
    InvalidStarSchema(String),
    /// Two dimension rows carry the same key value, so the join is not
    /// well defined.
    DuplicateDimensionKey {
        /// The dimension table with the duplicated key.
        dimension: String,
        /// A rendering of the duplicated key value.
        value: String,
    },
    /// A fact row's foreign-key value has no matching dimension row.
    ForeignKeyViolation {
        /// The fact table holding the dangling key.
        table: String,
        /// The foreign-key attribute.
        attribute: String,
        /// A rendering of the dangling key value.
        value: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownAttribute(a) => write!(f, "unknown attribute: {a}"),
            EngineError::ValueOutOfDomain { attribute, value } => {
                write!(
                    f,
                    "value {value} outside the domain of attribute {attribute}"
                )
            }
            EngineError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, found {found}"
                )
            }
            EngineError::NotAnswerable(q) => write!(f, "query not answerable over any view: {q}"),
            EngineError::UnknownView(v) => write!(f, "unknown view: {v}"),
            EngineError::SqlParse(msg) => write!(f, "SQL parse error: {msg}"),
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            EngineError::InvalidStarSchema(msg) => write!(f, "invalid star schema: {msg}"),
            EngineError::DuplicateDimensionKey { dimension, value } => {
                write!(f, "duplicate key {value} in dimension table {dimension}")
            }
            EngineError::ForeignKeyViolation {
                table,
                attribute,
                value,
            } => {
                write!(
                    f,
                    "foreign key {table}.{attribute} = {value} has no matching dimension row"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
