//! GROUP BY queries over view attributes.
//!
//! The full-domain histogram views the system materialises *are* group-bys:
//! a histogram over `(a, b)` holds one exact cell per `(a, b)` domain
//! combination. [`GroupByQuery`] exposes that structure to analysts: it asks
//! for one aggregate per combination of the grouping attributes' domains
//! ("GROUP BY*" semantics — every combination appears in the output,
//! including empty groups, so the output shape is data-independent and safe
//! to release under DP).
//!
//! The contract that makes grouped answering auditable is the **oracle
//! decomposition**: a `GroupByQuery` is *defined* as the sequence of scalar
//! queries produced by [`GroupByQuery::scalar_queries`], one per group cell
//! in canonical enumeration order ([`MultiIndexIter`] — row-major, last
//! grouping attribute fastest). Any optimised evaluation path (one-pass
//! histogram reads, grouped gathers over domain maps) must produce answers
//! bit-identical to running those scalar queries one by one.

use serde::{Deserialize, Serialize};

use crate::expr::Predicate;
use crate::query::{AggregateKind, Query};
use crate::schema::Schema;
use crate::value::Value;
use crate::view::MultiIndexIter;
use crate::{EngineError, Result};

/// An aggregate query grouped by one or more finite-domain attributes.
///
/// Unlike [`Query`]'s `group_by` field (used only for exact evaluation in
/// [`crate::exec`]), a `GroupByQuery` is the admission-facing form: each
/// group cell is priced and released individually through the normal
/// budget path, in the canonical order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupByQuery {
    /// The relation being queried.
    pub table: String,
    /// Grouping attributes, in output-ordering significance (first is the
    /// slowest-varying dimension of the canonical enumeration).
    pub group_cols: Vec<String>,
    /// The aggregate computed per group.
    pub aggregate: AggregateKind,
    /// Selection predicate applied before grouping.
    pub predicate: Predicate,
}

impl GroupByQuery {
    /// A grouped `COUNT(*)`.
    #[must_use]
    pub fn count<S: AsRef<str>>(table: &str, group_cols: &[S]) -> Self {
        GroupByQuery {
            table: table.to_owned(),
            group_cols: group_cols.iter().map(|s| s.as_ref().to_owned()).collect(),
            aggregate: AggregateKind::Count,
            predicate: Predicate::True,
        }
    }

    /// A grouped `SUM(attribute)`.
    #[must_use]
    pub fn sum<S: AsRef<str>>(table: &str, attribute: &str, group_cols: &[S]) -> Self {
        GroupByQuery {
            table: table.to_owned(),
            group_cols: group_cols.iter().map(|s| s.as_ref().to_owned()).collect(),
            aggregate: AggregateKind::Sum(attribute.to_owned()),
            predicate: Predicate::True,
        }
    }

    /// Adds (conjoins) a predicate.
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = std::mem::replace(&mut self.predicate, Predicate::True).and(predicate);
        self
    }

    /// Validates the grouping columns against a schema and returns their
    /// positions. Grouping must be over at least one attribute and no
    /// attribute may repeat.
    pub fn group_positions(&self, schema: &Schema) -> Result<Vec<usize>> {
        if self.group_cols.is_empty() {
            return Err(EngineError::InvalidQuery(
                "GROUP BY requires at least one grouping attribute".to_owned(),
            ));
        }
        let mut positions = Vec::with_capacity(self.group_cols.len());
        for (i, col) in self.group_cols.iter().enumerate() {
            if self.group_cols[..i].contains(col) {
                return Err(EngineError::InvalidQuery(format!(
                    "duplicate grouping attribute {col}"
                )));
            }
            positions.push(schema.position(col)?);
        }
        Ok(positions)
    }

    /// Domain sizes of the grouping attributes, in `group_cols` order.
    pub fn group_sizes(&self, schema: &Schema) -> Result<Vec<usize>> {
        Ok(self
            .group_positions(schema)?
            .into_iter()
            .map(|p| schema.attributes()[p].domain_size())
            .collect())
    }

    /// Number of group cells (product of the grouping domains).
    pub fn num_groups(&self, schema: &Schema) -> Result<usize> {
        Ok(self.group_sizes(schema)?.iter().product())
    }

    /// Group keys in canonical enumeration order (row-major over the
    /// grouping domains, last attribute fastest).
    pub fn group_keys(&self, schema: &Schema) -> Result<Vec<Vec<Value>>> {
        let positions = self.group_positions(schema)?;
        let sizes: Vec<usize> = positions
            .iter()
            .map(|&p| schema.attributes()[p].domain_size())
            .collect();
        Ok(MultiIndexIter::new(&sizes)
            .map(|cell| {
                positions
                    .iter()
                    .zip(&cell)
                    .map(|(&p, &i)| schema.attributes()[p].value_at(i))
                    .collect()
            })
            .collect())
    }

    /// The scalar query that defines one group cell: the base predicate
    /// conjoined with an equality selection per grouping attribute.
    ///
    /// `indices` are domain indices into the grouping attributes, in
    /// `group_cols` order. This is the *oracle*: grouped answering is
    /// correct iff it is bit-identical to running these queries one by one.
    pub fn group_query(&self, schema: &Schema, indices: &[usize]) -> Result<Query> {
        if indices.len() != self.group_cols.len() {
            return Err(EngineError::InvalidQuery(format!(
                "group index arity mismatch: {} grouping attributes, {} indices",
                self.group_cols.len(),
                indices.len()
            )));
        }
        let mut query = Query {
            table: self.table.clone(),
            aggregate: self.aggregate.clone(),
            predicate: self.predicate.clone(),
            group_by: Vec::new(),
        };
        for (col, &idx) in self.group_cols.iter().zip(indices) {
            let attr = schema.attribute(col)?;
            if idx >= attr.domain_size() {
                return Err(EngineError::ValueOutOfDomain {
                    attribute: col.clone(),
                    value: format!("domain index {idx}"),
                });
            }
            query = query.filter(Predicate::equals(col, attr.value_at(idx)));
        }
        Ok(query)
    }

    /// All per-group scalar queries in canonical enumeration order.
    pub fn scalar_queries(&self, schema: &Schema) -> Result<Vec<Query>> {
        let sizes = self.group_sizes(schema)?;
        MultiIndexIter::new(&sizes)
            .map(|cell| self.group_query(schema, &cell))
            .collect()
    }

    /// The equivalent grouped [`Query`] for exact evaluation via
    /// [`crate::exec::execute`], whose output rows follow the same
    /// canonical order.
    #[must_use]
    pub fn as_grouped_query(&self) -> Query {
        Query {
            table: self.table.clone(),
            aggregate: self.aggregate.clone(),
            predicate: self.predicate.clone(),
            group_by: self.group_cols.clone(),
        }
    }

    /// All attributes the query touches (predicate + aggregate target +
    /// grouping), used for view selection and micro-batch keying.
    #[must_use]
    pub fn referenced_attributes(&self) -> Vec<String> {
        self.as_grouped_query().referenced_attributes()
    }

    /// A short human-readable rendering.
    #[must_use]
    pub fn describe(&self) -> String {
        self.as_grouped_query().describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::exec::execute;
    use crate::schema::{Attribute, AttributeType};
    use crate::table::Table;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("age", AttributeType::integer(17, 20)),
            Attribute::new("sex", AttributeType::categorical(&["Female", "Male"])),
            Attribute::new("hours", AttributeType::integer(1, 3)),
        ])
    }

    fn db() -> Database {
        let mut t = Table::new("adult", schema());
        for (age, sex, hours) in [
            (17, "Male", 1),
            (18, "Female", 2),
            (18, "Male", 3),
            (20, "Female", 1),
        ] {
            t.insert_row(&[Value::Int(age), Value::text(sex), Value::Int(hours)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn canonical_order_is_row_major_last_fastest() {
        let q = GroupByQuery::count("adult", &["age", "sex"]);
        let keys = q.group_keys(&schema()).unwrap();
        assert_eq!(keys.len(), 8);
        assert_eq!(keys[0], vec![Value::Int(17), Value::text("Female")]);
        assert_eq!(keys[1], vec![Value::Int(17), Value::text("Male")]);
        assert_eq!(keys[2], vec![Value::Int(18), Value::text("Female")]);
        assert_eq!(keys[7], vec![Value::Int(20), Value::text("Male")]);
    }

    #[test]
    fn scalar_queries_match_grouped_execute() {
        let db = db();
        let q = GroupByQuery::count("adult", &["sex"]).filter(Predicate::range("age", 17, 18));
        let grouped = execute(&db, &q.as_grouped_query()).unwrap();
        let scalars = q.scalar_queries(&schema()).unwrap();
        assert_eq!(grouped.rows.len(), scalars.len());
        for (row, scalar) in grouped.rows.iter().zip(&scalars) {
            let direct = execute(&db, scalar).unwrap().scalar().unwrap();
            assert_eq!(row.1, direct);
        }
    }

    #[test]
    fn sum_decomposition_matches() {
        let db = db();
        let q = GroupByQuery::sum("adult", "hours", &["age"]);
        let grouped = execute(&db, &q.as_grouped_query()).unwrap();
        for (cell, scalar) in q.scalar_queries(&schema()).unwrap().iter().enumerate() {
            let direct = execute(&db, scalar).unwrap().scalar().unwrap();
            assert_eq!(grouped.rows[cell].1, direct);
        }
    }

    #[test]
    fn validation_rejects_bad_grouping() {
        let s = schema();
        assert!(matches!(
            GroupByQuery::count("adult", &[] as &[&str]).group_positions(&s),
            Err(EngineError::InvalidQuery(_))
        ));
        assert!(matches!(
            GroupByQuery::count("adult", &["sex", "sex"]).group_positions(&s),
            Err(EngineError::InvalidQuery(_))
        ));
        assert!(matches!(
            GroupByQuery::count("adult", &["salary"]).group_positions(&s),
            Err(EngineError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn group_query_bounds_checked() {
        let q = GroupByQuery::count("adult", &["sex"]);
        assert!(q.group_query(&schema(), &[2]).is_err());
        assert!(q.group_query(&schema(), &[0, 0]).is_err());
    }

    #[test]
    fn describe_and_attrs() {
        let q = GroupByQuery::count("adult", &["sex"]).filter(Predicate::range("age", 20, 30));
        assert_eq!(q.describe(), "COUNT(*) FROM adult GROUP BY sex");
        let attrs = q.referenced_attributes();
        assert!(attrs.contains(&"age".to_owned()) && attrs.contains(&"sex".to_owned()));
    }
}
