//! Synthetic dataset generators.
//!
//! The paper evaluates on the UCI Adult census dataset and TPC-H SF-1. Both
//! are replaced here by schema-faithful synthetic generators (see DESIGN.md
//! §1 for the substitution argument): every mechanism in DProvDB is
//! data-independent Gaussian noise over histogram counts, so what matters
//! for reproducing the evaluation is the *schema* (attribute domains and
//! their sizes) and the dataset cardinality, both of which the generators
//! match; the concrete joint distribution only shifts the true counts.

pub mod adult;
pub mod tpch;

pub use adult::{adult_database, adult_schema, ADULT_DEFAULT_ROWS, ADULT_TABLE};
pub use tpch::{tpch_database, tpch_lineitem_schema, TPCH_DEFAULT_ROWS, TPCH_TABLE};

use rand::rngs::StdRng;
use rand::Rng;

/// Samples an index in `[0, weights.len())` proportionally to `weights`.
pub(crate) fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

/// Samples an integer from a clamped, discretised normal distribution —
/// used for quasi-realistic age / hours / quantity marginals.
pub(crate) fn clamped_normal(rng: &mut StdRng, mean: f64, std_dev: f64, min: i64, max: i64) -> i64 {
    // Box–Muller from two uniforms; only one value needed per call.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let v = (mean + std_dev * z).round() as i64;
    v.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(weighted_index(&mut rng, &weights), 1);
        }
        let weights = [1.0, 1.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert!(counts[0] > 4_000 && counts[1] > 4_000);
    }

    #[test]
    fn clamped_normal_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = clamped_normal(&mut rng, 40.0, 60.0, 17, 90);
            assert!((17..=90).contains(&v));
        }
    }
}
