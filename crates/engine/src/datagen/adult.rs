//! Synthetic stand-in for the UCI Adult census dataset.
//!
//! Matches the Adult schema the paper queries (15 attributes, 45,222 usable
//! rows): demographic attributes with their real domain sizes and marginals
//! loosely matching the published dataset statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::database::Database;
use crate::schema::{Attribute, AttributeType, Schema};
use crate::table::Table;

use super::{clamped_normal, weighted_index};

/// The table name used by the Adult workloads.
pub const ADULT_TABLE: &str = "adult";

/// Default number of rows (the size of the cleaned UCI Adult dataset used by
/// the paper).
pub const ADULT_DEFAULT_ROWS: usize = 45_222;

const WORKCLASS: &[&str] = &[
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "Local-gov",
    "State-gov",
    "Without-pay",
    "Never-worked",
];
const EDUCATION: &[&str] = &[
    "Bachelors",
    "Some-college",
    "11th",
    "HS-grad",
    "Prof-school",
    "Assoc-acdm",
    "Assoc-voc",
    "9th",
    "7th-8th",
    "12th",
    "Masters",
    "1st-4th",
    "10th",
    "Doctorate",
    "5th-6th",
    "Preschool",
];
const MARITAL: &[&str] = &[
    "Married-civ-spouse",
    "Divorced",
    "Never-married",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
    "Married-AF-spouse",
];
const OCCUPATION: &[&str] = &[
    "Tech-support",
    "Craft-repair",
    "Other-service",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
    "Handlers-cleaners",
    "Machine-op-inspct",
    "Adm-clerical",
    "Farming-fishing",
    "Transport-moving",
    "Priv-house-serv",
    "Protective-serv",
    "Armed-Forces",
];
const RELATIONSHIP: &[&str] = &[
    "Wife",
    "Own-child",
    "Husband",
    "Not-in-family",
    "Other-relative",
    "Unmarried",
];
const RACE: &[&str] = &[
    "White",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
    "Black",
];
const SEX: &[&str] = &["Female", "Male"];
const INCOME: &[&str] = &["<=50K", ">50K"];

/// The Adult relation schema.
#[must_use]
pub fn adult_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("age", AttributeType::integer(17, 90)),
        Attribute::new("workclass", AttributeType::categorical(WORKCLASS)),
        Attribute::new("education", AttributeType::categorical(EDUCATION)),
        Attribute::new("education_num", AttributeType::integer(1, 16)),
        Attribute::new("marital_status", AttributeType::categorical(MARITAL)),
        Attribute::new("occupation", AttributeType::categorical(OCCUPATION)),
        Attribute::new("relationship", AttributeType::categorical(RELATIONSHIP)),
        Attribute::new("race", AttributeType::categorical(RACE)),
        Attribute::new("sex", AttributeType::categorical(SEX)),
        Attribute::new(
            "capital_gain",
            AttributeType::binned_integer(0, 99_999, 1000),
        ),
        Attribute::new("capital_loss", AttributeType::binned_integer(0, 4_499, 100)),
        Attribute::new("hours_per_week", AttributeType::integer(1, 99)),
        Attribute::new("income", AttributeType::categorical(INCOME)),
    ])
}

/// Generates a synthetic Adult table with `rows` rows under the given seed.
#[must_use]
pub fn adult_table(rows: usize, seed: u64) -> Table {
    let schema = adult_schema();
    let mut table = Table::new(ADULT_TABLE, schema.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    // Approximate marginal weights from the published dataset statistics.
    let workclass_w = [0.74, 0.08, 0.035, 0.03, 0.065, 0.04, 0.0005, 0.0005];
    let education_w = [
        0.165, 0.225, 0.037, 0.325, 0.018, 0.033, 0.043, 0.016, 0.02, 0.013, 0.054, 0.005, 0.029,
        0.012, 0.01, 0.002,
    ];
    let marital_w = [0.46, 0.136, 0.328, 0.031, 0.03, 0.013, 0.001];
    let occupation_w = [
        0.03, 0.135, 0.108, 0.12, 0.134, 0.136, 0.045, 0.066, 0.124, 0.033, 0.052, 0.005, 0.021,
        0.0005,
    ];
    let relationship_w = [0.048, 0.155, 0.405, 0.255, 0.03, 0.107];
    let race_w = [0.854, 0.031, 0.0096, 0.0083, 0.096];
    let sex_w = [0.33, 0.67];

    for _ in 0..rows {
        let age = clamped_normal(&mut rng, 38.6, 13.6, 17, 90);
        let workclass = weighted_index(&mut rng, &workclass_w);
        let education = weighted_index(&mut rng, &education_w);
        // education_num correlates with the education category.
        let education_num = (16 - (education as i64 * 16 / EDUCATION.len() as i64)).clamp(1, 16);
        let marital = weighted_index(&mut rng, &marital_w);
        let occupation = weighted_index(&mut rng, &occupation_w);
        let relationship = weighted_index(&mut rng, &relationship_w);
        let race = weighted_index(&mut rng, &race_w);
        let sex = weighted_index(&mut rng, &sex_w);
        let capital_gain = if weighted_index(&mut rng, &[0.92, 0.08]) == 1 {
            clamped_normal(&mut rng, 12_000.0, 15_000.0, 0, 99_999)
        } else {
            0
        };
        let capital_loss = if weighted_index(&mut rng, &[0.95, 0.05]) == 1 {
            clamped_normal(&mut rng, 1_900.0, 400.0, 0, 4_499)
        } else {
            0
        };
        let hours = clamped_normal(&mut rng, 40.4, 12.3, 1, 99);
        // Income correlates with education_num and hours (coarsely).
        let income_p_high = 0.05 + 0.02 * education_num as f64 + 0.002 * hours as f64;
        let income = weighted_index(&mut rng, &[1.0 - income_p_high, income_p_high]);

        let encoded = [
            (age - 17) as u32,
            workclass as u32,
            education as u32,
            (education_num - 1) as u32,
            marital as u32,
            occupation as u32,
            relationship as u32,
            race as u32,
            sex as u32,
            (capital_gain / 1000) as u32,
            (capital_loss / 100) as u32,
            (hours - 1) as u32,
            income as u32,
        ];
        table
            .insert_encoded_row(&encoded)
            .expect("generated row matches schema");
    }
    table
}

/// Generates a database containing only the Adult table.
#[must_use]
pub fn adult_database(rows: usize, seed: u64) -> Database {
    let mut db = Database::new();
    db.add_table(adult_table(rows, seed));
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::query::Query;

    #[test]
    fn schema_matches_expected_domains() {
        let s = adult_schema();
        assert_eq!(s.arity(), 13);
        assert_eq!(s.attribute("age").unwrap().domain_size(), 74);
        assert_eq!(s.attribute("education").unwrap().domain_size(), 16);
        assert_eq!(s.attribute("sex").unwrap().domain_size(), 2);
        assert_eq!(s.attribute("hours_per_week").unwrap().domain_size(), 99);
        assert_eq!(s.attribute("capital_gain").unwrap().domain_size(), 100);
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = adult_table(500, 7);
        let b = adult_table(500, 7);
        let c = adult_table(500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_rows(), 500);
    }

    #[test]
    fn marginals_are_plausible() {
        let db = adult_database(5_000, 42);
        let total = execute(&db, &Query::count(ADULT_TABLE))
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(total, 5_000.0);

        // Majority of working-age adults work 30-60 hours.
        let hours = execute(
            &db,
            &Query::range_count(ADULT_TABLE, "hours_per_week", 30, 60),
        )
        .unwrap()
        .scalar()
        .unwrap();
        assert!(hours / total > 0.6, "hours fraction {}", hours / total);

        // Age is concentrated between 20 and 60.
        let age = execute(&db, &Query::range_count(ADULT_TABLE, "age", 20, 60))
            .unwrap()
            .scalar()
            .unwrap();
        assert!(age / total > 0.8);
    }
}
