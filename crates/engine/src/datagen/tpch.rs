//! Synthetic stand-in for the TPC-H benchmark data.
//!
//! The paper loads TPC-H SF-1 (1 GB) into PostgreSQL and runs its range
//! workloads over the fact table's low-cardinality attributes. This
//! generator produces a denormalised `lineitem` relation with the TPC-H
//! attribute domains (quantity, discount, tax, flags, modes, priorities);
//! the row count is configurable so tests can stay small while the
//! benchmark harness can approach SF-1 scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::database::Database;
use crate::schema::{Attribute, AttributeType, Schema};
use crate::table::Table;

use super::{clamped_normal, weighted_index};

/// The table name used by the TPC-H workloads.
pub const TPCH_TABLE: &str = "lineitem";

/// Default number of rows generated for benchmark runs. (SF-1 has ~6M
/// lineitem rows; the default is scaled down so the end-to-end experiments
/// finish in CI time. The schema and domains are unchanged.)
pub const TPCH_DEFAULT_ROWS: usize = 100_000;

const RETURN_FLAG: &[&str] = &["A", "N", "R"];
const LINE_STATUS: &[&str] = &["F", "O"];
const SHIP_MODE: &[&str] = &["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const SHIP_INSTRUCT: &[&str] = &[
    "COLLECT COD",
    "DELIVER IN PERSON",
    "NONE",
    "TAKE BACK RETURN",
];
const ORDER_PRIORITY: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const ORDER_STATUS: &[&str] = &["F", "O", "P"];
const SEGMENT: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// The denormalised lineitem schema.
#[must_use]
pub fn tpch_lineitem_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("quantity", AttributeType::integer(1, 50)),
        Attribute::new("discount", AttributeType::integer(0, 10)),
        Attribute::new("tax", AttributeType::integer(0, 8)),
        Attribute::new(
            "extendedprice",
            AttributeType::binned_integer(900, 105_000, 1000),
        ),
        Attribute::new("returnflag", AttributeType::categorical(RETURN_FLAG)),
        Attribute::new("linestatus", AttributeType::categorical(LINE_STATUS)),
        Attribute::new("shipmode", AttributeType::categorical(SHIP_MODE)),
        Attribute::new("shipinstruct", AttributeType::categorical(SHIP_INSTRUCT)),
        Attribute::new("orderpriority", AttributeType::categorical(ORDER_PRIORITY)),
        Attribute::new("orderstatus", AttributeType::categorical(ORDER_STATUS)),
        Attribute::new("mktsegment", AttributeType::categorical(SEGMENT)),
        Attribute::new("shipdate_month", AttributeType::integer(1, 84)),
    ])
}

/// Generates a synthetic lineitem table with `rows` rows under the given
/// seed.
#[must_use]
pub fn tpch_lineitem_table(rows: usize, seed: u64) -> Table {
    let schema = tpch_lineitem_schema();
    let mut table = Table::new(TPCH_TABLE, schema);
    let mut rng = StdRng::seed_from_u64(seed);

    let returnflag_w = [0.25, 0.5, 0.25];
    let linestatus_w = [0.5, 0.5];
    let orderstatus_w = [0.48, 0.48, 0.04];

    for _ in 0..rows {
        let quantity = rng.gen_range(1..=50i64);
        let discount = rng.gen_range(0..=10i64);
        let tax = rng.gen_range(0..=8i64);
        let extendedprice = clamped_normal(&mut rng, 38_000.0, 23_000.0, 900, 105_000);
        let returnflag = weighted_index(&mut rng, &returnflag_w);
        let linestatus = weighted_index(&mut rng, &linestatus_w);
        let shipmode = rng.gen_range(0..SHIP_MODE.len());
        let shipinstruct = rng.gen_range(0..SHIP_INSTRUCT.len());
        let orderpriority = rng.gen_range(0..ORDER_PRIORITY.len());
        let orderstatus = weighted_index(&mut rng, &orderstatus_w);
        let segment = rng.gen_range(0..SEGMENT.len());
        let shipdate_month = rng.gen_range(1..=84i64);

        let encoded = [
            (quantity - 1) as u32,
            discount as u32,
            tax as u32,
            ((extendedprice - 900) / 1000) as u32,
            returnflag as u32,
            linestatus as u32,
            shipmode as u32,
            shipinstruct as u32,
            orderpriority as u32,
            orderstatus as u32,
            segment as u32,
            (shipdate_month - 1) as u32,
        ];
        table
            .insert_encoded_row(&encoded)
            .expect("generated row matches schema");
    }
    table
}

/// Generates a database containing only the lineitem table.
#[must_use]
pub fn tpch_database(rows: usize, seed: u64) -> Database {
    let mut db = Database::new();
    db.add_table(tpch_lineitem_table(rows, seed));
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::query::Query;

    #[test]
    fn schema_domains() {
        let s = tpch_lineitem_schema();
        assert_eq!(s.arity(), 12);
        assert_eq!(s.attribute("quantity").unwrap().domain_size(), 50);
        assert_eq!(s.attribute("discount").unwrap().domain_size(), 11);
        assert_eq!(s.attribute("shipmode").unwrap().domain_size(), 7);
        assert_eq!(s.attribute("shipdate_month").unwrap().domain_size(), 84);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(tpch_lineitem_table(300, 1), tpch_lineitem_table(300, 1));
        assert_ne!(tpch_lineitem_table(300, 1), tpch_lineitem_table(300, 2));
    }

    #[test]
    fn quantity_is_roughly_uniform() {
        let db = tpch_database(10_000, 5);
        let total = execute(&db, &Query::count(TPCH_TABLE))
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(total, 10_000.0);
        let low_half = execute(&db, &Query::range_count(TPCH_TABLE, "quantity", 1, 25))
            .unwrap()
            .scalar()
            .unwrap();
        let frac = low_half / total;
        assert!((0.42..0.58).contains(&frac), "fraction {frac}");
    }
}
