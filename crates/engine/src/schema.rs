//! Attribute and relation schemas over finite domains.
//!
//! Every attribute declares a finite domain up front — either an inclusive
//! integer range (optionally discretised into fixed-width bins) or an
//! explicit category list. Finite domains are what make *full-domain*
//! histogram views (Definition 16 in the paper's Appendix D) well defined
//! and are also how the engine avoids the GROUP BY domain-leakage problem.

use serde::{Deserialize, Serialize};

use crate::value::Value;
use crate::{EngineError, Result};

/// The type (and domain) of an attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeType {
    /// An integer attribute over the inclusive range `[min, max]`,
    /// discretised into bins of `bin_width` consecutive integers
    /// (`bin_width = 1` keeps exact values).
    Integer {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
        /// Width of each histogram bin, in domain units.
        bin_width: i64,
    },
    /// A categorical attribute over an explicit list of categories.
    Categorical {
        /// The category labels, in domain order.
        categories: Vec<String>,
    },
}

impl AttributeType {
    /// An integer domain with unit bins.
    #[must_use]
    pub fn integer(min: i64, max: i64) -> Self {
        AttributeType::Integer {
            min,
            max,
            bin_width: 1,
        }
    }

    /// An integer domain with the given bin width.
    #[must_use]
    pub fn binned_integer(min: i64, max: i64, bin_width: i64) -> Self {
        assert!(bin_width >= 1, "bin width must be at least 1");
        AttributeType::Integer {
            min,
            max,
            bin_width,
        }
    }

    /// A categorical domain from string labels.
    #[must_use]
    pub fn categorical<S: AsRef<str>>(labels: &[S]) -> Self {
        AttributeType::Categorical {
            categories: labels.iter().map(|s| s.as_ref().to_owned()).collect(),
        }
    }

    /// Number of distinct domain indices (histogram bins) of this attribute.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        match self {
            AttributeType::Integer {
                min,
                max,
                bin_width,
            } => {
                let span = (max - min + 1).max(0) as usize;
                span.div_ceil(*bin_width as usize)
            }
            AttributeType::Categorical { categories } => categories.len(),
        }
    }

    /// True for integer attributes (the only ones SUM/AVG apply to).
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttributeType::Integer { .. })
    }
}

/// A named attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// The attribute name.
    pub name: String,
    /// The attribute type / domain.
    pub attr_type: AttributeType,
}

impl Attribute {
    /// Creates an attribute.
    #[must_use]
    pub fn new(name: &str, attr_type: AttributeType) -> Self {
        Attribute {
            name: name.to_owned(),
            attr_type,
        }
    }

    /// Domain size of the attribute.
    #[must_use]
    pub fn domain_size(&self) -> usize {
        self.attr_type.domain_size()
    }

    /// Encodes a value into its domain index.
    pub fn index_of(&self, value: &Value) -> Result<usize> {
        let err = || EngineError::ValueOutOfDomain {
            attribute: self.name.clone(),
            value: value.to_string(),
        };
        match (&self.attr_type, value) {
            (
                AttributeType::Integer {
                    min,
                    max,
                    bin_width,
                },
                Value::Int(v),
            ) => {
                if v < min || v > max {
                    return Err(err());
                }
                Ok(((v - min) / bin_width) as usize)
            }
            (AttributeType::Categorical { categories }, Value::Text(s)) => {
                categories.iter().position(|c| c == s).ok_or_else(err)
            }
            _ => Err(err()),
        }
    }

    /// Decodes a domain index back into a representative value (for integer
    /// attributes with bins wider than 1, the bin's lower edge).
    #[must_use]
    pub fn value_at(&self, index: usize) -> Value {
        match &self.attr_type {
            AttributeType::Integer { min, bin_width, .. } => {
                Value::Int(min + index as i64 * bin_width)
            }
            AttributeType::Categorical { categories } => Value::Text(categories[index].clone()),
        }
    }

    /// The numeric value associated with a domain index, used as the SUM
    /// coefficient (bin lower edge for binned integers). `None` for
    /// categorical attributes.
    #[must_use]
    pub fn numeric_at(&self, index: usize) -> Option<f64> {
        match &self.attr_type {
            AttributeType::Integer { min, bin_width, .. } => {
                Some((min + index as i64 * bin_width) as f64)
            }
            AttributeType::Categorical { .. } => None,
        }
    }

    /// The inclusive range of domain indices covered by the value range
    /// `[low, high]` for an integer attribute. `None` if the attribute is
    /// categorical or the ranges do not intersect.
    #[must_use]
    pub fn index_range(&self, low: i64, high: i64) -> Option<(usize, usize)> {
        match &self.attr_type {
            AttributeType::Integer {
                min,
                max,
                bin_width,
            } => {
                let lo = low.max(*min);
                let hi = high.min(*max);
                if lo > hi {
                    return None;
                }
                Some((
                    ((lo - min) / bin_width) as usize,
                    ((hi - min) / bin_width) as usize,
                ))
            }
            AttributeType::Categorical { .. } => None,
        }
    }
}

/// The schema of a relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from attributes. Attribute names must be unique.
    #[must_use]
    pub fn new(attributes: Vec<Attribute>) -> Self {
        let mut names: Vec<&str> = attributes.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            attributes.len(),
            "schema attribute names must be unique"
        );
        Schema { attributes }
    }

    /// The attributes in declaration order.
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute by name.
    pub fn position(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| EngineError::UnknownAttribute(name.to_owned()))
    }

    /// The attribute with the given name.
    pub fn attribute(&self, name: &str) -> Result<&Attribute> {
        let pos = self.position(name)?;
        Ok(&self.attributes[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age() -> Attribute {
        Attribute::new("age", AttributeType::integer(17, 90))
    }

    fn sex() -> Attribute {
        Attribute::new("sex", AttributeType::categorical(&["Female", "Male"]))
    }

    #[test]
    fn integer_domain_size_and_encoding() {
        let a = age();
        assert_eq!(a.domain_size(), 74);
        assert_eq!(a.index_of(&Value::Int(17)).unwrap(), 0);
        assert_eq!(a.index_of(&Value::Int(90)).unwrap(), 73);
        assert!(a.index_of(&Value::Int(16)).is_err());
        assert!(a.index_of(&Value::Int(91)).is_err());
        assert!(a.index_of(&Value::text("x")).is_err());
        assert_eq!(a.value_at(5), Value::Int(22));
        assert_eq!(a.numeric_at(0), Some(17.0));
    }

    #[test]
    fn binned_integer_domain() {
        let a = Attribute::new("hours", AttributeType::binned_integer(0, 99, 10));
        assert_eq!(a.domain_size(), 10);
        assert_eq!(a.index_of(&Value::Int(0)).unwrap(), 0);
        assert_eq!(a.index_of(&Value::Int(9)).unwrap(), 0);
        assert_eq!(a.index_of(&Value::Int(10)).unwrap(), 1);
        assert_eq!(a.index_of(&Value::Int(99)).unwrap(), 9);
        assert_eq!(a.value_at(3), Value::Int(30));
    }

    #[test]
    fn categorical_domain() {
        let s = sex();
        assert_eq!(s.domain_size(), 2);
        assert_eq!(s.index_of(&Value::text("Male")).unwrap(), 1);
        assert!(s.index_of(&Value::text("Other")).is_err());
        assert!(s.index_of(&Value::Int(1)).is_err());
        assert_eq!(s.value_at(0), Value::text("Female"));
        assert_eq!(s.numeric_at(0), None);
        assert!(!s.attr_type.is_numeric());
    }

    #[test]
    fn index_range_clamps_to_domain() {
        let a = age();
        assert_eq!(a.index_range(20, 29), Some((3, 12)));
        assert_eq!(a.index_range(0, 200), Some((0, 73)));
        assert_eq!(a.index_range(95, 99), None);
        assert_eq!(sex().index_range(0, 1), None);
    }

    #[test]
    fn schema_lookup() {
        let schema = Schema::new(vec![age(), sex()]);
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.position("sex").unwrap(), 1);
        assert!(schema.position("nope").is_err());
        assert_eq!(schema.attribute("age").unwrap().domain_size(), 74);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(vec![age(), age()]);
    }
}
