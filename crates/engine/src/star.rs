//! Star-schema declarations and join folding.
//!
//! DProvDB's views are single-relation histograms, and the exec hot path
//! (compiled kernels, compressed columns, precombined domain maps) is
//! single-table by design. Multi-relation schemas are supported by folding
//! foreign-key joins into the relation *at ingest*: a [`StarSchema`]
//! declares a fact table and its dimension joins, and [`StarSchema::fold`]
//! materialises one widened fact table with the dimension attributes
//! denormalised onto it — **before** columnar encoding, so every downstream
//! kernel and compression codec applies unchanged.
//!
//! Widened dimension attributes are named `"<dimension>.<attribute>"` so
//! they never collide with fact attributes and queries can reference them
//! unambiguously (`Predicate::equals("region.name", "EU")`).
//!
//! Correctness contract: folding is bit-identical to hand-building the
//! denormalised table row by row (asserted in the equivalence battery) —
//! the widened cells literally copy the dimension's encoded domain indices,
//! because the widened attribute *is* the dimension attribute.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::database::Database;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use crate::{EngineError, Result};

/// A foreign-key edge from the fact table to one dimension table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// The fact-table attribute holding the key.
    pub fact_attribute: String,
    /// The dimension table joined through this key.
    pub dimension: String,
    /// The key attribute on the dimension table. Must be unique per row.
    pub dimension_key: String,
}

/// A star-schema declaration: one fact table plus its dimension joins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StarSchema {
    /// Name of the widened output table produced by [`StarSchema::fold`].
    pub name: String,
    /// The fact table.
    pub fact: String,
    /// Dimension joins, applied in declaration order.
    pub foreign_keys: Vec<ForeignKey>,
}

impl StarSchema {
    /// Declares a star schema over `fact`, producing a widened table named
    /// `name` when folded.
    #[must_use]
    pub fn new(name: &str, fact: &str) -> Self {
        StarSchema {
            name: name.to_owned(),
            fact: fact.to_owned(),
            foreign_keys: Vec::new(),
        }
    }

    /// Adds a dimension join: `fact.fact_attribute = dimension.dimension_key`.
    #[must_use]
    pub fn join(mut self, fact_attribute: &str, dimension: &str, dimension_key: &str) -> Self {
        self.foreign_keys.push(ForeignKey {
            fact_attribute: fact_attribute.to_owned(),
            dimension: dimension.to_owned(),
            dimension_key: dimension_key.to_owned(),
        });
        self
    }

    /// The name the widened attribute for `(dimension, attribute)` gets on
    /// the folded table.
    #[must_use]
    pub fn widened_name(dimension: &str, attribute: &str) -> String {
        format!("{dimension}.{attribute}")
    }

    /// Materialises the denormalised (join-folded) table without modifying
    /// the database.
    ///
    /// Every fact row must resolve through every foreign key: a fact key
    /// with no matching dimension row is a [`EngineError::ForeignKeyViolation`]
    /// (inner-join semantics would silently change row counts — and with
    /// them, DP sensitivities — so dangling keys are rejected instead).
    pub fn denormalise(&self, db: &Database) -> Result<Table> {
        let fact = db.table(&self.fact)?;

        // Per foreign key: the dimension table, the fact-side column
        // position, and a lookup from fact-side domain index to the
        // matching dimension row.
        struct Join<'a> {
            dim: &'a Table,
            fact_pos: usize,
            // Indexed by the fact attribute's domain index; `None` marks a
            // key value no dimension row carries.
            row_for_key: Vec<Option<usize>>,
        }

        let mut joins = Vec::with_capacity(self.foreign_keys.len());
        for fk in &self.foreign_keys {
            let fact_pos = fact.schema().position(&fk.fact_attribute)?;
            let fact_attr = &fact.schema().attributes()[fact_pos];
            let dim = db.table(&fk.dimension)?;
            let key_pos = dim.schema().position(&fk.dimension_key)?;
            let key_attr = &dim.schema().attributes()[key_pos];

            // Dimension key value -> dimension row, rejecting duplicates.
            let mut by_value: HashMap<Value, usize> = HashMap::new();
            let key_col = dim.column_at(key_pos);
            for (row, &idx) in key_col.iter().enumerate() {
                let value = key_attr.value_at(idx as usize);
                if by_value.insert(value.clone(), row).is_some() {
                    return Err(EngineError::DuplicateDimensionKey {
                        dimension: fk.dimension.clone(),
                        value: value.to_string(),
                    });
                }
            }

            let row_for_key = (0..fact_attr.domain_size())
                .map(|i| by_value.get(&fact_attr.value_at(i)).copied())
                .collect();
            joins.push(Join {
                dim,
                fact_pos,
                row_for_key,
            });
        }

        // Widened schema: all fact attributes (keys included, so the fact's
        // own query surface is untouched), then each dimension's non-key
        // attributes under their widened names.
        let mut attributes = fact.schema().attributes().to_vec();
        // (dimension position in `joins`, attribute position in dimension)
        let mut widened_sources: Vec<(usize, usize)> = Vec::new();
        for (j, fk) in self.foreign_keys.iter().enumerate() {
            for (pos, attr) in joins[j].dim.schema().attributes().iter().enumerate() {
                if attr.name == fk.dimension_key {
                    continue;
                }
                let mut widened = attr.clone();
                widened.name = Self::widened_name(&fk.dimension, &attr.name);
                if attributes.iter().any(|a| a.name == widened.name) {
                    return Err(EngineError::InvalidStarSchema(format!(
                        "duplicate attribute {} on widened table {}",
                        widened.name, self.name
                    )));
                }
                attributes.push(widened);
                widened_sources.push((j, pos));
            }
        }

        let mut out = Table::new(&self.name, Schema::new(attributes));
        let fact_arity = fact.schema().arity();
        let mut encoded = vec![0u32; fact_arity + widened_sources.len()];
        for row in 0..fact.num_rows() {
            for (pos, cell) in encoded.iter_mut().enumerate().take(fact_arity) {
                *cell = fact.column_at(pos)[row];
            }
            // Resolve each join once per row; widened cells copy the
            // dimension's encoded indices verbatim.
            let mut dim_rows = Vec::with_capacity(joins.len());
            for (fk, join) in self.foreign_keys.iter().zip(&joins) {
                let key_idx = fact.column_at(join.fact_pos)[row] as usize;
                match join.row_for_key[key_idx] {
                    Some(dim_row) => dim_rows.push(dim_row),
                    None => {
                        let fact_attr = &fact.schema().attributes()[join.fact_pos];
                        return Err(EngineError::ForeignKeyViolation {
                            table: self.fact.clone(),
                            attribute: fk.fact_attribute.clone(),
                            value: fact_attr.value_at(key_idx).to_string(),
                        });
                    }
                }
            }
            for (slot, &(j, pos)) in widened_sources.iter().enumerate() {
                encoded[fact_arity + slot] = joins[j].dim.column_at(pos)[dim_rows[j]];
            }
            out.insert_encoded_row(&encoded)?;
        }
        Ok(out)
    }

    /// Denormalises and registers the widened table in the database.
    /// Replaces any existing table of the same name.
    pub fn fold(&self, db: &mut Database) -> Result<()> {
        let widened = self.denormalise(db)?;
        db.add_table(widened);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType};

    fn star_db() -> Database {
        let mut db = Database::new();

        let mut region = Table::new(
            "region",
            Schema::new(vec![
                Attribute::new("id", AttributeType::integer(0, 3)),
                Attribute::new("name", AttributeType::categorical(&["NA", "EU", "APAC"])),
            ]),
        );
        for (id, name) in [(0, "NA"), (1, "EU"), (2, "APAC"), (3, "EU")] {
            region
                .insert_row(&[Value::Int(id), Value::text(name)])
                .unwrap();
        }
        db.add_table(region);

        let mut sales = Table::new(
            "sales",
            Schema::new(vec![
                Attribute::new("region_id", AttributeType::integer(0, 3)),
                Attribute::new("amount", AttributeType::integer(1, 9)),
            ]),
        );
        for (rid, amount) in [(0, 5), (1, 3), (3, 7), (2, 1), (0, 9)] {
            sales
                .insert_row(&[Value::Int(rid), Value::Int(amount)])
                .unwrap();
        }
        db.add_table(sales);
        db
    }

    #[test]
    fn fold_widens_fact_with_dimension_attributes() {
        let mut db = star_db();
        let star = StarSchema::new("sales_star", "sales").join("region_id", "region", "id");
        star.fold(&mut db).unwrap();

        let widened = db.table("sales_star").unwrap();
        assert_eq!(widened.num_rows(), 5);
        let names: Vec<&str> = widened
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["region_id", "amount", "region.name"]);
        // Row 2 joins region_id=3 -> region "EU".
        assert_eq!(
            widened.value_at(2, "region.name").unwrap(),
            Value::text("EU")
        );
        // Fact columns are untouched.
        assert_eq!(widened.value_at(4, "amount").unwrap(), Value::Int(9));
    }

    #[test]
    fn fold_matches_hand_denormalisation() {
        let mut db = star_db();
        let star = StarSchema::new("sales_star", "sales").join("region_id", "region", "id");
        let folded = star.denormalise(&db).unwrap();

        let mut hand = Table::new("sales_star", folded.schema().clone());
        let names = ["NA", "EU", "EU", "APAC", "NA"];
        let sales = db.table("sales").unwrap().clone();
        for (row, name) in names.iter().enumerate().take(sales.num_rows()) {
            hand.insert_row(&[
                sales.value_at(row, "region_id").unwrap(),
                sales.value_at(row, "amount").unwrap(),
                Value::text(name),
            ])
            .unwrap();
        }
        for pos in 0..folded.schema().arity() {
            assert_eq!(folded.column_at(pos), hand.column_at(pos));
        }
        star.fold(&mut db).unwrap();
    }

    #[test]
    fn dangling_key_is_rejected() {
        let mut db = star_db();
        // A region id with no dimension row.
        let mut region = db.table("region").unwrap().clone();
        region = {
            let schema = region.schema().clone();
            let mut fresh = Table::new("region", schema);
            // Keep only ids 0..=2: key 3 dangles.
            for (id, name) in [(0, "NA"), (1, "EU"), (2, "APAC")] {
                fresh
                    .insert_row(&[Value::Int(id), Value::text(name)])
                    .unwrap();
            }
            fresh
        };
        db.add_table(region);
        let star = StarSchema::new("sales_star", "sales").join("region_id", "region", "id");
        assert!(matches!(
            star.denormalise(&db),
            Err(EngineError::ForeignKeyViolation { .. })
        ));
    }

    #[test]
    fn duplicate_dimension_key_is_rejected() {
        let mut db = star_db();
        let mut region = db.table("region").unwrap().clone();
        region
            .insert_row(&[Value::Int(0), Value::text("EU")])
            .unwrap();
        db.add_table(region);
        let star = StarSchema::new("sales_star", "sales").join("region_id", "region", "id");
        assert!(matches!(
            star.denormalise(&db),
            Err(EngineError::DuplicateDimensionKey { .. })
        ));
    }

    #[test]
    fn unknown_pieces_error() {
        let db = star_db();
        assert!(StarSchema::new("s", "nope")
            .join("region_id", "region", "id")
            .denormalise(&db)
            .is_err());
        assert!(StarSchema::new("s", "sales")
            .join("nope", "region", "id")
            .denormalise(&db)
            .is_err());
        assert!(StarSchema::new("s", "sales")
            .join("region_id", "nope", "id")
            .denormalise(&db)
            .is_err());
    }
}
