//! View definitions.
//!
//! DProvDB answers queries through *histogram views*: full-domain k-way
//! marginals over a subset of attributes (Definition 16). A view's exact
//! answer is a [`crate::histogram::Histogram`]; its noisy answer is a
//! [`crate::synopsis::Synopsis`]. The provenance table tracks privacy loss
//! per view, so every view carries a stable name.

use serde::{Deserialize, Serialize};

use dprov_dp::sensitivity::Sensitivity;

use crate::database::Database;
use crate::schema::Schema;
use crate::Result;

/// How the view's histogram domain is derived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewKind {
    /// A full-domain counting histogram over the view's attributes.
    FullDomainHistogram,
    /// A counting histogram over a single integer attribute whose values are
    /// clipped to `[lower, upper]` before binning (Appendix D). The clipping
    /// bounds the sensitivity of SUM queries answered over the view.
    Clipped {
        /// Inclusive lower clipping bound.
        lower: i64,
        /// Inclusive upper clipping bound.
        upper: i64,
    },
}

/// A view definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewDef {
    /// Stable view name (the provenance-table column key).
    pub name: String,
    /// The base relation.
    pub table: String,
    /// The attributes the marginal is built over, in order.
    pub attributes: Vec<String>,
    /// The kind of histogram.
    pub kind: ViewKind,
}

impl ViewDef {
    /// A full-domain histogram view over the given attributes.
    #[must_use]
    pub fn histogram<S: AsRef<str>>(name: &str, table: &str, attributes: &[S]) -> Self {
        ViewDef {
            name: name.to_owned(),
            table: table.to_owned(),
            attributes: attributes.iter().map(|s| s.as_ref().to_owned()).collect(),
            kind: ViewKind::FullDomainHistogram,
        }
    }

    /// A clipped histogram view over a single integer attribute.
    #[must_use]
    pub fn clipped(name: &str, table: &str, attribute: &str, lower: i64, upper: i64) -> Self {
        ViewDef {
            name: name.to_owned(),
            table: table.to_owned(),
            attributes: vec![attribute.to_owned()],
            kind: ViewKind::Clipped { lower, upper },
        }
    }

    /// The per-attribute domain sizes of the view, in attribute order.
    pub fn dimensions(&self, schema: &Schema) -> Result<Vec<usize>> {
        self.attributes
            .iter()
            .map(|a| Ok(schema.attribute(a)?.domain_size()))
            .collect()
    }

    /// Total number of histogram cells.
    pub fn domain_size(&self, schema: &Schema) -> Result<usize> {
        Ok(self.dimensions(schema)?.iter().product())
    }

    /// Schema positions of the view's attributes, in view order — shared by
    /// the engine's row-at-a-time histogram materialisation and the
    /// `dprov-exec` columnar path.
    pub fn positions(&self, schema: &Schema) -> Result<Vec<usize>> {
        self.attributes.iter().map(|a| schema.position(a)).collect()
    }

    /// The ℓ2 sensitivity of releasing this view under bounded DP: one
    /// tuple changing value moves one unit between two cells, so √2 for any
    /// counting histogram.
    #[must_use]
    pub fn sensitivity(&self) -> Sensitivity {
        Sensitivity::histogram_bounded()
    }

    /// Looks up the view's dimensions against a database.
    pub fn dimensions_in(&self, db: &Database) -> Result<Vec<usize>> {
        self.dimensions(db.table(&self.table)?.schema())
    }

    /// True if the view covers all of the given attributes.
    #[must_use]
    pub fn covers<S: AsRef<str>>(&self, attributes: &[S]) -> bool {
        attributes
            .iter()
            .all(|a| self.attributes.iter().any(|v| v == a.as_ref()))
    }
}

/// Iterates the multi-dimensional cell indices of a histogram with the given
/// per-dimension sizes, in row-major order.
#[derive(Debug, Clone)]
pub struct MultiIndexIter {
    sizes: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl MultiIndexIter {
    /// Creates an iterator over the cross product of the dimension sizes.
    #[must_use]
    pub fn new(sizes: &[usize]) -> Self {
        let done = sizes.contains(&0);
        MultiIndexIter {
            sizes: sizes.to_vec(),
            current: vec![0; sizes.len()],
            done,
        }
    }
}

impl Iterator for MultiIndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Advance, last dimension fastest (row-major).
        let mut dim = self.sizes.len();
        loop {
            if dim == 0 {
                self.done = true;
                break;
            }
            dim -= 1;
            self.current[dim] += 1;
            if self.current[dim] < self.sizes[dim] {
                break;
            }
            self.current[dim] = 0;
        }
        if self.sizes.is_empty() {
            self.done = true;
        }
        Some(out)
    }
}

/// Converts a multi-dimensional cell index into a flat, row-major offset.
#[must_use]
pub fn flat_index(sizes: &[usize], indices: &[usize]) -> usize {
    debug_assert_eq!(sizes.len(), indices.len());
    let mut flat = 0usize;
    for (size, &idx) in sizes.iter().zip(indices) {
        debug_assert!(idx < *size);
        flat = flat * size + idx;
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("age", AttributeType::integer(17, 90)),
            Attribute::new("sex", AttributeType::categorical(&["Female", "Male"])),
            Attribute::new("edu", AttributeType::integer(1, 16)),
        ])
    }

    #[test]
    fn view_dimensions_and_domain_size() {
        let v = ViewDef::histogram("v1", "adult", &["age", "sex"]);
        let s = schema();
        assert_eq!(v.dimensions(&s).unwrap(), vec![74, 2]);
        assert_eq!(v.domain_size(&s).unwrap(), 148);
        assert_eq!(v.positions(&s).unwrap(), vec![0, 1]);
        assert!(v.covers(&["age"]));
        assert!(v.covers(&["age", "sex"]));
        assert!(!v.covers(&["edu"]));
    }

    #[test]
    fn unknown_attribute_in_view_errors() {
        let v = ViewDef::histogram("v1", "adult", &["salary"]);
        assert!(v.domain_size(&schema()).is_err());
    }

    #[test]
    fn sensitivity_is_sqrt_two() {
        let v = ViewDef::histogram("v1", "adult", &["age"]);
        assert!((v.sensitivity().value() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn clipped_view_records_bounds() {
        let v = ViewDef::clipped("v_hours", "adult", "edu", 1, 10);
        assert_eq!(
            v.kind,
            ViewKind::Clipped {
                lower: 1,
                upper: 10
            }
        );
        assert_eq!(v.attributes, vec!["edu".to_owned()]);
    }

    #[test]
    fn multi_index_iterates_row_major() {
        let cells: Vec<Vec<usize>> = MultiIndexIter::new(&[2, 3]).collect();
        assert_eq!(
            cells,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn multi_index_handles_empty_and_zero_dims() {
        assert_eq!(MultiIndexIter::new(&[]).count(), 1);
        assert_eq!(MultiIndexIter::new(&[0, 3]).count(), 0);
    }

    #[test]
    fn flat_index_matches_iteration_order() {
        let sizes = [3usize, 4, 2];
        for (i, cell) in MultiIndexIter::new(&sizes).enumerate() {
            assert_eq!(flat_index(&sizes, &cell), i);
        }
    }
}
