//! Cell values.

use serde::{Deserialize, Serialize};

/// A single cell value.
///
/// The engine stores every attribute over a *finite* domain (integers within
/// a declared range, or a declared category list), which is what makes
/// full-domain histogram views well defined. `Value` is the decoded,
/// user-facing representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A categorical (string) value.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    #[must_use]
    pub fn text(s: &str) -> Value {
        Value::Text(s.to_owned())
    }

    /// Returns the integer content, if this is an integer value.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Text(_) => None,
        }
    }

    /// Returns the text content, if this is a text value.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Text(s) => Some(s),
        }
    }

    /// A numeric rendering used by SUM/AVG aggregates: integers map to
    /// themselves, text has no numeric value.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        self.as_int().map(|v| v as f64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(42), Value::Int(42));
        assert_eq!(Value::from("abc"), Value::Text("abc".into()));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::text("x").as_int(), None);
        assert_eq!(Value::text("x").as_f64(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }

    #[test]
    fn ordering_is_total_within_variant() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::text("a") < Value::text("b"));
    }
}
