//! Exact (non-private) query evaluation.
//!
//! Used in three places: to materialise histogram views, to compute the
//! ground truth for the relative-error experiment (Fig. 9b), and in tests
//! that validate the view-based answering path against direct evaluation.

use serde::{Deserialize, Serialize};

use crate::database::Database;
use crate::query::{AggregateKind, Query};
use crate::table::Table;
use crate::value::Value;
use crate::{EngineError, Result};

/// The result of exact query evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// One entry per output row: the group key (empty for scalar queries)
    /// and the aggregate value.
    pub rows: Vec<(Vec<Value>, f64)>,
}

impl QueryResult {
    /// The scalar value of a non-grouped query.
    #[must_use]
    pub fn scalar(&self) -> Option<f64> {
        if self.rows.len() == 1 && self.rows[0].0.is_empty() {
            Some(self.rows[0].1)
        } else {
            None
        }
    }
}

/// Evaluates a query exactly against the database.
pub fn execute(db: &Database, query: &Query) -> Result<QueryResult> {
    let table = db.table(&query.table)?;
    validate(table, query)?;

    if query.group_by.is_empty() {
        let value = aggregate_rows(table, query, None)?;
        return Ok(QueryResult {
            rows: vec![(Vec::new(), value)],
        });
    }

    // GROUP BY evaluation over the full cross-product of the grouping
    // attributes' domains ("GROUP BY*" semantics, Appendix D): every domain
    // combination appears in the output, including empty groups, so the
    // output shape is data-independent.
    let positions: Vec<usize> = query
        .group_by
        .iter()
        .map(|g| table.schema().position(g))
        .collect::<Result<_>>()?;
    let sizes: Vec<usize> = positions
        .iter()
        .map(|&p| table.schema().attributes()[p].domain_size())
        .collect();

    let mut rows = Vec::new();
    let mut indices = vec![0usize; positions.len()];
    loop {
        let key: Vec<Value> = positions
            .iter()
            .zip(&indices)
            .map(|(&p, &i)| table.schema().attributes()[p].value_at(i))
            .collect();
        let value = aggregate_rows(table, query, Some((&positions, &indices)))?;
        rows.push((key, value));

        // Advance the multi-index.
        let mut dim = indices.len();
        loop {
            if dim == 0 {
                return Ok(QueryResult { rows });
            }
            dim -= 1;
            indices[dim] += 1;
            if indices[dim] < sizes[dim] {
                break;
            }
            indices[dim] = 0;
        }
    }
}

fn validate(table: &Table, query: &Query) -> Result<()> {
    for attr in query.referenced_attributes() {
        table.schema().position(&attr)?;
    }
    if let Some(target) = query.aggregate.target_attribute() {
        if !table.schema().attribute(target)?.attr_type.is_numeric() {
            return Err(EngineError::InvalidQuery(format!(
                "aggregate over non-numeric attribute {target}"
            )));
        }
    }
    Ok(())
}

fn aggregate_rows(
    table: &Table,
    query: &Query,
    group: Option<(&[usize], &[usize])>,
) -> Result<f64> {
    let mut count = 0.0f64;
    let mut sum = 0.0f64;
    let target_pos = match query.aggregate.target_attribute() {
        Some(a) => Some(table.schema().position(a)?),
        None => None,
    };

    for row in 0..table.num_rows() {
        if let Some((positions, indices)) = group {
            let in_group = positions
                .iter()
                .zip(indices)
                .all(|(&p, &i)| table.column_at(p)[row] as usize == i);
            if !in_group {
                continue;
            }
        }
        if !query.predicate.evaluate_row(table, row)? {
            continue;
        }
        count += 1.0;
        if let Some(pos) = target_pos {
            let attr = &table.schema().attributes()[pos];
            let idx = table.column_at(pos)[row] as usize;
            sum += attr.numeric_at(idx).unwrap_or(0.0);
        }
    }

    Ok(match &query.aggregate {
        AggregateKind::Count => count,
        AggregateKind::Sum(_) => sum,
        AggregateKind::Avg(_) => {
            if count == 0.0 {
                0.0
            } else {
                sum / count
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use crate::schema::{Attribute, AttributeType, Schema};

    fn db() -> Database {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(17, 90)),
            Attribute::new("sex", AttributeType::categorical(&["Female", "Male"])),
            Attribute::new("hours", AttributeType::integer(1, 99)),
        ]);
        let mut t = Table::new("adult", schema);
        let rows = [
            (25, "Male", 40),
            (31, "Female", 38),
            (47, "Female", 50),
            (62, "Male", 20),
            (25, "Female", 45),
        ];
        for (age, sex, hours) in rows {
            t.insert_row(&[Value::Int(age), Value::text(sex), Value::Int(hours)])
                .unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn count_all() {
        let r = execute(&db(), &Query::count("adult")).unwrap();
        assert_eq!(r.scalar(), Some(5.0));
    }

    #[test]
    fn range_count() {
        let q = Query::range_count("adult", "age", 20, 35);
        assert_eq!(execute(&db(), &q).unwrap().scalar(), Some(3.0));
    }

    #[test]
    fn predicate_conjunction() {
        let q = Query::count("adult")
            .filter(Predicate::range("age", 20, 35))
            .filter(Predicate::equals("sex", "Female"));
        assert_eq!(execute(&db(), &q).unwrap().scalar(), Some(2.0));
    }

    #[test]
    fn sum_and_avg() {
        let q = Query::sum("adult", "hours").filter(Predicate::equals("sex", "Male"));
        assert_eq!(execute(&db(), &q).unwrap().scalar(), Some(60.0));
        let q = Query::avg("adult", "hours").filter(Predicate::equals("sex", "Male"));
        assert_eq!(execute(&db(), &q).unwrap().scalar(), Some(30.0));
    }

    #[test]
    fn avg_of_empty_selection_is_zero() {
        let q = Query::avg("adult", "hours").filter(Predicate::range("age", 80, 90));
        assert_eq!(execute(&db(), &q).unwrap().scalar(), Some(0.0));
    }

    #[test]
    fn group_by_covers_full_domain() {
        let q = Query::count("adult").group_by(&["sex"]);
        let r = execute(&db(), &q).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].0, vec![Value::text("Female")]);
        assert_eq!(r.rows[0].1, 3.0);
        assert_eq!(r.rows[1].1, 2.0);
        assert!(r.scalar().is_none());
    }

    #[test]
    fn group_by_includes_empty_groups() {
        // Grouping by age yields 74 output rows even though only 4 distinct
        // ages are present — the output shape is data-independent.
        let q = Query::count("adult").group_by(&["age"]);
        let r = execute(&db(), &q).unwrap();
        assert_eq!(r.rows.len(), 74);
        let total: f64 = r.rows.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 5.0);
    }

    #[test]
    fn sum_over_categorical_is_rejected() {
        let q = Query::sum("adult", "sex");
        assert!(matches!(
            execute(&db(), &q),
            Err(EngineError::InvalidQuery(_))
        ));
    }

    #[test]
    fn unknown_table_and_attribute_error() {
        assert!(execute(&db(), &Query::count("nope")).is_err());
        let q = Query::count("adult").filter(Predicate::range("salary", 0, 1));
        assert!(execute(&db(), &q).is_err());
    }
}
