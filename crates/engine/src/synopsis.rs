//! Noisy synopses.
//!
//! A synopsis is the DP release of a histogram view: the exact cell counts
//! plus i.i.d. Gaussian noise of a known per-bin variance. DProvDB keeps one
//! *global* synopsis per view and derives *local* per-analyst synopses from
//! it (see `dprov-core::synopsis_manager`); both are represented by this
//! type, which only knows its counts and its noise level.

use serde::{Deserialize, Serialize};

use crate::transform::LinearQuery;

/// A noisy answer to a histogram view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Synopsis {
    /// Name of the view this synopsis answers.
    pub view: String,
    /// Noisy cell counts (flat, row-major, same layout as the histogram).
    pub counts: Vec<f64>,
    /// The per-bin noise variance of these counts.
    pub per_bin_variance: f64,
}

impl Synopsis {
    /// Creates a synopsis from noisy counts.
    #[must_use]
    pub fn new(view: &str, counts: Vec<f64>, per_bin_variance: f64) -> Self {
        Synopsis {
            view: view.to_owned(),
            counts,
            per_bin_variance,
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the synopsis has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Answers a linear query from the noisy counts.
    #[must_use]
    pub fn answer(&self, query: &LinearQuery) -> f64 {
        debug_assert_eq!(query.view, self.view);
        query.evaluate(&self.counts)
    }

    /// The expected squared error of the answer to a linear query
    /// (Definition 4): the sum of squared coefficients times the per-bin
    /// variance, since the noise is independent across bins.
    #[must_use]
    pub fn answer_variance(&self, query: &LinearQuery) -> f64 {
        query.answer_variance(self.per_bin_variance)
    }

    /// Combines this synopsis with another one over the same view using
    /// weights `(1 - w)` and `w` (Eq. (2)); the result's per-bin variance is
    /// `(1-w)² v_self + w² v_other` assuming independent noise.
    #[must_use]
    pub fn combine(&self, other: &Synopsis, w: f64) -> Synopsis {
        debug_assert_eq!(self.view, other.view);
        debug_assert_eq!(self.counts.len(), other.counts.len());
        debug_assert!((0.0..=1.0).contains(&w));
        let counts = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(a, b)| (1.0 - w) * a + w * b)
            .collect();
        let variance =
            (1.0 - w) * (1.0 - w) * self.per_bin_variance + w * w * other.per_bin_variance;
        Synopsis {
            view: self.view.clone(),
            counts,
            per_bin_variance: variance,
        }
    }

    /// The inverse-variance-optimal combination weight for merging `self`
    /// (variance `v_{t-1}`) with a fresh synopsis of variance `fresh_variance`
    /// (UMVUE weighting, §5.2.2): `w_t = v_{t-1} / (v_Δ + v_{t-1})`.
    #[must_use]
    pub fn optimal_combination_weight(&self, fresh_variance: f64) -> f64 {
        self.per_bin_variance / (fresh_variance + self.per_bin_variance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lq(view: &str, cells: &[(usize, f64)], total: usize) -> LinearQuery {
        LinearQuery {
            view: view.to_owned(),
            coefficients: cells.to_vec(),
            view_cells: total,
        }
    }

    #[test]
    fn answering_linear_queries() {
        let s = Synopsis::new("v", vec![10.0, 20.0, 30.0], 4.0);
        let q = lq("v", &[(0, 1.0), (2, 1.0)], 3);
        assert_eq!(s.answer(&q), 40.0);
        assert_eq!(s.answer_variance(&q), 8.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn combination_weights_average_counts_and_variances() {
        let a = Synopsis::new("v", vec![10.0, 0.0], 9.0);
        let b = Synopsis::new("v", vec![20.0, 10.0], 1.0);
        let c = a.combine(&b, 0.9);
        assert!((c.counts[0] - (0.1 * 10.0 + 0.9 * 20.0)).abs() < 1e-12);
        assert!((c.per_bin_variance - (0.01 * 9.0 + 0.81 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn optimal_weight_minimises_combined_variance() {
        let old = Synopsis::new("v", vec![0.0], 9.0);
        let fresh_variance = 3.0;
        let w = old.optimal_combination_weight(fresh_variance);
        assert!((w - 0.75).abs() < 1e-12);
        let combined = |w: f64| (1.0 - w) * (1.0 - w) * 9.0 + w * w * 3.0;
        let at_opt = combined(w);
        for test_w in [0.0, 0.25, 0.5, 0.6, 0.9, 1.0] {
            assert!(at_opt <= combined(test_w) + 1e-12);
        }
        // Combined variance is below both inputs.
        assert!(at_opt < 3.0);
        assert!(at_opt < 9.0);
    }

    #[test]
    fn combine_with_weight_zero_or_one_returns_an_endpoint() {
        let a = Synopsis::new("v", vec![1.0], 5.0);
        let b = Synopsis::new("v", vec![7.0], 2.0);
        assert_eq!(a.combine(&b, 0.0).counts, a.counts);
        assert_eq!(a.combine(&b, 1.0).counts, b.counts);
    }
}
