//! A minimal SQL front end.
//!
//! Parses the query class DProvDB supports into the [`Query`] AST:
//!
//! ```sql
//! SELECT COUNT(*)          FROM adult WHERE age BETWEEN 25 AND 34 AND sex = 'Female'
//! SELECT SUM(hours)        FROM adult WHERE education = 'Bachelors'
//! SELECT AVG(hours)        FROM adult
//! SELECT COUNT(*)          FROM adult GROUP BY sex
//! ```
//!
//! Supported predicates: `=`, `>=`, `<=`, `>`, `<`, `BETWEEN … AND …`,
//! combined with `AND`. This mirrors the linear-query class the paper's
//! workloads exercise; it is intentionally not a general SQL parser.

use crate::expr::Predicate;
use crate::query::{AggregateKind, Query};
use crate::value::Value;
use crate::{EngineError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(i64),
    Str(String),
    Symbol(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() || c == ',' {
            i += 1;
        } else if c == '\'' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            if j >= chars.len() {
                return Err(EngineError::SqlParse("unterminated string literal".into()));
            }
            tokens.push(Token::Str(chars[start..j].iter().collect()));
            i = j + 1;
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            i += 1;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let value = text
                .parse::<i64>()
                .map_err(|_| EngineError::SqlParse(format!("bad number: {text}")))?;
            tokens.push(Token::Number(value));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
        } else if c == '(' || c == ')' || c == '*' {
            tokens.push(Token::Symbol(c.to_string()));
            i += 1;
        } else if c == '>' || c == '<' {
            if i + 1 < chars.len() && chars[i + 1] == '=' {
                tokens.push(Token::Symbol(format!("{c}=")));
                i += 2;
            } else {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            }
        } else if c == '=' {
            tokens.push(Token::Symbol("=".to_string()));
            i += 1;
        } else {
            return Err(EngineError::SqlParse(format!("unexpected character: {c}")));
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| EngineError::SqlParse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Token::Ident(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(EngineError::SqlParse(format!(
                "expected {kw}, found {other:?}"
            ))),
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        match self.next()? {
            Token::Symbol(s) if s == sym => Ok(()),
            other => Err(EngineError::SqlParse(format!(
                "expected '{sym}', found {other:?}"
            ))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(w) => Ok(w),
            other => Err(EngineError::SqlParse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn parse_aggregate(&mut self) -> Result<AggregateKind> {
        let name = self.ident()?;
        self.expect_symbol("(")?;
        let agg = if name.eq_ignore_ascii_case("count") {
            self.expect_symbol("*")?;
            AggregateKind::Count
        } else if name.eq_ignore_ascii_case("sum") {
            AggregateKind::Sum(self.ident()?)
        } else if name.eq_ignore_ascii_case("avg") {
            AggregateKind::Avg(self.ident()?)
        } else {
            return Err(EngineError::SqlParse(format!(
                "unsupported aggregate: {name}"
            )));
        };
        self.expect_symbol(")")?;
        Ok(agg)
    }

    fn parse_comparison(&mut self) -> Result<Predicate> {
        let attribute = self.ident()?;
        if self.keyword_is("between") {
            self.expect_keyword("between")?;
            let low = self.number()?;
            self.expect_keyword("and")?;
            let high = self.number()?;
            return Ok(Predicate::range(&attribute, low, high));
        }
        let op = match self.next()? {
            Token::Symbol(s) => s,
            other => {
                return Err(EngineError::SqlParse(format!(
                    "expected operator, found {other:?}"
                )))
            }
        };
        let rhs = self.next()?;
        match (op.as_str(), rhs) {
            ("=", Token::Number(v)) => Ok(Predicate::equals(&attribute, v)),
            ("=", Token::Str(s)) => Ok(Predicate::equals(&attribute, Value::Text(s))),
            (">=", Token::Number(v)) => Ok(Predicate::range(&attribute, v, i64::MAX)),
            ("<=", Token::Number(v)) => Ok(Predicate::range(&attribute, i64::MIN, v)),
            (">", Token::Number(v)) => Ok(Predicate::range(&attribute, v + 1, i64::MAX)),
            ("<", Token::Number(v)) => Ok(Predicate::range(&attribute, i64::MIN, v - 1)),
            (op, rhs) => Err(EngineError::SqlParse(format!(
                "unsupported comparison {attribute} {op} {rhs:?}"
            ))),
        }
    }

    fn number(&mut self) -> Result<i64> {
        match self.next()? {
            Token::Number(v) => Ok(v),
            other => Err(EngineError::SqlParse(format!(
                "expected number, found {other:?}"
            ))),
        }
    }

    fn parse_where(&mut self) -> Result<Predicate> {
        let mut predicate = self.parse_comparison()?;
        while self.keyword_is("and") {
            self.expect_keyword("and")?;
            predicate = predicate.and(self.parse_comparison()?);
        }
        Ok(predicate)
    }
}

/// Parses a SQL string into a [`Query`].
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };

    p.expect_keyword("select")?;
    let aggregate = p.parse_aggregate()?;
    p.expect_keyword("from")?;
    let table = p.ident()?;

    let mut query = Query {
        table,
        aggregate,
        predicate: Predicate::True,
        group_by: Vec::new(),
    };

    if p.keyword_is("where") {
        p.expect_keyword("where")?;
        query.predicate = p.parse_where()?;
    }
    if p.keyword_is("group") {
        p.expect_keyword("group")?;
        p.expect_keyword("by")?;
        let mut group_by = vec![p.ident()?];
        while let Some(Token::Ident(_)) = p.peek() {
            group_by.push(p.ident()?);
        }
        query.group_by = group_by;
    }
    if p.peek().is_some() {
        return Err(EngineError::SqlParse(format!(
            "trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_count_star() {
        let q = parse("SELECT COUNT(*) FROM adult").unwrap();
        assert_eq!(q, Query::count("adult"));
    }

    #[test]
    fn parses_between_and_equality() {
        let q = parse("SELECT COUNT(*) FROM adult WHERE age BETWEEN 25 AND 34 AND sex = 'Female'")
            .unwrap();
        assert_eq!(q.table, "adult");
        let expected = Query::count("adult")
            .filter(Predicate::range("age", 25, 34))
            .filter(Predicate::equals("sex", "Female"));
        assert_eq!(q, expected);
    }

    #[test]
    fn parses_inequalities() {
        let q = parse("SELECT COUNT(*) FROM adult WHERE age >= 30 AND age < 40").unwrap();
        let expected = Query::count("adult")
            .filter(Predicate::range("age", 30, i64::MAX))
            .filter(Predicate::range("age", i64::MIN, 39));
        assert_eq!(q, expected);
    }

    #[test]
    fn parses_sum_avg_and_group_by() {
        let q = parse("SELECT SUM(hours) FROM adult WHERE sex = 'Male'").unwrap();
        assert_eq!(q.aggregate, AggregateKind::Sum("hours".into()));

        let q = parse("SELECT AVG(hours) FROM adult").unwrap();
        assert_eq!(q.aggregate, AggregateKind::Avg("hours".into()));

        let q = parse("select count(*) from adult group by sex education").unwrap();
        assert_eq!(q.group_by, vec!["sex".to_owned(), "education".to_owned()]);
    }

    #[test]
    fn rejects_malformed_sql() {
        assert!(parse("SELECT MAX(x) FROM t").is_err());
        assert!(parse("COUNT(*) FROM t").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a = 'unterminated").is_err());
        assert!(parse("SELECT COUNT(*) FROM t extra garbage ; --").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a ! 3").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = parse("select count(*) from adult where age between 1 and 2").unwrap();
        let b = parse("SELECT COUNT(*) FROM adult WHERE age BETWEEN 1 AND 2").unwrap();
        assert_eq!(a, b);
    }
}
