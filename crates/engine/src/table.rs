//! Columnar table storage.
//!
//! Rows are encoded at insertion time: each cell is stored as the domain
//! index of its value within its attribute's finite domain (a `u32`). This
//! makes histogram materialisation a single pass of index arithmetic and
//! keeps predicate evaluation branch-light.

use serde::{Deserialize, Serialize};

use crate::schema::Schema;
use crate::value::Value;
use crate::{EngineError, Result};

/// A relation with columnar, domain-index-encoded storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    /// One vector per attribute, each of length `num_rows`.
    columns: Vec<Vec<u32>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(name: &str, schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Table {
            name: name.to_owned(),
            schema,
            columns,
        }
    }

    /// The table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Inserts a row of decoded values; the arity and every value's domain
    /// membership are validated.
    pub fn insert_row(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.arity(),
                found: values.len(),
            });
        }
        // Validate all cells before mutating any column so a failed insert
        // leaves the table untouched.
        let mut encoded = Vec::with_capacity(values.len());
        for (attr, value) in self.schema.attributes().iter().zip(values) {
            encoded.push(attr.index_of(value)? as u32);
        }
        for (col, idx) in self.columns.iter_mut().zip(encoded) {
            col.push(idx);
        }
        Ok(())
    }

    /// Inserts a row of pre-encoded domain indices without validation.
    /// Intended for the synthetic data generators, which sample indices
    /// directly.
    pub fn insert_encoded_row(&mut self, indices: &[u32]) -> Result<()> {
        if indices.len() != self.schema.arity() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.arity(),
                found: indices.len(),
            });
        }
        for ((col, &idx), attr) in self
            .columns
            .iter_mut()
            .zip(indices)
            .zip(self.schema.attributes())
        {
            debug_assert!((idx as usize) < attr.domain_size());
            col.push(idx);
        }
        Ok(())
    }

    /// Deletes the first row whose encoded cells equal `indices`, returning
    /// `true` when a match was found and removed. Multiset semantics: each
    /// call removes at most one occurrence. Rows after the match shift up
    /// one position (the table is columnar; order of the *remaining* rows
    /// is preserved).
    pub fn delete_encoded_row(&mut self, indices: &[u32]) -> Result<bool> {
        if indices.len() != self.schema.arity() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.arity(),
                found: indices.len(),
            });
        }
        let rows = self.num_rows();
        'rows: for row in 0..rows {
            for (col, &want) in self.columns.iter().zip(indices) {
                if col[row] != want {
                    continue 'rows;
                }
            }
            for col in &mut self.columns {
                col.remove(row);
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Number of rows whose encoded cells equal `indices` (multiset
    /// multiplicity — what update validation checks before accepting a
    /// delete).
    pub fn count_encoded_rows(&self, indices: &[u32]) -> Result<usize> {
        if indices.len() != self.schema.arity() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.arity(),
                found: indices.len(),
            });
        }
        let rows = self.num_rows();
        let mut hits = 0usize;
        'rows: for row in 0..rows {
            for (col, &want) in self.columns.iter().zip(indices) {
                if col[row] != want {
                    continue 'rows;
                }
            }
            hits += 1;
        }
        Ok(hits)
    }

    /// Applies one update batch — encoded inserts appended in order, then
    /// encoded deletes each removing one matching row. The mutable table
    /// handle of the dynamic-data subsystem: `dprov-delta` seals epochs
    /// through this after validating every row. Errors on an arity
    /// mismatch; a delete with no matching row is reported in the returned
    /// count (callers that validated beforehand treat it as a bug).
    pub fn apply_encoded_updates(
        &mut self,
        inserts: &[Vec<u32>],
        deletes: &[Vec<u32>],
    ) -> Result<usize> {
        for row in inserts {
            self.insert_encoded_row(row)?;
        }
        let mut deleted = 0usize;
        for row in deletes {
            if self.delete_encoded_row(row)? {
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// The encoded column for an attribute.
    pub fn column(&self, attribute: &str) -> Result<&[u32]> {
        let pos = self.schema.position(attribute)?;
        Ok(&self.columns[pos])
    }

    /// The encoded column by position.
    #[must_use]
    pub fn column_at(&self, position: usize) -> &[u32] {
        &self.columns[position]
    }

    /// All encoded columns in schema order — the zero-copy ingest path the
    /// `dprov-exec` columnar execution layer converts tables through (it
    /// re-partitions these columns into fixed-size shards).
    #[must_use]
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.columns
    }

    /// Decodes the cell at `(row, attribute)`.
    pub fn value_at(&self, row: usize, attribute: &str) -> Result<Value> {
        let pos = self.schema.position(attribute)?;
        let attr = &self.schema.attributes()[pos];
        Ok(attr.value_at(self.columns[pos][row] as usize))
    }

    /// Decodes a full row.
    #[must_use]
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.schema
            .attributes()
            .iter()
            .enumerate()
            .map(|(i, attr)| attr.value_at(self.columns[i][row] as usize))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType};

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(17, 90)),
            Attribute::new("sex", AttributeType::categorical(&["Female", "Male"])),
        ]);
        Table::new("people", schema)
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = sample_table();
        t.insert_row(&[Value::Int(30), Value::text("Male")])
            .unwrap();
        t.insert_row(&[Value::Int(45), Value::text("Female")])
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value_at(0, "age").unwrap(), Value::Int(30));
        assert_eq!(t.value_at(1, "sex").unwrap(), Value::text("Female"));
        assert_eq!(t.row(1), vec![Value::Int(45), Value::text("Female")]);
        assert_eq!(t.column("age").unwrap(), &[13, 28]);
        assert_eq!(t.columns().len(), 2);
        assert_eq!(t.columns()[1], vec![1, 0]);
    }

    #[test]
    fn invalid_rows_are_rejected_atomically() {
        let mut t = sample_table();
        assert!(matches!(
            t.insert_row(&[Value::Int(30)]),
            Err(EngineError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert_row(&[Value::Int(12), Value::text("Male")]),
            Err(EngineError::ValueOutOfDomain { .. })
        ));
        // Second cell invalid: the first column must not have grown.
        assert!(t
            .insert_row(&[Value::Int(30), Value::text("Other")])
            .is_err());
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn encoded_rows_bypass_decoding() {
        let mut t = sample_table();
        t.insert_encoded_row(&[0, 1]).unwrap();
        assert_eq!(t.value_at(0, "age").unwrap(), Value::Int(17));
        assert_eq!(t.value_at(0, "sex").unwrap(), Value::text("Male"));
        assert!(t.insert_encoded_row(&[0]).is_err());
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = sample_table();
        assert!(t.column("salary").is_err());
    }

    #[test]
    fn delete_removes_one_matching_row_and_preserves_order() {
        let mut t = sample_table();
        for (age, sex) in [(30, "Male"), (45, "Female"), (30, "Male"), (50, "Male")] {
            t.insert_row(&[Value::Int(age), Value::text(sex)]).unwrap();
        }
        let target = [13u32, 1]; // age 30, Male
        assert_eq!(t.count_encoded_rows(&target).unwrap(), 2);
        assert!(t.delete_encoded_row(&target).unwrap());
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.count_encoded_rows(&target).unwrap(), 1);
        // Remaining rows keep their relative order.
        assert_eq!(t.row(0), vec![Value::Int(45), Value::text("Female")]);
        assert_eq!(t.row(1), vec![Value::Int(30), Value::text("Male")]);
        assert_eq!(t.row(2), vec![Value::Int(50), Value::text("Male")]);
        // Deleting a row that is not present reports false, mutates nothing.
        assert!(!t.delete_encoded_row(&[0, 0]).unwrap());
        assert_eq!(t.num_rows(), 3);
        assert!(t.delete_encoded_row(&[0]).is_err());
        assert!(t.count_encoded_rows(&[0]).is_err());
    }

    #[test]
    fn apply_encoded_updates_inserts_then_deletes() {
        let mut t = sample_table();
        t.insert_row(&[Value::Int(40), Value::text("Female")])
            .unwrap();
        let deleted = t
            .apply_encoded_updates(
                &[vec![13, 1], vec![14, 0]],
                &[vec![23, 0], vec![99, 1]], // second delete matches nothing
            )
            .unwrap();
        assert_eq!(deleted, 1);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0), vec![Value::Int(30), Value::text("Male")]);
        assert_eq!(t.row(1), vec![Value::Int(31), Value::text("Female")]);
    }
}
