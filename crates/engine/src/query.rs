//! The aggregate query AST.
//!
//! DProvDB answers *statistical* queries: COUNT, SUM and AVG aggregates over
//! a single relation with a selection predicate and an optional GROUP BY.
//! This is the same query class PINQ / Chorus / PrivateSQL evaluate in the
//! paper's experiments (randomized range queries and BFS exploration
//! counts).

use serde::{Deserialize, Serialize};

use crate::expr::Predicate;

/// The aggregate being computed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateKind {
    /// `COUNT(*)`.
    Count,
    /// `SUM(attribute)` over an integer attribute.
    Sum(String),
    /// `AVG(attribute)` over an integer attribute (answered as SUM/COUNT).
    Avg(String),
}

impl AggregateKind {
    /// The attribute the aggregate reads, if any.
    #[must_use]
    pub fn target_attribute(&self) -> Option<&str> {
        match self {
            AggregateKind::Count => None,
            AggregateKind::Sum(a) | AggregateKind::Avg(a) => Some(a),
        }
    }
}

/// An aggregate query over one relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The relation being queried.
    pub table: String,
    /// The aggregate to compute.
    pub aggregate: AggregateKind,
    /// The selection predicate (`Predicate::True` for no WHERE clause).
    pub predicate: Predicate,
    /// GROUP BY attributes (empty for a scalar query).
    pub group_by: Vec<String>,
}

impl Query {
    /// A `COUNT(*)` query with no predicate.
    #[must_use]
    pub fn count(table: &str) -> Self {
        Query {
            table: table.to_owned(),
            aggregate: AggregateKind::Count,
            predicate: Predicate::True,
            group_by: Vec::new(),
        }
    }

    /// A `SUM(attribute)` query with no predicate.
    #[must_use]
    pub fn sum(table: &str, attribute: &str) -> Self {
        Query {
            table: table.to_owned(),
            aggregate: AggregateKind::Sum(attribute.to_owned()),
            predicate: Predicate::True,
            group_by: Vec::new(),
        }
    }

    /// A `AVG(attribute)` query with no predicate.
    #[must_use]
    pub fn avg(table: &str, attribute: &str) -> Self {
        Query {
            table: table.to_owned(),
            aggregate: AggregateKind::Avg(attribute.to_owned()),
            predicate: Predicate::True,
            group_by: Vec::new(),
        }
    }

    /// A range-count query `COUNT(*) WHERE attr BETWEEN low AND high`, the
    /// shape used by the RRQ and BFS workloads.
    #[must_use]
    pub fn range_count(table: &str, attribute: &str, low: i64, high: i64) -> Self {
        Query::count(table).filter(Predicate::range(attribute, low, high))
    }

    /// Adds (conjoins) a predicate.
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = std::mem::replace(&mut self.predicate, Predicate::True).and(predicate);
        self
    }

    /// Adds GROUP BY attributes.
    #[must_use]
    pub fn group_by<S: AsRef<str>>(mut self, attributes: &[S]) -> Self {
        self.group_by = attributes.iter().map(|s| s.as_ref().to_owned()).collect();
        self
    }

    /// All attributes the query touches (predicate + aggregate target +
    /// group-by), used for view selection.
    #[must_use]
    pub fn referenced_attributes(&self) -> Vec<String> {
        let mut attrs: Vec<String> = self.predicate.attributes().into_iter().collect();
        if let Some(a) = self.aggregate.target_attribute() {
            if !attrs.iter().any(|x| x == a) {
                attrs.push(a.to_owned());
            }
        }
        for g in &self.group_by {
            if !attrs.iter().any(|x| x == g) {
                attrs.push(g.clone());
            }
        }
        attrs
    }

    /// A short human-readable rendering used in error messages and logs.
    #[must_use]
    pub fn describe(&self) -> String {
        let agg = match &self.aggregate {
            AggregateKind::Count => "COUNT(*)".to_owned(),
            AggregateKind::Sum(a) => format!("SUM({a})"),
            AggregateKind::Avg(a) => format!("AVG({a})"),
        };
        let group = if self.group_by.is_empty() {
            String::new()
        } else {
            format!(" GROUP BY {}", self.group_by.join(", "))
        };
        format!("{agg} FROM {}{group}", self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let q =
            Query::range_count("adult", "age", 20, 29).filter(Predicate::equals("sex", "Female"));
        assert_eq!(q.table, "adult");
        assert_eq!(q.aggregate, AggregateKind::Count);
        let attrs = q.referenced_attributes();
        assert!(attrs.contains(&"age".to_owned()) && attrs.contains(&"sex".to_owned()));
    }

    #[test]
    fn referenced_attributes_include_aggregate_and_group_by() {
        let q = Query::sum("adult", "hours_per_week")
            .filter(Predicate::range("age", 30, 40))
            .group_by(&["education"]);
        let attrs = q.referenced_attributes();
        assert_eq!(
            attrs,
            vec![
                "age".to_owned(),
                "hours_per_week".to_owned(),
                "education".to_owned()
            ]
        );
    }

    #[test]
    fn describe_is_readable() {
        let q = Query::count("adult").group_by(&["sex"]);
        assert_eq!(q.describe(), "COUNT(*) FROM adult GROUP BY sex");
        assert_eq!(Query::avg("t", "x").describe(), "AVG(x) FROM t");
    }

    #[test]
    fn aggregate_target_attribute() {
        assert_eq!(AggregateKind::Count.target_attribute(), None);
        assert_eq!(AggregateKind::Sum("x".into()).target_attribute(), Some("x"));
    }
}
