//! Exact histogram materialisation.

use serde::{Deserialize, Serialize};

use crate::database::Database;
use crate::view::{flat_index, ViewDef, ViewKind};
use crate::Result;

/// The exact (non-private) answer to a histogram view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Name of the view this histogram materialises.
    pub view: String,
    /// Per-dimension domain sizes, in the view's attribute order.
    pub dims: Vec<usize>,
    /// Flat, row-major cell counts.
    pub counts: Vec<f64>,
}

impl Histogram {
    /// Materialises a view against a database instance.
    pub fn materialize(db: &Database, view: &ViewDef) -> Result<Self> {
        let table = db.table(&view.table)?;
        let schema = table.schema();
        let dims = view.dimensions(schema)?;
        let positions = view.positions(schema)?;

        let total: usize = dims.iter().product();
        let mut counts = vec![0.0f64; total.max(1)];

        // Clipping bounds (if any) expressed as per-attribute index bounds.
        let clip = match view.kind {
            ViewKind::Clipped { lower, upper } => {
                let attr = schema.attribute(&view.attributes[0])?;
                attr.index_range(lower, upper)
            }
            ViewKind::FullDomainHistogram => None,
        };

        let mut cell = vec![0usize; positions.len()];
        for row in 0..table.num_rows() {
            for (d, &pos) in positions.iter().enumerate() {
                let mut idx = table.column_at(pos)[row] as usize;
                if let Some((lo, hi)) = clip {
                    idx = idx.clamp(lo, hi);
                }
                cell[d] = idx;
            }
            counts[flat_index(&dims, &cell)] += 1.0;
        }

        Ok(Histogram {
            view: view.name.clone(),
            dims,
            counts,
        })
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the histogram has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Sum of all cell counts (the number of contributing rows).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The count of a cell addressed by its multi-dimensional index.
    #[must_use]
    pub fn count_at(&self, indices: &[usize]) -> f64 {
        self.counts[flat_index(&self.dims, indices)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType, Schema};
    use crate::table::Table;
    use crate::value::Value;

    fn db() -> Database {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(20, 24)),
            Attribute::new("sex", AttributeType::categorical(&["F", "M"])),
        ]);
        let mut t = Table::new("adult", schema);
        for (age, sex) in [(20, "F"), (20, "M"), (21, "F"), (24, "M"), (24, "M")] {
            t.insert_row(&[Value::Int(age), Value::text(sex)]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn one_way_marginal() {
        let v = ViewDef::histogram("v_age", "adult", &["age"]);
        let h = Histogram::materialize(&db(), &v).unwrap();
        assert_eq!(h.dims, vec![5]);
        assert_eq!(h.counts, vec![2.0, 1.0, 0.0, 0.0, 2.0]);
        assert_eq!(h.total(), 5.0);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn two_way_marginal() {
        let v = ViewDef::histogram("v_age_sex", "adult", &["age", "sex"]);
        let h = Histogram::materialize(&db(), &v).unwrap();
        assert_eq!(h.dims, vec![5, 2]);
        assert_eq!(h.count_at(&[0, 0]), 1.0); // age 20, F
        assert_eq!(h.count_at(&[0, 1]), 1.0); // age 20, M
        assert_eq!(h.count_at(&[4, 1]), 2.0); // age 24, M
        assert_eq!(h.count_at(&[2, 0]), 0.0);
        assert_eq!(h.total(), 5.0);
    }

    #[test]
    fn clipped_view_clamps_out_of_range_values_into_boundary_bins() {
        let v = ViewDef::clipped("v_age_clip", "adult", "age", 21, 23);
        let h = Histogram::materialize(&db(), &v).unwrap();
        // Clip range [21, 23] corresponds to indices 1..=3; ages 20 fall into
        // index 1, ages 24 into index 3.
        assert_eq!(h.dims, vec![5]);
        assert_eq!(h.counts, vec![0.0, 3.0, 0.0, 2.0, 0.0]);
        assert_eq!(h.total(), 5.0);
    }

    #[test]
    fn unknown_view_attribute_errors() {
        let v = ViewDef::histogram("bad", "adult", &["salary"]);
        assert!(Histogram::materialize(&db(), &v).is_err());
    }
}
