//! Multi-analyst DP accounting (Section 3, Theorem 3.1 / 3.2).
//!
//! Tracks the per-analyst privacy loss of a running system and reports the
//! collusion bounds: the trivial upper bound (sum over analysts, sequential
//! composition) and the lower bound (the maximum over analysts — the least
//! information that must have been released). DProvDB's additive Gaussian
//! mechanism achieves the lower bound per view (Theorem 5.2); the ledger
//! lets callers and tests verify that claim.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dprov_dp::budget::Budget;

use crate::analyst::AnalystId;

/// The per-analyst privacy-loss ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MultiAnalystLedger {
    per_analyst: BTreeMap<AnalystId, Budget>,
    releases: usize,
}

impl MultiAnalystLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        MultiAnalystLedger {
            per_analyst: BTreeMap::new(),
            releases: 0,
        }
    }

    /// Records a release of `budget` to `analyst` (multi-analyst sequential
    /// composition, Theorem 3.1: per-coordinate addition).
    pub fn record(&mut self, analyst: AnalystId, budget: Budget) {
        let entry = self.per_analyst.entry(analyst).or_insert(Budget::ZERO);
        *entry = entry.compose(budget);
        self.releases += 1;
    }

    /// The cumulative loss to one analyst.
    #[must_use]
    pub fn loss_to(&self, analyst: AnalystId) -> Budget {
        self.per_analyst
            .get(&analyst)
            .copied()
            .unwrap_or(Budget::ZERO)
    }

    /// The collusion *lower bound* of Theorem 3.2: the pointwise maximum of
    /// the per-analyst losses.
    #[must_use]
    pub fn collusion_lower_bound(&self) -> Budget {
        self.per_analyst
            .values()
            .fold(Budget::ZERO, |acc, b| acc.pointwise_max(*b))
    }

    /// The trivial collusion *upper bound* of Theorem 3.2: sequential
    /// composition across analysts.
    #[must_use]
    pub fn collusion_upper_bound(&self) -> Budget {
        self.per_analyst
            .values()
            .fold(Budget::ZERO, |acc, b| acc.compose(*b))
    }

    /// The (t, n)-compromised upper bound of Section 7.1: the sum of the `t`
    /// largest per-analyst epsilons (and deltas).
    #[must_use]
    pub fn compromised_upper_bound(&self, t: usize) -> Budget {
        let mut epsilons: Vec<f64> = self
            .per_analyst
            .values()
            .map(|b| b.epsilon.value())
            .collect();
        let mut deltas: Vec<f64> = self.per_analyst.values().map(|b| b.delta.value()).collect();
        epsilons.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        deltas.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let eps: f64 = epsilons.iter().take(t).sum();
        let delta: f64 = deltas.iter().take(t).sum();
        Budget::new(eps, delta.min(1.0 - f64::EPSILON)).expect("valid budget")
    }

    /// Per-analyst losses, sorted by analyst id.
    #[must_use]
    pub fn all(&self) -> Vec<(AnalystId, Budget)> {
        self.per_analyst.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Number of recorded releases.
    #[must_use]
    pub fn releases(&self) -> usize {
        self.releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(eps: f64) -> Budget {
        Budget::new(eps, 1e-9).unwrap()
    }

    #[test]
    fn per_analyst_losses_compose_sequentially() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.3));
        ledger.record(AnalystId(0), b(0.2));
        ledger.record(AnalystId(1), b(0.7));
        assert!((ledger.loss_to(AnalystId(0)).epsilon.value() - 0.5).abs() < 1e-12);
        assert!((ledger.loss_to(AnalystId(1)).epsilon.value() - 0.7).abs() < 1e-12);
        assert_eq!(ledger.loss_to(AnalystId(9)), Budget::ZERO);
        assert_eq!(ledger.releases(), 3);
    }

    #[test]
    fn collusion_bounds_bracket_the_truth() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.5));
        ledger.record(AnalystId(1), b(0.7));
        ledger.record(AnalystId(2), b(0.2));
        let lower = ledger.collusion_lower_bound();
        let upper = ledger.collusion_upper_bound();
        assert!((lower.epsilon.value() - 0.7).abs() < 1e-12);
        assert!((upper.epsilon.value() - 1.4).abs() < 1e-12);
        assert!(upper.epsilon.value() >= lower.epsilon.value());
    }

    #[test]
    fn compromised_bound_interpolates_between_max_and_sum() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.5));
        ledger.record(AnalystId(1), b(0.7));
        ledger.record(AnalystId(2), b(0.2));
        assert!((ledger.compromised_upper_bound(1).epsilon.value() - 0.7).abs() < 1e-12);
        assert!((ledger.compromised_upper_bound(2).epsilon.value() - 1.2).abs() < 1e-12);
        assert!((ledger.compromised_upper_bound(3).epsilon.value() - 1.4).abs() < 1e-12);
        // t larger than n saturates at the full sum.
        assert!((ledger.compromised_upper_bound(10).epsilon.value() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_bounds_are_zero() {
        let ledger = MultiAnalystLedger::new();
        assert_eq!(ledger.collusion_lower_bound(), Budget::ZERO);
        assert_eq!(ledger.collusion_upper_bound(), Budget::ZERO);
        assert!(ledger.all().is_empty());
    }
}
