//! Multi-analyst DP accounting (Section 3, Theorem 3.1 / 3.2).
//!
//! Tracks the per-analyst privacy loss of a running system and reports the
//! collusion bounds: the trivial upper bound (sum over analysts, sequential
//! composition) and the lower bound (the maximum over analysts — the least
//! information that must have been released). DProvDB's additive Gaussian
//! mechanism achieves the lower bound per view (Theorem 5.2); the ledger
//! lets callers and tests verify that claim.
//!
//! Every ledger entry carries the [`MechanismKind`] that performed the
//! charge, so the spend can be audited *per mechanism* — both live and from
//! a replayed write-ahead log (`dprov-storage` persists the mechanism byte
//! on every commit record). The per-analyst totals are derived by composing
//! an analyst's per-mechanism buckets in a fixed (BTreeMap) order, which
//! makes the derivation reproducible under recovery replay.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dprov_dp::budget::Budget;

use crate::analyst::AnalystId;
use crate::mechanism::MechanismKind;
use crate::recorder::LedgerEntryState;

/// The per-analyst privacy-loss ledger with per-mechanism attribution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MultiAnalystLedger {
    /// One budget bucket per `(analyst, mechanism)` pair.
    per_entry: BTreeMap<(AnalystId, MechanismKind), Budget>,
    releases: usize,
}

impl MultiAnalystLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        MultiAnalystLedger {
            per_entry: BTreeMap::new(),
            releases: 0,
        }
    }

    /// Records a release of `budget` to `analyst` through `mechanism`
    /// (multi-analyst sequential composition, Theorem 3.1: per-coordinate
    /// addition).
    pub fn record(&mut self, analyst: AnalystId, budget: Budget, mechanism: MechanismKind) {
        let entry = self
            .per_entry
            .entry((analyst, mechanism))
            .or_insert(Budget::ZERO);
        *entry = entry.compose(budget);
        self.releases += 1;
    }

    /// The cumulative loss to one analyst across every mechanism.
    #[must_use]
    pub fn loss_to(&self, analyst: AnalystId) -> Budget {
        self.per_entry
            .iter()
            .filter(|((a, _), _)| *a == analyst)
            .fold(Budget::ZERO, |acc, (_, b)| acc.compose(*b))
    }

    /// The cumulative loss to one analyst through one mechanism.
    #[must_use]
    pub fn loss_to_via(&self, analyst: AnalystId, mechanism: MechanismKind) -> Budget {
        self.per_entry
            .get(&(analyst, mechanism))
            .copied()
            .unwrap_or(Budget::ZERO)
    }

    /// The cumulative loss through one mechanism, composed across analysts.
    #[must_use]
    pub fn loss_via(&self, mechanism: MechanismKind) -> Budget {
        self.per_entry
            .iter()
            .filter(|((_, m), _)| *m == mechanism)
            .fold(Budget::ZERO, |acc, (_, b)| acc.compose(*b))
    }

    /// Per-mechanism totals (composed across analysts), sorted by
    /// mechanism.
    #[must_use]
    pub fn by_mechanism(&self) -> Vec<(MechanismKind, Budget)> {
        let mut totals: BTreeMap<MechanismKind, Budget> = BTreeMap::new();
        for ((_, mech), budget) in &self.per_entry {
            let entry = totals.entry(*mech).or_insert(Budget::ZERO);
            *entry = entry.compose(*budget);
        }
        totals.into_iter().collect()
    }

    /// Per-analyst totals, composed across mechanisms.
    fn per_analyst(&self) -> BTreeMap<AnalystId, Budget> {
        let mut totals: BTreeMap<AnalystId, Budget> = BTreeMap::new();
        for ((analyst, _), budget) in &self.per_entry {
            let entry = totals.entry(*analyst).or_insert(Budget::ZERO);
            *entry = entry.compose(*budget);
        }
        totals
    }

    /// The collusion *lower bound* of Theorem 3.2: the pointwise maximum of
    /// the per-analyst losses.
    #[must_use]
    pub fn collusion_lower_bound(&self) -> Budget {
        self.per_analyst()
            .values()
            .fold(Budget::ZERO, |acc, b| acc.pointwise_max(*b))
    }

    /// The trivial collusion *upper bound* of Theorem 3.2: sequential
    /// composition across analysts.
    #[must_use]
    pub fn collusion_upper_bound(&self) -> Budget {
        self.per_analyst()
            .values()
            .fold(Budget::ZERO, |acc, b| acc.compose(*b))
    }

    /// The (t, n)-compromised upper bound of Section 7.1: the sum of the `t`
    /// largest per-analyst epsilons (and deltas).
    #[must_use]
    pub fn compromised_upper_bound(&self, t: usize) -> Budget {
        let per_analyst = self.per_analyst();
        let mut epsilons: Vec<f64> = per_analyst.values().map(|b| b.epsilon.value()).collect();
        let mut deltas: Vec<f64> = per_analyst.values().map(|b| b.delta.value()).collect();
        epsilons.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        deltas.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let eps: f64 = epsilons.iter().take(t).sum();
        let delta: f64 = deltas.iter().take(t).sum();
        Budget::new(eps, delta.min(1.0 - f64::EPSILON)).expect("valid budget")
    }

    /// Per-analyst losses, sorted by analyst id.
    #[must_use]
    pub fn all(&self) -> Vec<(AnalystId, Budget)> {
        self.per_analyst().into_iter().collect()
    }

    /// Number of recorded releases.
    #[must_use]
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// Exports every `(analyst, mechanism)` bucket for durable snapshots,
    /// in key order.
    #[must_use]
    pub fn export_entries(&self) -> Vec<LedgerEntryState> {
        self.per_entry
            .iter()
            .map(|((analyst, mechanism), budget)| LedgerEntryState {
                analyst: *analyst,
                mechanism: *mechanism,
                epsilon: budget.epsilon.value(),
                delta: budget.delta.value(),
            })
            .collect()
    }

    /// Rebuilds a ledger from exported buckets (snapshot recovery). The
    /// inverse of [`Self::export_entries`].
    #[must_use]
    pub fn from_entries(entries: &[LedgerEntryState], releases: usize) -> Self {
        use dprov_dp::budget::{Delta, Epsilon};
        let per_entry = entries
            .iter()
            .map(|e| {
                (
                    (e.analyst, e.mechanism),
                    Budget::from_parts(
                        Epsilon::unchecked(e.epsilon),
                        Delta::new(e.delta).unwrap_or(Delta::ZERO),
                    ),
                )
            })
            .collect();
        MultiAnalystLedger {
            per_entry,
            releases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MechanismKind = MechanismKind::AdditiveGaussian;

    fn b(eps: f64) -> Budget {
        Budget::new(eps, 1e-9).unwrap()
    }

    #[test]
    fn per_analyst_losses_compose_sequentially() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.3), M);
        ledger.record(AnalystId(0), b(0.2), M);
        ledger.record(AnalystId(1), b(0.7), M);
        assert!((ledger.loss_to(AnalystId(0)).epsilon.value() - 0.5).abs() < 1e-12);
        assert!((ledger.loss_to(AnalystId(1)).epsilon.value() - 0.7).abs() < 1e-12);
        assert_eq!(ledger.loss_to(AnalystId(9)), Budget::ZERO);
        assert_eq!(ledger.releases(), 3);
    }

    #[test]
    fn collusion_bounds_bracket_the_truth() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.5), M);
        ledger.record(AnalystId(1), b(0.7), M);
        ledger.record(AnalystId(2), b(0.2), M);
        let lower = ledger.collusion_lower_bound();
        let upper = ledger.collusion_upper_bound();
        assert!((lower.epsilon.value() - 0.7).abs() < 1e-12);
        assert!((upper.epsilon.value() - 1.4).abs() < 1e-12);
        assert!(upper.epsilon.value() >= lower.epsilon.value());
    }

    #[test]
    fn compromised_bound_interpolates_between_max_and_sum() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.5), M);
        ledger.record(AnalystId(1), b(0.7), M);
        ledger.record(AnalystId(2), b(0.2), M);
        assert!((ledger.compromised_upper_bound(1).epsilon.value() - 0.7).abs() < 1e-12);
        assert!((ledger.compromised_upper_bound(2).epsilon.value() - 1.2).abs() < 1e-12);
        assert!((ledger.compromised_upper_bound(3).epsilon.value() - 1.4).abs() < 1e-12);
        // t larger than n saturates at the full sum.
        assert!((ledger.compromised_upper_bound(10).epsilon.value() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_bounds_are_zero() {
        let ledger = MultiAnalystLedger::new();
        assert_eq!(ledger.collusion_lower_bound(), Budget::ZERO);
        assert_eq!(ledger.collusion_upper_bound(), Budget::ZERO);
        assert!(ledger.all().is_empty());
    }

    #[test]
    fn mechanism_attribution_is_tracked_per_bucket() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.3), MechanismKind::Vanilla);
        ledger.record(AnalystId(0), b(0.2), MechanismKind::AdditiveGaussian);
        ledger.record(AnalystId(1), b(0.4), MechanismKind::AdditiveGaussian);
        let via_v = ledger.loss_to_via(AnalystId(0), MechanismKind::Vanilla);
        let via_a = ledger.loss_to_via(AnalystId(0), MechanismKind::AdditiveGaussian);
        assert!((via_v.epsilon.value() - 0.3).abs() < 1e-12);
        assert!((via_a.epsilon.value() - 0.2).abs() < 1e-12);
        // The cross-mechanism total for analyst 0 composes both buckets.
        assert!((ledger.loss_to(AnalystId(0)).epsilon.value() - 0.5).abs() < 1e-12);
        // Per-mechanism totals compose across analysts.
        assert!(
            (ledger
                .loss_via(MechanismKind::AdditiveGaussian)
                .epsilon
                .value()
                - 0.6)
                .abs()
                < 1e-12
        );
        let by_mech = ledger.by_mechanism();
        assert_eq!(by_mech.len(), 2);
        assert_eq!(by_mech[0].0, MechanismKind::Vanilla);
    }

    #[test]
    fn export_import_round_trips_exactly() {
        let mut ledger = MultiAnalystLedger::new();
        ledger.record(AnalystId(0), b(0.31), MechanismKind::Vanilla);
        ledger.record(AnalystId(1), b(0.17), MechanismKind::AdditiveGaussian);
        ledger.record(AnalystId(1), b(0.05), MechanismKind::AdditiveGaussian);
        let entries = ledger.export_entries();
        let restored = MultiAnalystLedger::from_entries(&entries, ledger.releases());
        assert_eq!(restored.releases(), 3);
        for a in [AnalystId(0), AnalystId(1)] {
            // Bit-exact restoration: the budgets are stored as raw f64s.
            assert_eq!(
                restored.loss_to(a).epsilon.value(),
                ledger.loss_to(a).epsilon.value()
            );
        }
        assert_eq!(restored.export_entries(), entries);
    }
}
