//! Declared workloads: query templates with relative frequencies.
//!
//! A [`DeclaredWorkload`] is the planner's input — the analyst population
//! announces *what it intends to ask* (templates) and *how often* (weights)
//! before any budget is spent, so the system can decide which views and
//! synopses to materialise at which granularity. Declaring a workload never
//! charges budget and never constrains later submissions: it is advisory
//! input to planning, nothing more.

use serde::{Deserialize, Serialize};

use dprov_engine::group::GroupByQuery;
use dprov_engine::query::Query;

/// One query template with a relative frequency.
///
/// A template whose `group_by` field is non-empty is a *grouped* template:
/// it stands for one admission per group cell (see
/// [`GroupByQuery::scalar_queries`]), which is exactly how the planner
/// prices it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// The template query (scalar when `group_by` is empty).
    pub query: Query,
    /// Relative frequency of the template within the workload. Only ratios
    /// matter; weights need not sum to one.
    pub weight: f64,
}

impl QueryTemplate {
    /// The grouped form of the template, when it has grouping attributes.
    #[must_use]
    pub fn grouped(&self) -> Option<GroupByQuery> {
        if self.query.group_by.is_empty() {
            return None;
        }
        Some(GroupByQuery {
            table: self.query.table.clone(),
            group_cols: self.query.group_by.clone(),
            aggregate: self.query.aggregate.clone(),
            predicate: self.query.predicate.clone(),
        })
    }
}

/// A declared workload: templates plus frequencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DeclaredWorkload {
    /// The templates, in declaration order.
    pub templates: Vec<QueryTemplate>,
}

impl DeclaredWorkload {
    /// An empty declaration.
    #[must_use]
    pub fn new() -> Self {
        DeclaredWorkload::default()
    }

    /// Adds a template (builder style).
    #[must_use]
    pub fn template(mut self, query: Query, weight: f64) -> Self {
        self.templates.push(QueryTemplate { query, weight });
        self
    }

    /// Sum of the template weights.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.templates.iter().map(|t| t.weight).sum()
    }

    /// The share of the workload a template represents (uniform when every
    /// weight is zero).
    #[must_use]
    pub fn share(&self, index: usize) -> f64 {
        let total = self.total_weight();
        if total <= 0.0 {
            if self.templates.is_empty() {
                0.0
            } else {
                1.0 / self.templates.len() as f64
            }
        } else {
            self.templates[index].weight / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_templates_convert() {
        let w = DeclaredWorkload::new()
            .template(Query::count("sales_wide").group_by(&["store.region"]), 3.0)
            .template(Query::count("sales_wide"), 1.0);
        assert_eq!(w.templates.len(), 2);
        let g = w.templates[0].grouped().unwrap();
        assert_eq!(g.group_cols, vec!["store.region".to_owned()]);
        assert!(w.templates[1].grouped().is_none());
        assert!((w.share(0) - 0.75).abs() < 1e-12);
        assert!((w.share(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform_shares() {
        let w = DeclaredWorkload::new()
            .template(Query::count("t"), 0.0)
            .template(Query::count("t"), 0.0);
        assert!((w.share(0) - 0.5).abs() < 1e-12);
        assert_eq!(DeclaredWorkload::new().total_weight(), 0.0);
    }
}
