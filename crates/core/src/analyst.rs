//! Data analysts and privilege levels.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Identifier of a registered analyst (dense index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AnalystId(pub usize);

impl std::fmt::Display for AnalystId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A privacy privilege level, an integer in `1..=10` (RQ3 in §3): a higher
/// number means a more trusted analyst who may receive more information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Privilege(u8);

impl Privilege {
    /// The highest privilege level expressible in the system.
    pub const MAX_LEVEL: u8 = 10;

    /// Creates a privilege level, rejecting values outside `1..=10`.
    pub fn new(level: u8) -> Result<Self> {
        if (1..=Self::MAX_LEVEL).contains(&level) {
            Ok(Privilege(level))
        } else {
            Err(CoreError::InvalidPrivilege(level))
        }
    }

    /// The raw level.
    #[must_use]
    pub fn level(self) -> u8 {
        self.0
    }

    /// The level as a float (used in constraint normalisation and DCFG).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }
}

/// A registered analyst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analyst {
    /// The analyst's identifier.
    pub id: AnalystId,
    /// Display name.
    pub name: String,
    /// Privacy privilege level.
    pub privilege: Privilege,
}

/// The registry of analysts known to the system.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalystRegistry {
    analysts: Vec<Analyst>,
}

impl AnalystRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        AnalystRegistry {
            analysts: Vec::new(),
        }
    }

    /// Registers an analyst and returns the new identifier.
    pub fn register(&mut self, name: &str, privilege: u8) -> Result<AnalystId> {
        let privilege = Privilege::new(privilege)?;
        let id = AnalystId(self.analysts.len());
        self.analysts.push(Analyst {
            id,
            name: name.to_owned(),
            privilege,
        });
        Ok(id)
    }

    /// Looks up an analyst by id.
    pub fn get(&self, id: AnalystId) -> Result<&Analyst> {
        self.analysts.get(id.0).ok_or(CoreError::UnknownAnalyst(id))
    }

    /// Looks up an analyst by display name (the credential the analyst
    /// protocol authenticates with). Names are compared exactly; the first
    /// registration wins if a name was registered twice.
    #[must_use]
    pub fn find_by_name(&self, name: &str) -> Option<&Analyst> {
        self.analysts.iter().find(|a| a.name == name)
    }

    /// The privilege of an analyst.
    pub fn privilege(&self, id: AnalystId) -> Result<Privilege> {
        Ok(self.get(id)?.privilege)
    }

    /// All registered analysts.
    #[must_use]
    pub fn analysts(&self) -> &[Analyst] {
        &self.analysts
    }

    /// Identifiers of all registered analysts.
    #[must_use]
    pub fn ids(&self) -> Vec<AnalystId> {
        self.analysts.iter().map(|a| a.id).collect()
    }

    /// Number of registered analysts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.analysts.len()
    }

    /// True if no analysts are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.analysts.is_empty()
    }

    /// The sum of all privilege levels (the Def. 10 normaliser).
    #[must_use]
    pub fn privilege_sum(&self) -> f64 {
        self.analysts.iter().map(|a| a.privilege.as_f64()).sum()
    }

    /// The maximum privilege level among registered analysts (the Def. 11
    /// normaliser when no system-wide maximum is configured).
    #[must_use]
    pub fn privilege_max(&self) -> f64 {
        self.analysts
            .iter()
            .map(|a| a.privilege.as_f64())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_bounds() {
        assert!(Privilege::new(0).is_err());
        assert!(Privilege::new(11).is_err());
        assert_eq!(Privilege::new(1).unwrap().level(), 1);
        assert_eq!(Privilege::new(10).unwrap().as_f64(), 10.0);
    }

    #[test]
    fn registration_assigns_dense_ids() {
        let mut reg = AnalystRegistry::new();
        let a = reg.register("alice", 4).unwrap();
        let b = reg.register("bob", 1).unwrap();
        assert_eq!(a, AnalystId(0));
        assert_eq!(b, AnalystId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).unwrap().name, "alice");
        assert_eq!(reg.privilege(b).unwrap().level(), 1);
        assert!(reg.get(AnalystId(5)).is_err());
    }

    #[test]
    fn privilege_aggregates() {
        let mut reg = AnalystRegistry::new();
        reg.register("a", 1).unwrap();
        reg.register("b", 4).unwrap();
        reg.register("c", 10).unwrap();
        assert_eq!(reg.privilege_sum(), 15.0);
        assert_eq!(reg.privilege_max(), 10.0);
    }

    #[test]
    fn invalid_privilege_does_not_register() {
        let mut reg = AnalystRegistry::new();
        assert!(reg.register("bad", 0).is_err());
        assert!(reg.is_empty());
    }
}
