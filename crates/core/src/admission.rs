//! Budget-safe admission control for concurrent submissions.
//!
//! The provenance-table constraint check and the subsequent charge must be
//! observed atomically by every concurrent submission, or two in-flight
//! queries could both pass the check and jointly overspend a row, column or
//! table constraint. [`AdmissionControl`] provides the two lock families the
//! thread-safe [`crate::system::DProvDb`] uses around its `Mutex`-guarded
//! provenance table:
//!
//! * **entry locks** — one striped `Mutex` per `(analyst, view)` pair,
//!   held for the whole resolve → translate → check-and-reserve → release
//!   sequence of one submission. This serialises racing submissions that
//!   target the *same* provenance entry, so a pair of identical queries
//!   from one analyst cannot both miss the cache and double-derive (the
//!   second waits and is answered from the first one's synopsis for free).
//! * **view locks** — one `Mutex` per view, taken by the additive-Gaussian
//!   path *after* the entry lock (a fixed acquisition order, so the scheme
//!   is deadlock-free). The additive mechanism reads the hidden global
//!   synopsis's state, translates against it, and then grows it; the view
//!   lock makes that read-translate-grow sequence atomic per view, which
//!   keeps the delivered accuracy consistent with what the translation
//!   promised. Queries over different views never contend.
//!
//! The actual constraint arithmetic stays in
//! [`crate::provenance::ProvenanceTable`]; the check-and-reserve critical
//! section itself is a single short `Mutex` acquisition in the system layer.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Striped locks gating admission of concurrent submissions.
#[derive(Debug)]
pub struct AdmissionControl {
    view_index: HashMap<String, usize>,
    /// `analyst * num_views + view`, one stripe per provenance entry.
    entry_locks: Vec<Mutex<()>>,
    /// One lock per view column, serialising global-synopsis growth.
    view_locks: Vec<Mutex<()>>,
    num_views: usize,
}

impl AdmissionControl {
    /// Builds the lock table for `num_analysts` rows over `views` columns.
    #[must_use]
    pub fn new(num_analysts: usize, views: &[String]) -> Self {
        let view_index: HashMap<String, usize> = views
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect();
        let num_views = views.len();
        AdmissionControl {
            view_index,
            entry_locks: (0..num_analysts * num_views)
                .map(|_| Mutex::new(()))
                .collect(),
            view_locks: (0..num_views).map(|_| Mutex::new(())).collect(),
            num_views,
        }
    }

    /// Acquires the `(analyst, view)` entry lock. Unknown views (possible
    /// only for baselines that bypass the catalog) fall back to the first
    /// stripe of the analyst's row.
    pub fn lock_entry(&self, analyst: usize, view: &str) -> MutexGuard<'_, ()> {
        let v = self.view_index.get(view).copied().unwrap_or(0);
        let idx = analyst * self.num_views + v;
        self.entry_locks[idx].lock().expect("entry lock poisoned")
    }

    /// Acquires the per-view lock serialising global-synopsis growth.
    /// Must be taken *after* [`Self::lock_entry`] (fixed lock order).
    pub fn lock_view(&self, view: &str) -> MutexGuard<'_, ()> {
        let v = self.view_index.get(view).copied().unwrap_or(0);
        self.view_locks[v].lock().expect("view lock poisoned")
    }

    /// Number of view stripes.
    #[must_use]
    pub fn num_views(&self) -> usize {
        self.num_views
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn views(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn distinct_entries_do_not_block_each_other() {
        let ac = AdmissionControl::new(2, &views(2));
        let _a = ac.lock_entry(0, "v0");
        let _b = ac.lock_entry(0, "v1");
        let _c = ac.lock_entry(1, "v0");
        let _d = ac.lock_view("v1");
    }

    #[test]
    fn same_entry_serialises_across_threads() {
        let ac = Arc::new(AdmissionControl::new(1, &views(1)));
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ac = Arc::clone(&ac);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _guard = ac.lock_entry(0, "v0");
                    // Non-atomic read-modify-write protected by the entry
                    // lock; a lost update here would show in the total.
                    let v = *counter.lock().unwrap();
                    *counter.lock().unwrap() = v + 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 800);
    }

    #[test]
    fn unknown_views_fall_back_without_panicking() {
        let ac = AdmissionControl::new(1, &views(1));
        let _g = ac.lock_entry(0, "nope");
        assert_eq!(ac.num_views(), 1);
    }
}
