//! The (t, n)-compromised threat model (Section 7.1).
//!
//! Instead of assuming *all* analysts may collude, the administrator can
//! express a prior belief as a corruption graph: an edge means two analysts
//! may collude, and the policy is valid when every connected component has
//! fewer than `t` nodes (Definition 14). Budget can then be assigned per
//! connected component — up to `k · ψ_P` in total across `k` components
//! (Theorem 7.2) — because analysts in different components are assumed not
//! to share answers.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::analyst::AnalystId;
use crate::error::{CoreError, Result};

/// An undirected corruption graph over `n` analysts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorruptionGraph {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl CorruptionGraph {
    /// Creates a graph over `n` analysts with no edges (no collusion
    /// assumed between any pair).
    #[must_use]
    pub fn new(n: usize) -> Self {
        CorruptionGraph {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge: analysts `a` and `b` may collude.
    pub fn add_edge(&mut self, a: AnalystId, b: AnalystId) -> Result<()> {
        if a.0 >= self.n || b.0 >= self.n {
            return Err(CoreError::InvalidCorruptionGraph(format!(
                "edge ({a}, {b}) references an analyst outside 0..{}",
                self.n
            )));
        }
        if a != b {
            let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
            self.edges.insert((lo, hi));
        }
        Ok(())
    }

    /// Number of analysts (nodes).
    #[must_use]
    pub fn num_analysts(&self) -> usize {
        self.n
    }

    /// The connected components, each a sorted list of analyst ids.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<AnalystId>> {
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(a, b) in &self.edges {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<AnalystId>> = Default::default();
        for i in 0..self.n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(AnalystId(i));
        }
        groups.into_values().collect()
    }

    /// Checks that the graph is a valid `(t, n)`-analysts corruption graph
    /// (Definition 14): every connected component has fewer than `t` nodes.
    pub fn validate(&self, t: usize) -> Result<()> {
        for component in self.components() {
            if component.len() >= t {
                return Err(CoreError::InvalidCorruptionGraph(format!(
                    "component {:?} has {} nodes, which is not < t = {t}",
                    component,
                    component.len()
                )));
            }
        }
        Ok(())
    }

    /// Assigns the overall budget ψ_P to each connected component,
    /// splitting it inside the component proportionally to the supplied
    /// privilege weights (Theorem 7.2's construction). Returns per-analyst
    /// budgets indexed by `AnalystId.0`.
    pub fn component_budgets(&self, psi_p: f64, privileges: &[f64]) -> Result<Vec<f64>> {
        if privileges.len() != self.n {
            return Err(CoreError::InvalidCorruptionGraph(format!(
                "expected {} privilege weights, got {}",
                self.n,
                privileges.len()
            )));
        }
        let mut budgets = vec![0.0; self.n];
        for component in self.components() {
            let total: f64 = component.iter().map(|a| privileges[a.0]).sum();
            if total <= 0.0 {
                return Err(CoreError::InvalidCorruptionGraph(
                    "component has zero total privilege".to_owned(),
                ));
            }
            for a in component {
                budgets[a.0] = psi_p * privileges[a.0] / total;
            }
        }
        Ok(budgets)
    }

    /// The total budget the relaxed model can hand out: `k · ψ_P` where `k`
    /// is the number of connected components.
    #[must_use]
    pub fn total_assignable(&self, psi_p: f64) -> f64 {
        self.components().len() as f64 * psi_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_an_empty_graph_are_singletons() {
        let g = CorruptionGraph::new(4);
        let comps = g.components();
        assert_eq!(comps.len(), 4);
        assert!(g.validate(2).is_ok());
        assert_eq!(g.total_assignable(1.0), 4.0);
    }

    #[test]
    fn edges_merge_components() {
        let mut g = CorruptionGraph::new(5);
        g.add_edge(AnalystId(0), AnalystId(1)).unwrap();
        g.add_edge(AnalystId(1), AnalystId(2)).unwrap();
        g.add_edge(AnalystId(3), AnalystId(4)).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![AnalystId(0), AnalystId(1), AnalystId(2)]);
        // t must exceed the largest component size.
        assert!(g.validate(3).is_err());
        assert!(g.validate(4).is_ok());
    }

    #[test]
    fn self_loops_and_bad_indices() {
        let mut g = CorruptionGraph::new(2);
        g.add_edge(AnalystId(0), AnalystId(0)).unwrap();
        assert_eq!(g.components().len(), 2);
        assert!(g.add_edge(AnalystId(0), AnalystId(5)).is_err());
    }

    #[test]
    fn component_budgets_give_each_component_the_full_budget() {
        let mut g = CorruptionGraph::new(4);
        g.add_edge(AnalystId(0), AnalystId(1)).unwrap();
        let budgets = g.component_budgets(2.0, &[1.0, 3.0, 2.0, 2.0]).unwrap();
        // Component {0,1}: split 2.0 proportionally 1:3.
        assert!((budgets[0] - 0.5).abs() < 1e-12);
        assert!((budgets[1] - 1.5).abs() < 1e-12);
        // Singletons get the full budget each.
        assert!((budgets[2] - 2.0).abs() < 1e-12);
        assert!((budgets[3] - 2.0).abs() < 1e-12);
        // Total assignable exceeds the all-collusion setting when k > 1.
        assert!(g.total_assignable(2.0) > 2.0);
    }

    #[test]
    fn component_budget_errors() {
        let g = CorruptionGraph::new(2);
        assert!(g.component_budgets(1.0, &[1.0]).is_err());
        assert!(g.component_budgets(1.0, &[1.0, 0.0]).is_err());
    }
}
