//! The query-processor interface shared by DProvDB and the baselines.
//!
//! The experiment runner (in `dprov-workloads`) drives every system through
//! this trait, so the end-to-end comparisons of Section 6 are apples to
//! apples: same workloads, same submission modes, same metrics.

use serde::{Deserialize, Serialize};

use dprov_engine::group::GroupByQuery;
use dprov_engine::query::Query;
use dprov_engine::value::Value;

use crate::analyst::AnalystId;
use crate::error::{RejectReason, Result};

/// The dual query-submission modes (Principle 3, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SubmissionMode {
    /// Accuracy-oriented: the analyst specifies the maximum expected squared
    /// error of the query answer; the system translates it into the minimal
    /// budget.
    Accuracy {
        /// Upper bound on the expected squared error of the answer.
        variance: f64,
    },
    /// Privacy-oriented: the analyst attaches an explicit epsilon.
    Privacy {
        /// The epsilon to spend on this query.
        epsilon: f64,
    },
}

/// A query submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// The query.
    pub query: Query,
    /// How the budget for it is specified.
    pub mode: SubmissionMode,
}

impl QueryRequest {
    /// An accuracy-oriented request.
    #[must_use]
    pub fn with_accuracy(query: Query, variance: f64) -> Self {
        QueryRequest {
            query,
            mode: SubmissionMode::Accuracy { variance },
        }
    }

    /// A privacy-oriented request.
    #[must_use]
    pub fn with_privacy(query: Query, epsilon: f64) -> Self {
        QueryRequest {
            query,
            mode: SubmissionMode::Privacy { epsilon },
        }
    }
}

/// A successfully answered query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnsweredQuery {
    /// The noisy answer returned to the analyst.
    pub value: f64,
    /// The view the answer was computed from (None for view-less baselines).
    pub view: Option<String>,
    /// The incremental epsilon charged to the analyst for this query (zero
    /// when answered entirely from an existing synopsis).
    pub epsilon_charged: f64,
    /// The expected squared error of the returned answer (`v_q`).
    pub noise_variance: f64,
    /// True when the answer came from a cached/local synopsis without
    /// spending new budget.
    pub from_cache: bool,
    /// The update epoch the answer's synopsis was released against
    /// (0 = the immutable setup state). Under a carry-forward epoch
    /// policy this may lag the system's current epoch by up to the
    /// configured staleness bound; under re-noise it always equals the
    /// epoch current at release time.
    pub epoch: u64,
}

/// A grouped query submission: one aggregate per combination of the
/// grouping attributes' domains ("GROUP BY*" — empty groups included, so
/// the output shape is data-independent).
///
/// Semantically a `GroupedRequest` *is* the sequence of per-group scalar
/// [`QueryRequest`]s produced by [`GroupByQuery::scalar_queries`] in
/// canonical enumeration order, sharing one [`SubmissionMode`] (the
/// accuracy/privacy target applies to each cell individually). The grouped
/// answering path is bit-identical to submitting those one by one — same
/// answers, same noise draws, same ledger charges — it just resolves the
/// view and walks its histogram once instead of per group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedRequest {
    /// The grouped query.
    pub query: GroupByQuery,
    /// How the per-cell budget is specified.
    pub mode: SubmissionMode,
}

impl GroupedRequest {
    /// An accuracy-oriented grouped request (`variance` bounds each cell's
    /// expected squared error).
    #[must_use]
    pub fn with_accuracy(query: GroupByQuery, variance: f64) -> Self {
        GroupedRequest {
            query,
            mode: SubmissionMode::Accuracy { variance },
        }
    }

    /// A privacy-oriented grouped request (`epsilon` is spent per released
    /// cell, under the normal provenance pricing).
    #[must_use]
    pub fn with_privacy(query: GroupByQuery, epsilon: f64) -> Self {
        GroupedRequest {
            query,
            mode: SubmissionMode::Privacy { epsilon },
        }
    }
}

/// The outcome of a grouped submission: one [`QueryOutcome`] per group
/// cell, in canonical enumeration order. Cells are admitted independently,
/// so a grouped answer can be partially rejected (e.g. the budget runs out
/// halfway through the enumeration) — exactly as the per-group oracle
/// would be.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedOutcome {
    /// The group keys, in canonical enumeration order.
    pub keys: Vec<Vec<Value>>,
    /// Per-cell outcomes, parallel to `keys`.
    pub outcomes: Vec<QueryOutcome>,
}

impl GroupedOutcome {
    /// Number of answered cells.
    #[must_use]
    pub fn answered_cells(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_answered()).count()
    }

    /// Total epsilon charged across the released cells.
    #[must_use]
    pub fn epsilon_charged(&self) -> f64 {
        self.outcomes
            .iter()
            .filter_map(|o| o.answered().map(|a| a.epsilon_charged))
            .sum()
    }
}

/// The outcome of a submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// The query was answered.
    Answered(AnsweredQuery),
    /// The query was rejected.
    Rejected {
        /// Why it was rejected.
        reason: RejectReason,
    },
}

impl QueryOutcome {
    /// True when the query was answered.
    #[must_use]
    pub fn is_answered(&self) -> bool {
        matches!(self, QueryOutcome::Answered(_))
    }

    /// The answered payload, if any.
    #[must_use]
    pub fn answered(&self) -> Option<&AnsweredQuery> {
        match self {
            QueryOutcome::Answered(a) => Some(a),
            QueryOutcome::Rejected { .. } => None,
        }
    }
}

/// A multi-analyst query-processing system.
pub trait QueryProcessor {
    /// Human-readable system name (used as the series label in experiment
    /// outputs).
    fn name(&self) -> String;

    /// Processes one query submitted by `analyst`.
    fn submit(&mut self, analyst: AnalystId, request: &QueryRequest) -> Result<QueryOutcome>;

    /// The total privacy loss consumed so far under the system's own
    /// worst-case accounting (used for the cumulative-budget plots, Fig. 4).
    fn cumulative_epsilon(&self) -> f64;

    /// The privacy loss consumed on behalf of a specific analyst.
    fn analyst_epsilon(&self, analyst: AnalystId) -> f64;

    /// Number of registered analysts.
    fn num_analysts(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::query::Query;

    #[test]
    fn request_constructors() {
        let q = Query::count("adult");
        let a = QueryRequest::with_accuracy(q.clone(), 100.0);
        assert_eq!(a.mode, SubmissionMode::Accuracy { variance: 100.0 });
        let p = QueryRequest::with_privacy(q, 0.1);
        assert_eq!(p.mode, SubmissionMode::Privacy { epsilon: 0.1 });
    }

    #[test]
    fn outcome_helpers() {
        let answered = QueryOutcome::Answered(AnsweredQuery {
            value: 1.0,
            view: None,
            epsilon_charged: 0.1,
            noise_variance: 2.0,
            from_cache: false,
            epoch: 0,
        });
        assert!(answered.is_answered());
        assert!(answered.answered().is_some());
        let rejected = QueryOutcome::Rejected {
            reason: crate::error::RejectReason::TableConstraint,
        };
        assert!(!rejected.is_answered());
        assert!(rejected.answered().is_none());
    }
}
