//! The durable-commit hook on the admission path.
//!
//! DProvDB's central guarantee — provenance-tracked budget constraints are
//! never exceeded — is only as strong as the place the spent budget lives.
//! This module defines the [`Recorder`] trait through which
//! [`crate::system::DProvDb`] externalises every budget commit to a durable
//! write-ahead ledger *before* the in-memory charge becomes visible, plus
//! the plain-data record and state types the storage crate serialises.
//!
//! # Write-ahead protocol
//!
//! A submission that passes the constraint check produces one
//! [`CommitRecord`] carrying everything recovery needs to replay the commit
//! exactly: the provenance entry transition (`prev_entry → new_entry`), the
//! epsilon charged to the analyst's ledger, and the mechanism that charged
//! it. The system calls [`Recorder::record_commit`] *inside* the provenance
//! critical section, before applying the charge, so
//!
//! * the ledger's record order equals the commit order, and
//! * a record that fails to persist aborts the submission with
//!   [`crate::error::CoreError::Storage`] — the in-memory state is never
//!   ahead of the durable state.
//!
//! A release that fails *after* its reserve (noise generation error) rolls
//! the in-memory charge back and appends a tombstone via
//! [`Recorder::record_rollback`]. Tombstone appends are best-effort: losing
//! one makes recovery **over**-count the spend, which is the safe direction
//! for a privacy accountant (recovered spend ≥ acknowledged spend, never
//! less).
//!
//! Data accesses feeding the tight accountant are journalled with
//! [`Recorder::record_access`] under the accountant lock, so the replayed
//! accountant composes the same releases in the same order.
//!
//! Recovery drives the inverse path: [`crate::system::DProvDb`] exposes
//! [`crate::system::DProvDb::import_durable_state`] for the snapshot and
//! [`crate::system::DProvDb::replay_commit`] /
//! [`crate::system::DProvDb::replay_access`] for the ledger suffix; all of
//! them mutate memory *without* echoing back into the recorder.

use dprov_delta::{EncodedBatch, UpdateLog};

use crate::analyst::AnalystId;
use crate::error::StorageError;
use crate::mechanism::MechanismKind;

/// One durably-committed admission charge: the full provenance-entry
/// transition of a single accepted submission.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Monotone commit sequence number, assigned inside the provenance
    /// critical section (so sequence order is commit order).
    pub seq: u64,
    /// The charged analyst.
    pub analyst: AnalystId,
    /// The charged view (provenance column).
    pub view: String,
    /// The mechanism that performed the charge — kept on every ledger
    /// entry so per-mechanism spend can be audited from the replayed log.
    pub mechanism: MechanismKind,
    /// Provenance entry `P[A_i, V_j]` before the commit.
    pub prev_entry: f64,
    /// Provenance entry `P[A_i, V_j]` after the commit.
    pub new_entry: f64,
    /// Epsilon charged to the analyst's privacy-loss ledger (equals
    /// `new_entry - prev_entry` up to float rounding; stored explicitly so
    /// replay is bit-exact).
    pub charged: f64,
}

/// One data access (a release that touched the protected database),
/// journalled for the tight accountant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRecord {
    /// The commit this access belongs to.
    pub seq: u64,
    /// The epsilon of the release.
    pub epsilon: f64,
    /// The calibrated noise scale of the release.
    pub sigma: f64,
    /// The sensitivity of the released view.
    pub sensitivity: f64,
}

/// The durable-commit hook. Implementations must be durable when
/// [`Recorder::record_commit`] returns `Ok` (fsync'd or equivalently
/// persisted) — the system applies the in-memory charge immediately after.
pub trait Recorder: Send + Sync {
    /// Persists one admission charge. Called inside the provenance critical
    /// section, before the charge is applied in memory. An `Err` aborts the
    /// submission (no in-memory state changes).
    fn record_commit(&self, record: &CommitRecord) -> Result<(), StorageError>;

    /// Persists one data access for the tight accountant. Called under the
    /// accountant lock, before the access is applied. Failures are
    /// tolerated by the caller (tight accounting is reporting-only).
    fn record_access(&self, record: &AccessRecord) -> Result<(), StorageError>;

    /// Appends a tombstone voiding the commit with sequence `seq` after its
    /// release failed and the in-memory charge was rolled back. Best-effort:
    /// a lost tombstone makes recovery over-count spend (safe direction).
    fn record_rollback(&self, seq: u64) -> Result<(), StorageError>;

    /// Persists one validated update batch. Called under the update-log
    /// lock, before the batch becomes pending in memory — an `Err` refuses
    /// the update. The default implementation accepts silently, which is
    /// correct only for volatile recorders (in-memory test doubles);
    /// durable recorders must override it.
    fn record_update(&self, batch: &EncodedBatch) -> Result<(), StorageError> {
        let _ = batch;
        Ok(())
    }

    /// Persists an epoch seal covering every update batch with
    /// `seq < through_seq` not sealed earlier. Called under the epoch
    /// freeze, before the seal is applied in memory — an `Err` aborts the
    /// seal with nothing applied. Default: accept silently (volatile
    /// recorders only).
    fn record_epoch_seal(&self, epoch: u64, through_seq: u64) -> Result<(), StorageError> {
        let _ = (epoch, through_seq);
        Ok(())
    }
}

/// Serialisable state of one provenance-table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceEntryState {
    /// The analyst row.
    pub analyst: AnalystId,
    /// The view column.
    pub view: String,
    /// The cumulative epsilon `P[A_i, V_j]`.
    pub epsilon: f64,
}

/// Serialisable state of one `(analyst, mechanism)` ledger bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntryState {
    /// The analyst the loss accrued to.
    pub analyst: AnalystId,
    /// The mechanism that charged it.
    pub mechanism: MechanismKind,
    /// Cumulative epsilon of the bucket.
    pub epsilon: f64,
    /// Cumulative delta of the bucket.
    pub delta: f64,
}

/// Serialisable state of the hidden global synopsis of one view.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalSynopsisState {
    /// Nominal epsilon of the synopsis.
    pub epsilon: f64,
    /// Actual per-bin variance.
    pub variance: f64,
    /// The update epoch the synopsis was released against.
    pub epoch: u64,
    /// The noisy counts.
    pub counts: Vec<f64>,
}

/// Serialisable state of one analyst's local (or vanilla-cached) synopsis.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSynopsisState {
    /// The owning analyst's index.
    pub analyst: usize,
    /// Nominal epsilon of the synopsis.
    pub epsilon: f64,
    /// Actual per-bin variance.
    pub variance: f64,
    /// The update epoch the synopsis was released against.
    pub epoch: u64,
    /// The noisy counts.
    pub counts: Vec<f64>,
}

/// Serialisable cache state of one view: the hidden global synopsis plus
/// every analyst's local synopsis.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewCacheState {
    /// The view name.
    pub view: String,
    /// The hidden global synopsis, if released yet.
    pub global: Option<GlobalSynopsisState>,
    /// Per-analyst local synopses, sorted by analyst index.
    pub locals: Vec<LocalSynopsisState>,
}

/// A consistent, serialisable snapshot of every durably-relevant piece of
/// [`crate::system::DProvDb`] state: the provenance matrix, the
/// multi-analyst ledger, the tight accountant's access history, and the
/// synopsis cache. Produced by
/// [`crate::system::DProvDb::export_durable_state`] under the commit
/// freeze, consumed by [`crate::system::DProvDb::import_durable_state`] at
/// recovery.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoreState {
    /// The next commit sequence number (all seqs below are reflected here).
    pub next_seq: u64,
    /// Non-zero provenance entries.
    pub provenance: Vec<ProvenanceEntryState>,
    /// Per-(analyst, mechanism) ledger buckets.
    pub ledger: Vec<LedgerEntryState>,
    /// Total number of ledger releases recorded.
    pub ledger_releases: u64,
    /// Every data access recorded by the tight accountant, in record order.
    pub accesses: Vec<AccessRecord>,
    /// The synopsis cache, one entry per view with any cached state.
    pub synopses: Vec<ViewCacheState>,
    /// The dynamic-data state: pending update batches plus the sealed
    /// epoch history (recovery re-applies the seals deterministically to
    /// rebuild segments and patched histograms). Grows with total
    /// updates, like `accesses` — summarising it is a known follow-up.
    pub deltas: UpdateLog,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The trait is object-safe and usable through `Arc<dyn Recorder>`.
    #[test]
    fn recorder_is_object_safe() {
        #[derive(Default)]
        struct Counting {
            commits: AtomicUsize,
        }
        impl Recorder for Counting {
            fn record_commit(&self, _: &CommitRecord) -> Result<(), StorageError> {
                self.commits.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fn record_access(&self, _: &AccessRecord) -> Result<(), StorageError> {
                Ok(())
            }
            fn record_rollback(&self, _: u64) -> Result<(), StorageError> {
                Ok(())
            }
        }
        let rec: std::sync::Arc<dyn Recorder> = std::sync::Arc::new(Counting::default());
        rec.record_commit(&CommitRecord {
            seq: 0,
            analyst: AnalystId(0),
            view: "v".to_owned(),
            mechanism: MechanismKind::Vanilla,
            prev_entry: 0.0,
            new_entry: 0.1,
            charged: 0.1,
        })
        .unwrap();
        rec.record_rollback(0).unwrap();
    }

    #[test]
    fn mechanism_codes_round_trip() {
        for mech in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
            assert_eq!(MechanismKind::from_code(mech.code()), Some(mech));
        }
        assert_eq!(MechanismKind::from_code(0), None);
        assert_eq!(MechanismKind::from_code(99), None);
    }
}
