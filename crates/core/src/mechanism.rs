//! Mechanism selection.
//!
//! DProvDB ships two provenance-aware mechanisms (Section 5): the vanilla
//! approach (Algorithm 2 — independent noise per analyst, cached views) and
//! the additive Gaussian approach (Algorithm 4 — correlated noise derived
//! from a hidden global synopsis). The [`crate::system::DProvDb`]
//! orchestrator is parameterised by this enum.

use serde::{Deserialize, Serialize};

/// Which provenance-aware mechanism the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MechanismKind {
    /// Algorithm 2: every (analyst, view) release is an independent
    /// analytic-Gaussian synopsis; composition across analysts on a view is
    /// a sum.
    Vanilla,
    /// Algorithm 4: local synopses are derived from one hidden global
    /// synopsis per view using the additive Gaussian mechanism; composition
    /// across analysts on a view is a maximum.
    AdditiveGaussian,
}

impl MechanismKind {
    /// The display name used in experiment outputs (matching the paper's
    /// figure legends).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MechanismKind::Vanilla => "Vanilla",
            MechanismKind::AdditiveGaussian => "DProvDB",
        }
    }

    /// A stable one-byte wire code for durable storage (`dprov-storage`
    /// ledger records and snapshot fingerprints). Codes are append-only:
    /// existing values must never be renumbered.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            MechanismKind::Vanilla => 1,
            MechanismKind::AdditiveGaussian => 2,
        }
    }

    /// Decodes a wire code produced by [`Self::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(MechanismKind::Vanilla),
            2 => Some(MechanismKind::AdditiveGaussian),
            _ => None,
        }
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(MechanismKind::Vanilla.label(), "Vanilla");
        assert_eq!(MechanismKind::AdditiveGaussian.to_string(), "DProvDB");
    }
}
