//! # `dprov-core` — the DProvDB system
//!
//! This crate implements the paper's contribution proper, on top of the
//! `dprov-dp` primitives and the `dprov-engine` relational substrate:
//!
//! * [`analyst`] — analyst identities and privilege levels (1–10);
//! * [`provenance`] — the privacy provenance table (Definition 8): the
//!   per-analyst × per-view privacy-loss matrix, its row / column / table
//!   constraints, and the constraint specifications of Definitions 10–12
//!   plus the expansion factor τ;
//! * [`synopsis_manager`] — global and local DP synopses, additive-Gaussian
//!   local releases, and UMVUE-weighted view combination (Eq. 2);
//! * [`mechanism`] — the mechanism selector (vanilla Algorithm 2 vs additive
//!   Gaussian Algorithm 4);
//! * [`system`] — the `DProvDb` middleware orchestrator (Algorithm 1) with
//!   the dual query-submission modes;
//! * [`baselines`] — the comparison systems from §6.1.1: Chorus, ChorusP and
//!   a simulated PrivateSQL;
//! * [`accounting`] — multi-analyst DP accounting and the collusion bounds
//!   of Theorem 3.2;
//! * [`fairness`] — the DCFG / nDCFG fairness metrics (Definitions 17–18)
//!   and a proportional-fairness audit (Definition 7);
//! * [`corruption`] — the (t, n)-compromised threat-model extension of §7.1;
//! * [`recorder`] — the durable-commit hook: write-ahead records for every
//!   admission charge and the serialisable state types the `dprov-storage`
//!   crate snapshots and replays at recovery;
//! * [`workload`] — declared workloads (query templates + frequencies), the
//!   input to the `dprov-plan` view/synopsis planner.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod accounting;
pub mod admission;
pub mod analyst;
pub mod baselines;
pub mod config;
pub mod corruption;
pub mod error;
pub mod fairness;
pub mod mechanism;
pub mod processor;
pub mod provenance;
pub mod recorder;
pub mod synopsis_manager;
pub mod system;
pub mod workload;

pub use error::{CoreError, Result, StorageError};
