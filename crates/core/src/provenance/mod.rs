//! The privacy provenance framework (Section 4.2).
//!
//! * [`table`] — the provenance matrix `P[A_i, V_j]` with its row, column
//!   and table constraints and the constraint checks used by the vanilla
//!   (Algorithm 2) and additive-Gaussian (Algorithm 4) mechanisms.
//! * [`constraints`] — the administrator-facing constraint specifications:
//!   Definition 10 (proportional / "l_sum"), Definition 11 (max-normalised /
//!   "l_max") with the τ expansion factor, and Definition 12 (water-filling)
//!   vs the static PrivateSQL-style view split.

pub mod constraints;
pub mod table;

pub use constraints::{
    analyst_constraints, analyst_constraints_from_corruption_graph, view_constraints,
};
pub use table::ProvenanceTable;
