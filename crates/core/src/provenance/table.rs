//! The privacy provenance table (Definition 8).
//!
//! The table is the heart of the "stateful" design: a matrix with one row
//! per analyst and one column per view, where entry `P[A_i, V_j]` records
//! the cumulative privacy loss of view `V_j` *to analyst `A_i`*, together
//! with:
//!
//! * a **row constraint** ψ_Ai per analyst (their maximum allowed loss),
//! * a **column constraint** ψ_Vj per view,
//! * a **table constraint** ψ_P for the protected database.
//!
//! How entries compose into row/column/table totals depends on the
//! mechanism: the vanilla approach adds independent noise per analyst so a
//! view's loss is the *sum* over its column, while the additive Gaussian
//! approach derives all local synopses from one hidden global synopsis so a
//! view's loss is the column *maximum* (Theorem 5.2). Both checks are
//! provided here.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::analyst::AnalystId;
use crate::error::RejectReason;

/// Numerical slack used in constraint comparisons so that repeated float
/// accumulation does not spuriously reject a query sitting exactly on a
/// constraint.
const EPS_TOL: f64 = 1e-9;

/// The privacy provenance table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvenanceTable {
    /// View names in column order.
    views: Vec<String>,
    view_index: HashMap<String, usize>,
    /// Row constraints ψ_Ai, indexed by `AnalystId.0`.
    row_constraints: Vec<f64>,
    /// Column constraints ψ_Vj.
    col_constraints: Vec<f64>,
    /// Table constraint ψ_P.
    table_constraint: f64,
    /// matrix[analyst][view] = cumulative epsilon.
    matrix: Vec<Vec<f64>>,
}

impl ProvenanceTable {
    /// Creates a table with the given overall constraint and no analysts or
    /// views yet.
    #[must_use]
    pub fn new(table_constraint: f64) -> Self {
        ProvenanceTable {
            views: Vec::new(),
            view_index: HashMap::new(),
            row_constraints: Vec::new(),
            col_constraints: Vec::new(),
            table_constraint,
            matrix: Vec::new(),
        }
    }

    /// Registers an analyst row with its constraint ψ_Ai. Analysts must be
    /// added in id order (dense ids from the registry).
    pub fn add_analyst(&mut self, id: AnalystId, constraint: f64) {
        assert_eq!(
            id.0,
            self.row_constraints.len(),
            "analysts must be added in registration order"
        );
        self.row_constraints.push(constraint);
        self.matrix.push(vec![0.0; self.views.len()]);
    }

    /// Registers a view column with its constraint ψ_Vj. Views can be added
    /// at any time (water-filling allows adding views over time, §5.3.2).
    pub fn add_view(&mut self, name: &str, constraint: f64) {
        if self.view_index.contains_key(name) {
            return;
        }
        self.view_index.insert(name.to_owned(), self.views.len());
        self.views.push(name.to_owned());
        self.col_constraints.push(constraint);
        for row in &mut self.matrix {
            row.push(0.0);
        }
    }

    /// Number of analyst rows.
    #[must_use]
    pub fn num_analysts(&self) -> usize {
        self.row_constraints.len()
    }

    /// Number of view columns.
    #[must_use]
    pub fn num_views(&self) -> usize {
        self.views.len()
    }

    /// The table constraint ψ_P.
    #[must_use]
    pub fn table_constraint(&self) -> f64 {
        self.table_constraint
    }

    /// The row constraint of an analyst.
    #[must_use]
    pub fn row_constraint(&self, analyst: AnalystId) -> f64 {
        self.row_constraints[analyst.0]
    }

    /// The column constraint of a view.
    #[must_use]
    pub fn col_constraint(&self, view: &str) -> f64 {
        self.col_constraints[self.view_index[view]]
    }

    /// The current cumulative loss `P[A_i, V_j]`.
    #[must_use]
    pub fn entry(&self, analyst: AnalystId, view: &str) -> f64 {
        match self.view_index.get(view) {
            Some(&v) => self.matrix[analyst.0][v],
            None => 0.0,
        }
    }

    /// Adds `epsilon` to entry `P[A_i, V_j]`.
    pub fn charge(&mut self, analyst: AnalystId, view: &str, epsilon: f64) {
        let v = self.view_index[view];
        self.matrix[analyst.0][v] += epsilon;
    }

    /// Overwrites entry `P[A_i, V_j]` (used by the additive approach's
    /// `min(ε, P + ε_i)` update).
    pub fn set_entry(&mut self, analyst: AnalystId, view: &str, epsilon: f64) {
        let v = self.view_index[view];
        self.matrix[analyst.0][v] = epsilon;
    }

    /// Row composition: the analyst's total loss across views (basic
    /// sequential composition).
    #[must_use]
    pub fn row_total(&self, analyst: AnalystId) -> f64 {
        self.matrix[analyst.0].iter().sum()
    }

    /// Column composition under the vanilla mechanism: the sum over
    /// analysts.
    #[must_use]
    pub fn column_sum(&self, view: &str) -> f64 {
        let v = self.view_index[view];
        self.matrix.iter().map(|row| row[v]).sum()
    }

    /// Column composition under the additive Gaussian mechanism: the maximum
    /// over analysts (Theorem 5.2).
    #[must_use]
    pub fn column_max(&self, view: &str) -> f64 {
        let v = self.view_index[view];
        self.matrix.iter().map(|row| row[v]).fold(0.0, f64::max)
    }

    /// Table composition under the vanilla mechanism: the sum of every
    /// entry.
    #[must_use]
    pub fn total_sum(&self) -> f64 {
        self.matrix.iter().flatten().sum()
    }

    /// Table composition under the additive mechanism: the sum over views of
    /// each view's column maximum.
    #[must_use]
    pub fn total_of_column_maxes(&self) -> f64 {
        (0..self.views.len())
            .map(|v| self.matrix.iter().map(|row| row[v]).fold(0.0, f64::max))
            .sum()
    }

    /// Constraint check for the vanilla mechanism (Algorithm 2,
    /// `constraintCheck`): charging `epsilon` to `(analyst, view)` must keep
    /// the table, row and column compositions within their constraints.
    pub fn check_vanilla(
        &self,
        analyst: AnalystId,
        view: &str,
        epsilon: f64,
    ) -> std::result::Result<(), RejectReason> {
        if self.total_sum() + epsilon > self.table_constraint + EPS_TOL {
            return Err(RejectReason::TableConstraint);
        }
        if self.row_total(analyst) + epsilon > self.row_constraints[analyst.0] + EPS_TOL {
            return Err(RejectReason::AnalystConstraint { analyst });
        }
        if self.column_sum(view) + epsilon > self.col_constraint(view) + EPS_TOL {
            return Err(RejectReason::ViewConstraint {
                view: view.to_owned(),
            });
        }
        Ok(())
    }

    /// Constraint check for the additive Gaussian mechanism (Algorithm 4,
    /// `constraintCheck`): `effective_epsilon` is the *incremental* charge
    /// `ε' = min(ε_global, P[A_i,V] + ε_i) − P[A_i,V]`.
    pub fn check_additive(
        &self,
        analyst: AnalystId,
        view: &str,
        effective_epsilon: f64,
    ) -> std::result::Result<(), RejectReason> {
        if self.column_max(view) + effective_epsilon > self.col_constraint(view) + EPS_TOL {
            return Err(RejectReason::ViewConstraint {
                view: view.to_owned(),
            });
        }
        if self.total_of_column_maxes() + effective_epsilon > self.table_constraint + EPS_TOL {
            return Err(RejectReason::TableConstraint);
        }
        if self.row_total(analyst) + effective_epsilon > self.row_constraints[analyst.0] + EPS_TOL {
            return Err(RejectReason::AnalystConstraint { analyst });
        }
        Ok(())
    }

    /// Remaining room under the analyst's row constraint.
    #[must_use]
    pub fn row_remaining(&self, analyst: AnalystId) -> f64 {
        (self.row_constraints[analyst.0] - self.row_total(analyst)).max(0.0)
    }

    /// The registered view names, in column order.
    #[must_use]
    pub fn view_names(&self) -> &[String] {
        &self.views
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ProvenanceTable {
        let mut p = ProvenanceTable::new(2.0);
        p.add_analyst(AnalystId(0), 0.5); // low privilege
        p.add_analyst(AnalystId(1), 2.0); // high privilege
        p.add_view("v1", 2.0);
        p.add_view("v2", 2.0);
        p
    }

    #[test]
    fn entries_start_at_zero_and_accumulate() {
        let mut p = table();
        assert_eq!(p.entry(AnalystId(0), "v1"), 0.0);
        p.charge(AnalystId(0), "v1", 0.3);
        p.charge(AnalystId(0), "v1", 0.1);
        assert!((p.entry(AnalystId(0), "v1") - 0.4).abs() < 1e-12);
        p.set_entry(AnalystId(0), "v1", 0.25);
        assert_eq!(p.entry(AnalystId(0), "v1"), 0.25);
    }

    #[test]
    fn compositions() {
        let mut p = table();
        p.charge(AnalystId(0), "v1", 0.3);
        p.charge(AnalystId(1), "v1", 0.5);
        p.charge(AnalystId(1), "v2", 0.2);
        assert!((p.row_total(AnalystId(1)) - 0.7).abs() < 1e-12);
        assert!((p.column_sum("v1") - 0.8).abs() < 1e-12);
        assert!((p.column_max("v1") - 0.5).abs() < 1e-12);
        assert!((p.total_sum() - 1.0).abs() < 1e-12);
        assert!((p.total_of_column_maxes() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn vanilla_check_rejects_each_constraint() {
        let mut p = table();
        // Row constraint: analyst 0 has psi = 0.5.
        assert!(p.check_vanilla(AnalystId(0), "v1", 0.4).is_ok());
        assert!(matches!(
            p.check_vanilla(AnalystId(0), "v1", 0.6),
            Err(RejectReason::AnalystConstraint { .. })
        ));
        // Table constraint: psi_P = 2.0.
        p.charge(AnalystId(1), "v1", 1.9);
        assert!(matches!(
            p.check_vanilla(AnalystId(0), "v2", 0.2),
            Err(RejectReason::TableConstraint)
        ));
    }

    #[test]
    fn vanilla_check_rejects_view_constraint() {
        let mut p = ProvenanceTable::new(10.0);
        p.add_analyst(AnalystId(0), 10.0);
        p.add_analyst(AnalystId(1), 10.0);
        p.add_view("v1", 1.0);
        p.charge(AnalystId(0), "v1", 0.7);
        assert!(matches!(
            p.check_vanilla(AnalystId(1), "v1", 0.5),
            Err(RejectReason::ViewConstraint { .. })
        ));
        assert!(p.check_vanilla(AnalystId(1), "v1", 0.3).is_ok());
    }

    #[test]
    fn additive_check_uses_column_max_not_sum() {
        let mut p = ProvenanceTable::new(1.0);
        p.add_analyst(AnalystId(0), 1.0);
        p.add_analyst(AnalystId(1), 1.0);
        p.add_view("v1", 1.0);
        p.charge(AnalystId(0), "v1", 0.8);
        p.charge(AnalystId(1), "v1", 0.8);
        // Vanilla would see a column sum of 1.6 > 1.0; additive sees max 0.8.
        assert!(matches!(
            p.check_vanilla(AnalystId(1), "v1", 0.1),
            Err(RejectReason::TableConstraint) | Err(RejectReason::ViewConstraint { .. })
        ));
        assert!(p.check_additive(AnalystId(1), "v1", 0.1).is_ok());
        // But exceeding the max-based table constraint still rejects.
        assert!(matches!(
            p.check_additive(AnalystId(1), "v1", 0.3),
            Err(RejectReason::ViewConstraint { .. }) | Err(RejectReason::TableConstraint)
        ));
    }

    #[test]
    fn additive_check_respects_row_constraint() {
        let mut p = ProvenanceTable::new(5.0);
        p.add_analyst(AnalystId(0), 0.4);
        p.add_view("v1", 5.0);
        p.charge(AnalystId(0), "v1", 0.35);
        assert!(p.check_additive(AnalystId(0), "v1", 0.05).is_ok());
        assert!(matches!(
            p.check_additive(AnalystId(0), "v1", 0.1),
            Err(RejectReason::AnalystConstraint { .. })
        ));
    }

    #[test]
    fn exact_boundary_is_accepted() {
        let p = table();
        assert!(p.check_vanilla(AnalystId(0), "v1", 0.5).is_ok());
        assert!(p.check_additive(AnalystId(1), "v1", 2.0).is_ok());
    }

    #[test]
    fn views_added_later_extend_every_row() {
        let mut p = table();
        p.charge(AnalystId(0), "v1", 0.2);
        p.add_view("v3", 2.0);
        assert_eq!(p.num_views(), 3);
        assert_eq!(p.entry(AnalystId(0), "v3"), 0.0);
        assert_eq!(p.entry(AnalystId(1), "v3"), 0.0);
        // Re-adding an existing view is a no-op.
        p.add_view("v1", 0.1);
        assert_eq!(p.num_views(), 3);
        assert_eq!(p.col_constraint("v1"), 2.0);
    }

    #[test]
    fn row_remaining_floors_at_zero() {
        let mut p = table();
        p.charge(AnalystId(0), "v1", 0.6);
        assert_eq!(p.row_remaining(AnalystId(0)), 0.0);
        assert!((p.row_remaining(AnalystId(1)) - 2.0).abs() < 1e-12);
    }
}
