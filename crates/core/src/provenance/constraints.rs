//! Constraint specifications (Section 5.3).
//!
//! * Definition 10 ("l_sum"): ψ_Ai = l_i / Σ_j l_j · ψ_P — proportional
//!   normalisation, requires all analysts to be known up front; the natural
//!   choice for the vanilla mechanism because the column/table composition
//!   is a sum.
//! * Definition 11 ("l_max"): ψ_Ai = l_i / l_max · ψ_P — lets the most
//!   privileged analyst use the whole table budget; the natural choice for
//!   the additive Gaussian mechanism where collusion cost is a max.
//! * Expansion factor τ ≥ 1 (§6.2.2): multiplies analyst constraints
//!   (capped at ψ_P), trading fairness for utility while overall privacy is
//!   still protected by the table constraint.
//! * Definition 12 (water-filling): every view constraint equals ψ_P, so
//!   budget flows to the views analysts actually need.
//! * Static sensitivity split (sPrivateSQL): the table budget is divided
//!   across views up front, proportionally to 1/sensitivity.

use crate::analyst::AnalystRegistry;
use crate::config::{AnalystConstraintSpec, SystemConfig, ViewConstraintSpec};
use crate::corruption::CorruptionGraph;
use crate::error::{CoreError, Result};

/// Computes the per-analyst (row) constraints ψ_Ai for every registered
/// analyst, in registration order, applying the τ expansion and capping at
/// ψ_P.
pub fn analyst_constraints(config: &SystemConfig, registry: &AnalystRegistry) -> Result<Vec<f64>> {
    if registry.is_empty() {
        return Ok(Vec::new());
    }
    let psi_p = config.total_epsilon.value();
    let denominator = match config.analyst_constraints {
        AnalystConstraintSpec::ProportionalSum => registry.privilege_sum(),
        AnalystConstraintSpec::MaxNormalized { system_max_level } => match system_max_level {
            Some(level) => {
                if level == 0 || level > crate::analyst::Privilege::MAX_LEVEL {
                    return Err(CoreError::InvalidConfig(format!(
                        "system_max_level must be in 1..=10, got {level}"
                    )));
                }
                f64::from(level)
            }
            None => registry.privilege_max(),
        },
    };
    if denominator <= 0.0 {
        return Err(CoreError::InvalidConfig(
            "constraint normaliser is zero".to_owned(),
        ));
    }
    Ok(registry
        .analysts()
        .iter()
        .map(|a| {
            let base = a.privilege.as_f64() / denominator * psi_p;
            (base * config.expansion_tau).min(psi_p)
        })
        .collect())
}

/// Computes per-analyst constraints under the relaxed (t, n)-compromised
/// threat model of Section 7.1: the table budget ψ_P is assigned to every
/// connected component of the corruption graph and split inside each
/// component proportionally to the analysts' privilege levels (Theorem 7.2).
/// Analysts believed not to collude can therefore jointly receive more than
/// ψ_P, while any colluding set stays within it.
pub fn analyst_constraints_from_corruption_graph(
    config: &SystemConfig,
    registry: &AnalystRegistry,
    graph: &CorruptionGraph,
) -> Result<Vec<f64>> {
    if graph.num_analysts() != registry.len() {
        return Err(CoreError::InvalidCorruptionGraph(format!(
            "graph covers {} analysts but {} are registered",
            graph.num_analysts(),
            registry.len()
        )));
    }
    let privileges: Vec<f64> = registry
        .analysts()
        .iter()
        .map(|a| a.privilege.as_f64())
        .collect();
    let psi_p = config.total_epsilon.value();
    let budgets = graph.component_budgets(psi_p, &privileges)?;
    Ok(budgets
        .into_iter()
        .map(|b| (b * config.expansion_tau).min(psi_p))
        .collect())
}

/// Computes the per-view (column) constraints ψ_Vj for the given view names
/// and sensitivities (same order).
pub fn view_constraints(
    config: &SystemConfig,
    view_sensitivities: &[(String, f64)],
) -> Result<Vec<f64>> {
    let psi_p = config.total_epsilon.value();
    match config.view_constraints {
        ViewConstraintSpec::WaterFilling => Ok(view_sensitivities.iter().map(|_| psi_p).collect()),
        ViewConstraintSpec::StaticSensitivitySplit => {
            if view_sensitivities.is_empty() {
                return Ok(Vec::new());
            }
            let inv: Vec<f64> = view_sensitivities
                .iter()
                .map(|(name, s)| {
                    if *s <= 0.0 {
                        Err(CoreError::InvalidConfig(format!(
                            "view {name} has non-positive sensitivity {s}"
                        )))
                    } else {
                        Ok(1.0 / s)
                    }
                })
                .collect::<Result<_>>()?;
            let total: f64 = inv.iter().sum();
            Ok(inv.iter().map(|w| w / total * psi_p).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalystConstraintSpec;

    fn registry() -> AnalystRegistry {
        let mut r = AnalystRegistry::new();
        r.register("external", 1).unwrap();
        r.register("internal", 4).unwrap();
        r
    }

    #[test]
    fn proportional_sum_matches_definition_10() {
        let config = SystemConfig::new(2.0)
            .unwrap()
            .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
        let c = analyst_constraints(&config, &registry()).unwrap();
        assert!((c[0] - 2.0 * 1.0 / 5.0).abs() < 1e-12);
        assert!((c[1] - 2.0 * 4.0 / 5.0).abs() < 1e-12);
        // Under Def. 10 no analyst can reach the full table budget when
        // more than one analyst is registered.
        assert!(c.iter().all(|&x| x < 2.0));
    }

    #[test]
    fn max_normalized_matches_definition_11() {
        let config = SystemConfig::new(2.0).unwrap();
        let c = analyst_constraints(&config, &registry()).unwrap();
        // l_max = 4 among registered analysts: the top analyst gets psi_P.
        assert!((c[0] - 2.0 * 1.0 / 4.0).abs() < 1e-12);
        assert!((c[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_normalized_with_fixed_system_level() {
        let config = SystemConfig::new(2.0).unwrap().with_analyst_constraints(
            AnalystConstraintSpec::MaxNormalized {
                system_max_level: Some(10),
            },
        );
        let c = analyst_constraints(&config, &registry()).unwrap();
        assert!((c[0] - 0.2).abs() < 1e-12);
        assert!((c[1] - 0.8).abs() < 1e-12);

        let bad = SystemConfig::new(2.0).unwrap().with_analyst_constraints(
            AnalystConstraintSpec::MaxNormalized {
                system_max_level: Some(11),
            },
        );
        assert!(analyst_constraints(&bad, &registry()).is_err());
    }

    #[test]
    fn expansion_scales_and_caps_at_table_constraint() {
        let config = SystemConfig::new(2.0)
            .unwrap()
            .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum)
            .with_expansion(1.9)
            .unwrap();
        let c = analyst_constraints(&config, &registry()).unwrap();
        assert!((c[0] - 2.0 * 0.2 * 1.9).abs() < 1e-12);
        // 0.8 * 2.0 * 1.9 = 3.04 would exceed psi_P = 2.0: capped.
        assert!((c[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_registry_yields_no_constraints() {
        let config = SystemConfig::new(2.0).unwrap();
        assert!(analyst_constraints(&config, &AnalystRegistry::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn corruption_graph_constraints_split_psi_per_component() {
        use crate::analyst::AnalystId;
        let mut registry = registry(); // privileges 1 and 4
        registry.register("contractor", 2).unwrap();
        let config = SystemConfig::new(2.0).unwrap();

        // Analysts 0 and 1 may collude; analyst 2 is independent.
        let mut graph = CorruptionGraph::new(3);
        graph.add_edge(AnalystId(0), AnalystId(1)).unwrap();
        let c = analyst_constraints_from_corruption_graph(&config, &registry, &graph).unwrap();
        // Component {0, 1}: 2.0 split 1:4.
        assert!((c[0] - 0.4).abs() < 1e-12);
        assert!((c[1] - 1.6).abs() < 1e-12);
        // Singleton component gets the full table budget.
        assert!((c[2] - 2.0).abs() < 1e-12);
        // The relaxed model hands out more than psi_P in total…
        assert!(c.iter().sum::<f64>() > 2.0);
        // …but never more than psi_P to any single analyst.
        assert!(c.iter().all(|&x| x <= 2.0 + 1e-12));

        // A mismatched graph is rejected.
        let small_graph = CorruptionGraph::new(2);
        assert!(
            analyst_constraints_from_corruption_graph(&config, &registry, &small_graph).is_err()
        );
    }

    #[test]
    fn water_filling_gives_every_view_the_table_budget() {
        let config = SystemConfig::new(3.2).unwrap();
        let views = vec![("v1".to_owned(), 1.4), ("v2".to_owned(), 1.4)];
        let c = view_constraints(&config, &views).unwrap();
        assert_eq!(c, vec![3.2, 3.2]);
    }

    #[test]
    fn static_split_divides_the_budget() {
        let config = SystemConfig::new(3.0)
            .unwrap()
            .with_view_constraints(ViewConstraintSpec::StaticSensitivitySplit);
        let views = vec![
            ("v1".to_owned(), 1.0),
            ("v2".to_owned(), 1.0),
            ("v3".to_owned(), 1.0),
        ];
        let c = view_constraints(&config, &views).unwrap();
        assert_eq!(c.len(), 3);
        for x in &c {
            assert!((x - 1.0).abs() < 1e-12);
        }
        let sum: f64 = c.iter().sum();
        assert!((sum - 3.0).abs() < 1e-12);

        // Higher sensitivity gets a smaller share.
        let views = vec![("a".to_owned(), 1.0), ("b".to_owned(), 3.0)];
        let c = view_constraints(&config, &views).unwrap();
        assert!(c[0] > c[1]);
        assert!((c.iter().sum::<f64>() - 3.0).abs() < 1e-12);

        let bad = vec![("a".to_owned(), 0.0)];
        assert!(view_constraints(&config, &bad).is_err());
    }
}
