//! Global and local synopsis management (Section 5.2.2), sharded for
//! concurrent access.
//!
//! For every registered view the manager caches the exact histogram (built
//! once at setup) and maintains:
//!
//! * one **global** DP synopsis `V^ε` — hidden from every analyst — whose
//!   budget can only grow over time; when a query needs a more accurate
//!   global synopsis, a *delta* synopsis `V^Δε` is generated from the exact
//!   histogram and merged with the previous one using the inverse-variance
//!   (UMVUE) weight of Eq. (2);
//! * one **local** synopsis per (analyst, view) — the only thing an analyst
//!   ever sees — produced by adding *more* Gaussian noise on top of the
//!   global synopsis (the additive Gaussian mechanism, Algorithm 3), so
//!   that even full collusion reveals no more than the global synopsis;
//! * for the vanilla mechanism, per-(analyst, view) cached synopses drawn
//!   *independently* from the exact histogram.
//!
//! # Concurrency
//!
//! The cache is **lock-striped per view**: each registered view owns one
//! shard holding its mutable state (the global synopsis and the per-analyst
//! locals) behind its own [`RwLock`]. The view map itself is immutable after
//! setup, so lookups never contend. Cache probes ([`SynopsisManager::local`],
//! the `global_*` getters) take a shard *read* lock — the read-mostly fast
//! path for repeated queries — while releases take the shard *write* lock.
//! Queries over different views therefore proceed fully in parallel.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use serde::{Deserialize, Serialize};

use dprov_delta::{patch_histogram, EncodedBatch, EpochPolicy};
use dprov_dp::budget::Delta;
use dprov_dp::mechanism::analytic_gaussian::analytic_gaussian_sigma;
use dprov_dp::rng::DpRng;
use dprov_dp::sensitivity::Sensitivity;
use dprov_engine::database::Database;
use dprov_engine::histogram::Histogram;
use dprov_engine::synopsis::Synopsis;
use dprov_engine::view::ViewDef;

use crate::error::{CoreError, Result, StorageError};
use crate::recorder::{GlobalSynopsisState, LocalSynopsisState, ViewCacheState};

/// The outcome of one global-synopsis growth: what it cost and the noise
/// scale of the data-touching release (for tight accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalGrowth {
    /// The epsilon actually added (`Δε`).
    pub spent_epsilon: f64,
    /// The calibrated noise scale of the release that touched the data.
    pub release_sigma: f64,
}

/// A synopsis together with the nominal budget spent on it and the update
/// epoch it was released against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetedSynopsis {
    /// The noisy counts and their actual per-bin variance.
    pub synopsis: Synopsis,
    /// The nominal epsilon this synopsis is worth.
    pub epsilon: f64,
    /// The update epoch whose exact histogram the release observed.
    pub epoch: u64,
}

/// The mutable, per-view slice of cache state guarded by one shard lock.
#[derive(Debug, Clone)]
struct ShardState {
    /// The exact histogram at the view's current data epoch (patched
    /// incrementally — or rebuilt — at every epoch seal that touches the
    /// view's base table).
    exact: Histogram,
    /// The epoch of the last seal that changed this view's data (0 =
    /// setup state: the view has never been touched by an update).
    data_epoch: u64,
    /// The hidden global synopsis (additive mechanism), if released yet.
    global: Option<BudgetedSynopsis>,
    /// Local synopses (additive mechanism) or cached per-analyst synopses
    /// (vanilla mechanism), keyed by analyst index.
    locals: HashMap<usize, BudgetedSynopsis>,
}

/// One managed view: immutable definition plus the lock-guarded mutable
/// state (exact histogram, data epoch, cached synopses).
#[derive(Debug)]
struct ViewShard {
    def: ViewDef,
    state: RwLock<ShardState>,
}

/// The synopsis manager: a sharded, lock-striped cache of global and local
/// synopses, safe to share across worker threads (`&self` everywhere after
/// setup).
#[derive(Debug)]
pub struct SynopsisManager {
    delta: Delta,
    shards: HashMap<String, ViewShard>,
    /// The last sealed update epoch; new releases are stamped with it.
    epoch: AtomicU64,
}

impl Clone for SynopsisManager {
    fn clone(&self) -> Self {
        SynopsisManager {
            delta: self.delta,
            shards: self
                .shards
                .iter()
                .map(|(name, shard)| {
                    (
                        name.clone(),
                        ViewShard {
                            def: shard.def.clone(),
                            state: RwLock::new(shard.state.read().expect("shard poisoned").clone()),
                        },
                    )
                })
                .collect(),
            epoch: AtomicU64::new(self.epoch.load(Ordering::SeqCst)),
        }
    }
}

impl SynopsisManager {
    /// Creates a manager with the system δ.
    #[must_use]
    pub fn new(delta: Delta) -> Self {
        SynopsisManager {
            delta,
            shards: HashMap::new(),
            epoch: AtomicU64::new(0),
        }
    }

    /// The last sealed update epoch new releases are stamped with.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Registers a view and materialises its exact histogram (this is the
    /// "setup time" cost reported in Tables 1 and 3). Setup-phase only:
    /// takes `&mut self`, so registration cannot race with serving.
    pub fn register_view(&mut self, db: &Database, def: &ViewDef) -> Result<()> {
        let exact = Histogram::materialize(db, def).map_err(CoreError::Engine)?;
        self.insert_view(def, exact);
        Ok(())
    }

    /// Registers many views at once, materialising their exact histograms
    /// through the columnar executor: all views over one base table share a
    /// single pass over its shards (`dprov-exec`), so a catalog of `k`
    /// views costs one scan instead of `k`. The histograms are
    /// bit-identical to [`Histogram::materialize`].
    pub fn register_views(
        &mut self,
        exec: &dprov_exec::ColumnarExecutor,
        defs: &[ViewDef],
    ) -> Result<()> {
        let histograms = exec
            .materialize_histograms(defs)
            .map_err(CoreError::Engine)?;
        for (def, exact) in defs.iter().zip(histograms) {
            self.insert_view(def, exact);
        }
        Ok(())
    }

    fn insert_view(&mut self, def: &ViewDef, exact: Histogram) {
        self.shards.insert(
            def.name.clone(),
            ViewShard {
                def: def.clone(),
                state: RwLock::new(ShardState {
                    exact,
                    data_epoch: 0,
                    global: None,
                    locals: HashMap::new(),
                }),
            },
        );
    }

    /// Names of the registered views.
    #[must_use]
    pub fn view_names(&self) -> Vec<String> {
        self.shards.keys().cloned().collect()
    }

    /// Number of registered views (= number of lock stripes).
    #[must_use]
    pub fn num_views(&self) -> usize {
        self.shards.len()
    }

    /// The sensitivity of a registered view.
    pub fn sensitivity(&self, view: &str) -> Result<Sensitivity> {
        Ok(self.shard(view)?.def.sensitivity())
    }

    /// The exact histogram of a registered view at its current data epoch
    /// (cloned out of the shard — the histogram mutates at epoch seals).
    pub fn exact_histogram(&self, view: &str) -> Result<Histogram> {
        Ok(self.read_state(view)?.exact.clone())
    }

    /// The epoch of the last seal that changed a view's data (0 = never
    /// touched by an update).
    pub fn data_epoch(&self, view: &str) -> Result<u64> {
        Ok(self.read_state(view)?.data_epoch)
    }

    /// The registered view definitions whose base table is `table`.
    #[must_use]
    pub fn views_over_table(&self, table: &str) -> Vec<ViewDef> {
        let mut defs: Vec<ViewDef> = self
            .shards
            .values()
            .filter(|s| s.def.table == table)
            .map(|s| s.def.clone())
            .collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        defs
    }

    /// Patches a view's exact histogram in place from the delta rows of an
    /// epoch's batches (incremental maintenance; bit-identical to a full
    /// rebuild — see `dprov-delta`). Does not advance any epoch counter;
    /// callers follow up with [`Self::apply_epoch`].
    pub fn patch_exact(
        &self,
        view: &str,
        schema: &dprov_engine::schema::Schema,
        batches: &[EncodedBatch],
    ) -> Result<()> {
        let shard = self.shard(view)?;
        let mut state = shard.state.write().expect("shard poisoned");
        patch_histogram(&mut state.exact, &shard.def, schema, batches)
            .map_err(|e| CoreError::InvalidConfig(format!("incremental patch failed: {e}")))
    }

    /// Replaces a view's exact histogram wholesale (the full-rebuild
    /// maintenance mode the equivalence suites compare against).
    pub fn set_exact(&self, view: &str, exact: Histogram) -> Result<()> {
        let shard = self.shard(view)?;
        shard.state.write().expect("shard poisoned").exact = exact;
        Ok(())
    }

    /// Applies an epoch seal to the cache: advances the release epoch,
    /// marks the touched views' data epoch, and invalidates every cached
    /// synopsis the policy no longer retains (touched views immediately
    /// under re-noise; any view whose stale synopses exceed the
    /// carry-forward bound). Returns the number of synopses invalidated.
    pub fn apply_epoch(&self, new_epoch: u64, touched: &[String], policy: EpochPolicy) -> usize {
        self.epoch.store(new_epoch, Ordering::SeqCst);
        let mut invalidated = 0usize;
        for (name, shard) in &self.shards {
            let mut state = shard.state.write().expect("shard poisoned");
            if touched.iter().any(|t| t == name) {
                state.data_epoch = new_epoch;
            }
            let data_epoch = state.data_epoch;
            if let Some(global) = &state.global {
                if !policy.retains(global.epoch, data_epoch, new_epoch) {
                    state.global = None;
                    invalidated += 1;
                }
            }
            let before = state.locals.len();
            state
                .locals
                .retain(|_, local| policy.retains(local.epoch, data_epoch, new_epoch));
            invalidated += before - state.locals.len();
        }
        invalidated
    }

    /// The nominal epsilon of the current global synopsis, if any.
    pub fn global_epsilon(&self, view: &str) -> Result<Option<f64>> {
        Ok(self.read_state(view)?.global.as_ref().map(|g| g.epsilon))
    }

    /// The actual per-bin variance of the current global synopsis, if any.
    pub fn global_variance(&self, view: &str) -> Result<Option<f64>> {
        Ok(self
            .read_state(view)?
            .global
            .as_ref()
            .map(|g| g.synopsis.per_bin_variance))
    }

    /// One consistent snapshot of the global synopsis's `(epsilon,
    /// per-bin variance)` — a single read-lock acquisition, so concurrent
    /// growth cannot be observed half-applied between the two fields.
    pub fn global_state(&self, view: &str) -> Result<Option<(f64, f64)>> {
        Ok(self
            .read_state(view)?
            .global
            .as_ref()
            .map(|g| (g.epsilon, g.synopsis.per_bin_variance)))
    }

    /// A snapshot of the current global synopsis (tests and diagnostics;
    /// never exposed to analysts by the serving path).
    pub fn global_synopsis(&self, view: &str) -> Result<Option<BudgetedSynopsis>> {
        Ok(self.read_state(view)?.global.clone())
    }

    /// The local (or vanilla-cached) synopsis of an analyst on a view,
    /// cloned out of the shard. Prefer [`Self::with_local`] on hot paths.
    #[must_use]
    pub fn local(&self, analyst: usize, view: &str) -> Option<BudgetedSynopsis> {
        self.with_local(analyst, view, Clone::clone)
    }

    /// Evaluates `f` against an analyst's local synopsis under the shard's
    /// read guard — the cache-probe fast path: concurrent hits on one view
    /// do not block each other and nothing is cloned. Returns `None` when
    /// the view or the local synopsis does not exist.
    pub fn with_local<R>(
        &self,
        analyst: usize,
        view: &str,
        f: impl FnOnce(&BudgetedSynopsis) -> R,
    ) -> Option<R> {
        let shard = self.shards.get(view)?;
        let state = shard.state.read().expect("shard poisoned");
        state.locals.get(&analyst).map(f)
    }

    fn shard(&self, view: &str) -> Result<&ViewShard> {
        self.shards.get(view).ok_or_else(|| {
            CoreError::Engine(dprov_engine::EngineError::UnknownView(view.to_owned()))
        })
    }

    fn read_state(&self, view: &str) -> Result<std::sync::RwLockReadGuard<'_, ShardState>> {
        Ok(self.shard(view)?.state.read().expect("shard poisoned"))
    }

    /// Exports the full cache state (hidden globals plus every analyst's
    /// local synopsis) for durable snapshots. Views are emitted in sorted
    /// order and locals in analyst order, so two exports of the same state
    /// are byte-identical after serialisation.
    #[must_use]
    pub fn export_cache(&self) -> Vec<ViewCacheState> {
        let mut names: Vec<&String> = self.shards.keys().collect();
        names.sort();
        names
            .into_iter()
            .filter_map(|name| {
                let state = self.shards[name].state.read().expect("shard poisoned");
                if state.global.is_none() && state.locals.is_empty() {
                    return None;
                }
                let mut locals: Vec<LocalSynopsisState> = state
                    .locals
                    .iter()
                    .map(|(&analyst, s)| LocalSynopsisState {
                        analyst,
                        epsilon: s.epsilon,
                        variance: s.synopsis.per_bin_variance,
                        epoch: s.epoch,
                        counts: s.synopsis.counts.clone(),
                    })
                    .collect();
                locals.sort_by_key(|l| l.analyst);
                Some(ViewCacheState {
                    view: name.clone(),
                    global: state.global.as_ref().map(|g| GlobalSynopsisState {
                        epsilon: g.epsilon,
                        variance: g.synopsis.per_bin_variance,
                        epoch: g.epoch,
                        counts: g.synopsis.counts.clone(),
                    }),
                    locals,
                })
            })
            .collect()
    }

    /// Restores a cache state exported by [`Self::export_cache`] (snapshot
    /// recovery). Replaces the state of every mentioned view; refuses
    /// states that reference unregistered views.
    pub fn import_cache(&self, views: &[ViewCacheState]) -> Result<()> {
        for view in views {
            let shard = self.shards.get(&view.view).ok_or_else(|| {
                CoreError::Storage(StorageError::IncompatibleState(format!(
                    "snapshot references unregistered view {}",
                    view.view
                )))
            })?;
            let mut state = shard.state.write().expect("shard poisoned");
            state.global = view.global.as_ref().map(|g| BudgetedSynopsis {
                synopsis: Synopsis::new(&view.view, g.counts.clone(), g.variance),
                epsilon: g.epsilon,
                epoch: g.epoch,
            });
            state.locals = view
                .locals
                .iter()
                .map(|l| {
                    (
                        l.analyst,
                        BudgetedSynopsis {
                            synopsis: Synopsis::new(&view.view, l.counts.clone(), l.variance),
                            epsilon: l.epsilon,
                            epoch: l.epoch,
                        },
                    )
                })
                .collect();
        }
        Ok(())
    }

    /// Generates a *fresh, independent* synopsis of the view at the given
    /// budget — the vanilla mechanism's release, also used for the static
    /// sPrivateSQL synopses. Reads the exact histogram under the shard's
    /// read guard, so it observes a whole number of sealed epochs.
    pub fn fresh_synopsis(&self, view: &str, epsilon: f64, rng: &mut DpRng) -> Result<Synopsis> {
        let shard = self.shard(view)?;
        let sigma =
            analytic_gaussian_sigma(epsilon, self.delta.value(), shard.def.sensitivity().value())?;
        let state = shard.state.read().expect("shard poisoned");
        let counts: Vec<f64> = state
            .exact
            .counts
            .iter()
            .map(|&c| c + rng.gaussian(sigma))
            .collect();
        Ok(Synopsis::new(view, counts, sigma * sigma))
    }

    /// Stores a per-(analyst, view) synopsis (vanilla cache or additive
    /// local) under the shard's write lock.
    pub fn store_local(&self, analyst: usize, view: &str, synopsis: BudgetedSynopsis) {
        if let Some(shard) = self.shards.get(view) {
            shard
                .state
                .write()
                .expect("shard poisoned")
                .locals
                .insert(analyst, synopsis);
        }
    }

    /// Ensures the global synopsis of `view` has nominal budget at least
    /// `target_epsilon`. Returns the epsilon actually added (`Δε`, zero if
    /// the existing synopsis was already sufficient). Thin wrapper around
    /// [`Self::grow_global`] for callers that only need the spend.
    pub fn ensure_global(&self, view: &str, target_epsilon: f64, rng: &mut DpRng) -> Result<f64> {
        Ok(self
            .grow_global(view, target_epsilon, rng)?
            .map_or(0.0, |g| g.spent_epsilon))
    }

    /// Grows the global synopsis of `view` to nominal budget at least
    /// `target_epsilon`, returning `None` when the existing synopsis was
    /// already sufficient and otherwise the spend and the noise scale of
    /// the release that touched the data (so callers can feed their tight
    /// accountant without re-running the sigma calibration).
    ///
    /// * No existing synopsis: a fresh one is generated at `target_epsilon`.
    /// * Existing synopsis with a smaller budget: a delta synopsis `V^Δε`
    ///   with `Δε = target − current` is generated and merged with the
    ///   UMVUE weight (Eq. 2); note the *friction*: the combined variance is
    ///   larger than a one-shot synopsis at the full budget would have.
    ///
    /// Growth is atomic under the shard's write lock, so concurrent callers
    /// can never interleave a partial grow (monotone epsilon is preserved).
    pub fn grow_global(
        &self,
        view: &str,
        target_epsilon: f64,
        rng: &mut DpRng,
    ) -> Result<Option<GlobalGrowth>> {
        let delta = self.delta.value();
        let shard = self.shard(view)?;
        let sens = shard.def.sensitivity().value();
        let release_epoch = self.current_epoch();
        let mut guard = shard.state.write().expect("shard poisoned");
        let state = &mut *guard;

        match &mut state.global {
            None => {
                let sigma = analytic_gaussian_sigma(target_epsilon, delta, sens)?;
                let counts: Vec<f64> = state
                    .exact
                    .counts
                    .iter()
                    .map(|&c| c + rng.gaussian(sigma))
                    .collect();
                state.global = Some(BudgetedSynopsis {
                    synopsis: Synopsis::new(view, counts, sigma * sigma),
                    epsilon: target_epsilon,
                    epoch: release_epoch,
                });
                Ok(Some(GlobalGrowth {
                    spent_epsilon: target_epsilon,
                    release_sigma: sigma,
                }))
            }
            Some(global) if global.epsilon + 1e-12 >= target_epsilon => Ok(None),
            Some(global) => {
                let delta_eps = target_epsilon - global.epsilon;
                let sigma_delta = analytic_gaussian_sigma(delta_eps, delta, sens)?;
                let fresh_counts: Vec<f64> = state
                    .exact
                    .counts
                    .iter()
                    .map(|&c| c + rng.gaussian(sigma_delta))
                    .collect();
                let fresh = Synopsis::new(view, fresh_counts, sigma_delta * sigma_delta);
                // Eq. (2): weight on the fresh synopsis minimising the
                // combined variance.
                let w = global
                    .synopsis
                    .optimal_combination_weight(fresh.per_bin_variance);
                global.synopsis = global.synopsis.combine(&fresh, w);
                global.epsilon = target_epsilon;
                // The merge keeps the OLDER component's epoch: under a
                // carry-forward policy a merged synopsis still embeds
                // stale-epoch observations, so stamping it newer would let
                // old data escape the staleness bound forever. (Under
                // re-noise a stale global cannot reach this point — it was
                // invalidated at the seal.) Mirrors `refine_local`.
                global.epoch = global.epoch.min(release_epoch);
                Ok(Some(GlobalGrowth {
                    spent_epsilon: delta_eps,
                    release_sigma: sigma_delta,
                }))
            }
        }
    }

    /// Refines an analyst's existing local synopsis by combining it with a
    /// *fresh* local release derived from the current global synopsis
    /// (the §5.2.6 discussion).
    ///
    /// Both the old and the fresh local synopsis are the global counts plus
    /// independent extra noise, so a convex combination `k·old + (1−k)·fresh`
    /// stays unbiased for the true counts and its variance is
    /// `v_global + k²·e_old + (1−k)²·e_fresh` where `e_*` are the extra-noise
    /// variances. The variance-minimising weight is
    /// `k* = e_fresh / (e_old + e_fresh)`.
    ///
    /// The combined synopsis is still a post-processing of the global
    /// synopsis, so the worst-case privacy loss stays bounded by the global
    /// budget; callers remain responsible for charging the analyst
    /// (`min(ε_global, P + ε_i)` as in Algorithm 4). Returns the refined
    /// synopsis; if the analyst has no existing local synopsis this is
    /// identical to [`Self::derive_local`].
    pub fn refine_local(
        &self,
        analyst: usize,
        view: &str,
        local_epsilon: f64,
        rng: &mut DpRng,
    ) -> Result<BudgetedSynopsis> {
        let existing = self.local(analyst, view);
        let global_variance = self
            .global_variance(view)?
            .ok_or_else(|| CoreError::InvalidConfig(format!("no global synopsis for {view}")))?;
        let fresh = self.derive_local(analyst, view, local_epsilon, rng)?;
        let Some(existing) = existing else {
            return Ok(fresh);
        };

        // Extra-noise variances on top of the shared global synopsis. An
        // older local synopsis may have been derived from a *noisier* global
        // state; its total variance still upper-bounds the part independent
        // of the current global counts, so using it keeps the weight
        // conservative (never over-weights the old synopsis).
        let e_old = (existing.synopsis.per_bin_variance - global_variance).max(0.0);
        let e_fresh = (fresh.synopsis.per_bin_variance - global_variance).max(0.0);
        if e_old <= 0.0 {
            // The old synopsis is already as good as the global itself.
            self.store_local(analyst, view, existing.clone());
            return Ok(existing);
        }
        let k = e_fresh / (e_old + e_fresh);
        let counts: Vec<f64> = existing
            .synopsis
            .counts
            .iter()
            .zip(&fresh.synopsis.counts)
            .map(|(old, new)| k * old + (1.0 - k) * new)
            .collect();
        let variance = global_variance + k * k * e_old + (1.0 - k) * (1.0 - k) * e_fresh;
        let refined = BudgetedSynopsis {
            synopsis: Synopsis::new(view, counts, variance),
            epsilon: existing.epsilon.max(fresh.epsilon),
            epoch: existing.epoch.min(fresh.epoch),
        };
        self.store_local(analyst, view, refined.clone());
        Ok(refined)
    }

    /// Derives (and stores) a local synopsis for `analyst` on `view` at
    /// budget `local_epsilon` from the current global synopsis by adding
    /// extra Gaussian noise (the additive Gaussian mechanism). The local
    /// synopsis's total per-bin variance is `max(σ(ε_loc)², v_global)`.
    ///
    /// The global synopsis must already exist with a nominal budget at least
    /// `local_epsilon` (callers go through [`Self::ensure_global`] first).
    pub fn derive_local(
        &self,
        analyst: usize,
        view: &str,
        local_epsilon: f64,
        rng: &mut DpRng,
    ) -> Result<BudgetedSynopsis> {
        let delta = self.delta.value();
        let shard = self.shard(view)?;
        let sens = shard.def.sensitivity().value();
        let (global_counts, global_variance, global_epoch) = {
            let state = shard.state.read().expect("shard poisoned");
            let global = state.global.as_ref().ok_or_else(|| {
                CoreError::InvalidConfig(format!(
                    "derive_local called before a global synopsis exists for {view}"
                ))
            })?;
            debug_assert!(global.epsilon + 1e-9 >= local_epsilon);
            (
                global.synopsis.counts.clone(),
                global.synopsis.per_bin_variance,
                global.epoch,
            )
        };

        let sigma_local = analytic_gaussian_sigma(local_epsilon, delta, sens)?;
        let target_variance = (sigma_local * sigma_local).max(global_variance);
        let extra_variance = (target_variance - global_variance).max(0.0);
        let extra_sigma = extra_variance.sqrt();
        let counts: Vec<f64> = global_counts
            .iter()
            .map(|&c| c + rng.gaussian(extra_sigma))
            .collect();
        let local = BudgetedSynopsis {
            synopsis: Synopsis::new(view, counts, target_variance),
            epsilon: local_epsilon,
            epoch: global_epoch,
        };
        self.store_local(analyst, view, local.clone());
        Ok(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::datagen::adult::adult_database;
    use dprov_engine::view::ViewDef;

    fn setup() -> (SynopsisManager, DpRng) {
        let db = adult_database(2_000, 3);
        let mut mgr = SynopsisManager::new(Delta::new(1e-9).unwrap());
        mgr.register_view(&db, &ViewDef::histogram("adult.age", "adult", &["age"]))
            .unwrap();
        mgr.register_view(&db, &ViewDef::histogram("adult.sex", "adult", &["sex"]))
            .unwrap();
        (mgr, DpRng::seed_from_u64(11))
    }

    #[test]
    fn register_views_shares_one_scan_and_matches_register_view() {
        let db = adult_database(2_000, 3);
        let exec = dprov_exec::ColumnarExecutor::ingest(&db, &dprov_exec::ExecConfig::default());
        let defs = vec![
            ViewDef::histogram("adult.age", "adult", &["age"]),
            ViewDef::histogram("adult.sex", "adult", &["sex"]),
        ];
        let mut batched = SynopsisManager::new(Delta::new(1e-9).unwrap());
        batched.register_views(&exec, &defs).unwrap();
        let (reference, _) = setup();
        for name in ["adult.age", "adult.sex"] {
            assert_eq!(
                batched.exact_histogram(name).unwrap(),
                reference.exact_histogram(name).unwrap(),
                "{name}: shared-scan histogram must equal the row-loop one"
            );
        }
        // Both views ride the same base-table pass.
        assert_eq!(exec.stats().histogram_scans, 1);
        assert_eq!(exec.stats().histograms, 2);
    }

    #[test]
    fn register_and_query_metadata() {
        let (mgr, _) = setup();
        assert_eq!(mgr.view_names().len(), 2);
        assert_eq!(mgr.num_views(), 2);
        assert!(mgr.global_epsilon("adult.age").unwrap().is_none());
        assert!(mgr.exact_histogram("adult.age").unwrap().total() > 0.0);
        assert!(mgr.exact_histogram("nope").is_err());
        assert!(
            (mgr.sensitivity("adult.age").unwrap().value() - std::f64::consts::SQRT_2).abs()
                < 1e-12
        );
    }

    #[test]
    fn fresh_synopsis_has_the_calibrated_variance() {
        let (mgr, mut rng) = setup();
        let s = mgr.fresh_synopsis("adult.age", 1.0, &mut rng).unwrap();
        let sigma = analytic_gaussian_sigma(1.0, 1e-9, std::f64::consts::SQRT_2).unwrap();
        assert!((s.per_bin_variance - sigma * sigma).abs() < 1e-9);
        assert_eq!(s.counts.len(), 74);
    }

    #[test]
    fn ensure_global_creates_then_grows() {
        let (mgr, mut rng) = setup();
        let spent = mgr.ensure_global("adult.age", 0.5, &mut rng).unwrap();
        assert!((spent - 0.5).abs() < 1e-12);
        assert_eq!(mgr.global_epsilon("adult.age").unwrap(), Some(0.5));
        let v_first = mgr.global_variance("adult.age").unwrap().unwrap();

        // Asking for less is free.
        let spent = mgr.ensure_global("adult.age", 0.3, &mut rng).unwrap();
        assert_eq!(spent, 0.0);
        assert_eq!(mgr.global_epsilon("adult.age").unwrap(), Some(0.5));

        // Growing to 0.7 spends the difference and reduces the variance.
        let spent = mgr.ensure_global("adult.age", 0.7, &mut rng).unwrap();
        assert!((spent - 0.2).abs() < 1e-12);
        assert_eq!(mgr.global_epsilon("adult.age").unwrap(), Some(0.7));
        let v_combined = mgr.global_variance("adult.age").unwrap().unwrap();
        assert!(v_combined < v_first);

        // Friction: the combined synopsis is noisier than a one-shot 0.7.
        let sigma_one_shot = analytic_gaussian_sigma(0.7, 1e-9, std::f64::consts::SQRT_2).unwrap();
        assert!(v_combined > sigma_one_shot * sigma_one_shot);

        // The consistent snapshot agrees with the two individual getters.
        let (eps, var) = mgr.global_state("adult.age").unwrap().unwrap();
        assert_eq!(eps, 0.7);
        assert_eq!(var, v_combined);
    }

    #[test]
    fn derive_local_adds_noise_and_respects_budget_ordering() {
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.age", 1.0, &mut rng).unwrap();
        let global_var = mgr.global_variance("adult.age").unwrap().unwrap();

        let local_small = mgr.derive_local(0, "adult.age", 0.2, &mut rng).unwrap();
        let local_big = mgr.derive_local(1, "adult.age", 0.9, &mut rng).unwrap();
        // A smaller local budget means a noisier local synopsis.
        assert!(local_small.synopsis.per_bin_variance > local_big.synopsis.per_bin_variance);
        // Local variance can never be below the global variance.
        assert!(local_small.synopsis.per_bin_variance >= global_var);
        assert!(local_big.synopsis.per_bin_variance >= global_var);
        // Locals are cached per analyst.
        assert_eq!(mgr.local(0, "adult.age").unwrap().epsilon, 0.2);
        assert_eq!(mgr.local(1, "adult.age").unwrap().epsilon, 0.9);
        assert!(mgr.local(2, "adult.age").is_none());
    }

    #[test]
    fn derive_local_matches_the_analytic_calibration() {
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.age", 1.0, &mut rng).unwrap();
        let local = mgr.derive_local(0, "adult.age", 0.4, &mut rng).unwrap();
        let sigma = analytic_gaussian_sigma(0.4, 1e-9, std::f64::consts::SQRT_2).unwrap();
        assert!((local.synopsis.per_bin_variance - sigma * sigma).abs() < 1e-9);
    }

    #[test]
    fn refine_local_combines_and_reduces_variance() {
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.age", 2.0, &mut rng).unwrap();
        let first = mgr.derive_local(0, "adult.age", 0.3, &mut rng).unwrap();
        let refined = mgr.refine_local(0, "adult.age", 0.3, &mut rng).unwrap();
        // Combining two releases at the same budget roughly halves the
        // extra-noise variance, so the refined synopsis is strictly better
        // than either individual one.
        assert!(refined.synopsis.per_bin_variance < first.synopsis.per_bin_variance);
        // But never better than the hidden global synopsis.
        let global_var = mgr.global_variance("adult.age").unwrap().unwrap();
        assert!(refined.synopsis.per_bin_variance >= global_var - 1e-9);
        // The refinement is cached as the analyst's local synopsis.
        let cached = mgr.local(0, "adult.age").unwrap();
        assert_eq!(
            cached.synopsis.per_bin_variance,
            refined.synopsis.per_bin_variance
        );
    }

    #[test]
    fn refine_local_without_existing_local_equals_derive_local() {
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.age", 1.0, &mut rng).unwrap();
        let refined = mgr.refine_local(3, "adult.age", 0.4, &mut rng).unwrap();
        let sigma = analytic_gaussian_sigma(0.4, 1e-9, std::f64::consts::SQRT_2).unwrap();
        assert!((refined.synopsis.per_bin_variance - sigma * sigma).abs() < 1e-9);
        assert!(mgr.refine_local(3, "adult.sex", 0.4, &mut rng).is_err());
    }

    #[test]
    fn refine_local_stays_unbiased() {
        // The combined counts remain centred on the truth: compare against
        // the exact histogram across many bins.
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.age", 4.0, &mut rng).unwrap();
        mgr.derive_local(0, "adult.age", 1.0, &mut rng).unwrap();
        let refined = mgr.refine_local(0, "adult.age", 1.0, &mut rng).unwrap();
        let exact = mgr.exact_histogram("adult.age").unwrap().counts.clone();
        let mean_error: f64 = refined
            .synopsis
            .counts
            .iter()
            .zip(&exact)
            .map(|(n, t)| n - t)
            .sum::<f64>()
            / exact.len() as f64;
        let sd = refined.synopsis.per_bin_variance.sqrt();
        assert!(
            mean_error.abs() < 4.0 * sd / (exact.len() as f64).sqrt() + 1.0,
            "mean error {mean_error} too large for sd {sd}"
        );
    }

    #[test]
    fn derive_local_without_global_is_an_error() {
        let (mgr, mut rng) = setup();
        assert!(mgr.derive_local(0, "adult.age", 0.4, &mut rng).is_err());
    }

    #[test]
    fn local_noise_is_added_on_top_of_the_global_counts() {
        // The local synopsis must be a noisier version of the *global*
        // counts, not of the exact histogram: check the local counts differ
        // from the global ones (extra noise was added) with equal length.
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.sex", 2.0, &mut rng).unwrap();
        let global_counts = mgr
            .global_synopsis("adult.sex")
            .unwrap()
            .unwrap()
            .synopsis
            .counts;
        let local = mgr.derive_local(0, "adult.sex", 0.1, &mut rng).unwrap();
        assert_eq!(local.synopsis.counts.len(), global_counts.len());
        assert_ne!(local.synopsis.counts, global_counts);
    }

    #[test]
    fn export_import_round_trips_the_cache() {
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.age", 1.0, &mut rng).unwrap();
        mgr.derive_local(0, "adult.age", 0.5, &mut rng).unwrap();
        mgr.derive_local(2, "adult.age", 0.3, &mut rng).unwrap();
        let exported = mgr.export_cache();
        // Only the touched view is exported.
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].view, "adult.age");
        assert_eq!(exported[0].locals.len(), 2);
        assert_eq!(exported[0].locals[0].analyst, 0);

        let (fresh, _) = setup();
        fresh.import_cache(&exported).unwrap();
        assert_eq!(
            fresh.global_state("adult.age").unwrap(),
            mgr.global_state("adult.age").unwrap()
        );
        let a = fresh.local(0, "adult.age").unwrap();
        let b = mgr.local(0, "adult.age").unwrap();
        assert_eq!(a.synopsis.counts, b.synopsis.counts);
        assert_eq!(a.epsilon, b.epsilon);
        assert!(fresh.local(1, "adult.age").is_none());
        // Exports are deterministic.
        assert_eq!(fresh.export_cache(), exported);
    }

    #[test]
    fn import_refuses_unknown_views() {
        let (mgr, _) = setup();
        let bogus = vec![ViewCacheState {
            view: "nope".to_owned(),
            global: None,
            locals: vec![],
        }];
        assert!(matches!(
            mgr.import_cache(&bogus),
            Err(CoreError::Storage(StorageError::IncompatibleState(_)))
        ));
    }

    #[test]
    fn clone_snapshots_the_cache_state() {
        let (mgr, mut rng) = setup();
        mgr.ensure_global("adult.age", 1.0, &mut rng).unwrap();
        mgr.derive_local(0, "adult.age", 0.5, &mut rng).unwrap();
        let snapshot = mgr.clone();
        assert_eq!(snapshot.global_epsilon("adult.age").unwrap(), Some(1.0));
        assert_eq!(snapshot.local(0, "adult.age").unwrap().epsilon, 0.5);
        // Mutating the original does not leak into the snapshot.
        mgr.ensure_global("adult.age", 2.0, &mut rng).unwrap();
        assert_eq!(snapshot.global_epsilon("adult.age").unwrap(), Some(1.0));
    }

    #[test]
    fn concurrent_reads_and_writes_stay_consistent() {
        // Hammer one view's shard from several threads: epsilon must be
        // monotone non-decreasing and the variance monotone non-increasing
        // at every observation point.
        use std::sync::Arc;
        let (mgr, _) = setup();
        let mgr = Arc::new(mgr);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let mgr = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                let mut rng = DpRng::seed_from_u64(100 + t);
                let mut last_eps = 0.0f64;
                let mut last_var = f64::INFINITY;
                for step in 1..=20u64 {
                    let target = (t * 20 + step) as f64 * 0.01;
                    mgr.ensure_global("adult.age", target, &mut rng).unwrap();
                    let (eps, var) = mgr.global_state("adult.age").unwrap().unwrap();
                    assert!(eps >= last_eps, "epsilon regressed: {eps} < {last_eps}");
                    assert!(var <= last_var + 1e-12, "variance grew: {var} > {last_var}");
                    last_eps = eps;
                    last_var = var;
                    mgr.derive_local(t as usize, "adult.age", eps * 0.5, &mut rng)
                        .unwrap();
                    assert!(mgr.local(t as usize, "adult.age").is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
