//! The DProvDB middleware orchestrator (Algorithm 1), thread-safe.
//!
//! [`DProvDb`] ties every component together: the relational engine and its
//! view catalog, the privacy provenance table, the synopsis manager, the
//! multi-analyst ledger and the accuracy→privacy translation. It exposes
//! the dual submission modes of Principle 3 and dispatches each query to
//! either the vanilla mechanism (Algorithm 2) or the additive Gaussian
//! mechanism (Algorithm 4) depending on the configured [`MechanismKind`].
//!
//! # Concurrency model
//!
//! The system is split into *shared immutable state* (configuration,
//! database, catalog, registry — plain reads, no locks) and
//! *interior-mutability components*:
//!
//! * the synopsis cache is lock-striped per view inside
//!   [`SynopsisManager`] (read-mostly fast path for cache hits);
//! * the provenance table, ledger, tight accountant and runtime stats sit
//!   behind short-critical-section `Mutex`es;
//! * admission is gated by [`AdmissionControl`]: a per-(analyst, view)
//!   entry lock held across one submission's resolve → check-and-reserve →
//!   release sequence, plus a per-view lock serialising additive-Gaussian
//!   global-synopsis growth. Constraint *check and charge* happen in one
//!   provenance-mutex critical section, so concurrent submissions can never
//!   jointly overspend a row, column or table constraint;
//! * noise generation takes a caller-supplied [`DpRng`] — concurrent
//!   callers (e.g. the `dprov-server` worker pool) pass per-session
//!   generators seeded via [`DpRng::for_stream`], so each caller's noise
//!   stream is independent of thread interleaving (interleaving can still
//!   reorder growth of a view's shared global synopsis under the additive
//!   mechanism; see the `dprov-server` crate docs for the resulting
//!   determinism guarantee).
//!
//! The original single-threaded API ([`DProvDb::submit`] on `&mut self`)
//! is preserved and forwards to the shared path with an internal RNG.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use dprov_delta::{
    build_segments, EncodedBatch, MaintenanceMode, SealedEpoch, UpdateBatch, UpdateLog,
};
use dprov_dp::accountant::{make_accountant, Accountant};
use dprov_dp::budget::{Budget, Epsilon};
use dprov_dp::mechanism::analytic_gaussian::analytic_gaussian_sigma;
use dprov_dp::rng::DpRng;
use dprov_dp::translation::{translate_variance_to_epsilon, FrictionAwareTranslation};
use dprov_dp::DpError;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::database::Database;
use dprov_engine::exec::execute;
use dprov_engine::group::GroupByQuery;
use dprov_engine::query::{AggregateKind, Query};
use dprov_engine::transform::LinearQuery;
use dprov_engine::value::Value;
use dprov_engine::view::{flat_index, MultiIndexIter, ViewDef};
use dprov_engine::EngineError;
use dprov_exec::{ColumnarExecutor, ExecConfig, ExecStats};
use dprov_obs::{CounterId, HistId, MetricsRegistry};

use crate::accounting::MultiAnalystLedger;
use crate::admission::AdmissionControl;
use crate::analyst::{AnalystId, AnalystRegistry};
use crate::config::SystemConfig;
use crate::error::{CoreError, RejectReason, Result};
use crate::fairness::{self, AnalystOutcome};
use crate::mechanism::MechanismKind;
use crate::processor::{
    AnsweredQuery, GroupedOutcome, GroupedRequest, QueryOutcome, QueryProcessor, QueryRequest,
    SubmissionMode,
};
use crate::provenance::{analyst_constraints, view_constraints, ProvenanceTable};
use crate::recorder::{AccessRecord, CommitRecord, CoreState, ProvenanceEntryState, Recorder};
use crate::synopsis_manager::{BudgetedSynopsis, SynopsisManager};

/// Wall-clock statistics for the runtime tables (Tables 1 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Time spent materialising views at setup.
    pub setup_time: Duration,
    /// Cumulative time spent processing queries.
    pub query_time: Duration,
    /// Number of answered queries.
    pub answered: usize,
    /// Number of rejected queries.
    pub rejected: usize,
    /// Of the answered queries, how many were served from an existing
    /// synopsis without spending new budget.
    pub cache_hits: usize,
}

impl SystemStats {
    /// Average per-query processing time in milliseconds (answered and
    /// rejected queries both count as processed).
    #[must_use]
    pub fn per_query_ms(&self) -> f64 {
        let total = self.answered + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.query_time.as_secs_f64() * 1e3 / total as f64
        }
    }
}

/// The DProvDB system. Sharable across threads (`&self` submission path);
/// see the module docs for the locking discipline.
pub struct DProvDb {
    config: SystemConfig,
    mechanism: MechanismKind,
    /// The relational instance, epoch-versioned: sealed update epochs are
    /// applied to the tables under the write side; query resolution takes
    /// the read side (schema/domain lookups).
    db: RwLock<Database>,
    /// The batched columnar execution layer (`dprov-exec`): the database
    /// re-ingested as an immutable sharded column-store. Setup-time view
    /// materialisation and every exact (ground-truth) evaluation route
    /// through it; shared after setup without locks.
    exec: ColumnarExecutor,
    catalog: ViewCatalog,
    registry: AnalystRegistry,
    provenance: Mutex<ProvenanceTable>,
    synopses: SynopsisManager,
    ledger: Mutex<MultiAnalystLedger>,
    /// Tighter accounting of the data accesses (global synopsis releases /
    /// fresh per-analyst synopses) under the configured composition method
    /// (Appendix A). Used for reporting only — constraint checking uses
    /// basic composition on the provenance table, as the paper recommends.
    tight_accountant: Mutex<Box<dyn Accountant>>,
    admission: AdmissionControl,
    /// RNG backing the legacy single-threaded [`DProvDb::submit`] API.
    rng: Mutex<DpRng>,
    stats: Mutex<SystemStats>,
    per_analyst_answered: Vec<AtomicUsize>,
    /// Optional durable-commit hook: every accepted charge is appended to
    /// the recorder's write-ahead ledger *before* the in-memory commit
    /// becomes visible (see [`crate::recorder`]). `None` = volatile mode.
    recorder: Option<Arc<dyn Recorder>>,
    /// Monotone commit sequence, assigned inside the provenance critical
    /// section so sequence order equals commit order.
    commit_seq: AtomicU64,
    /// Commit-pipeline gate: submissions hold a read guard across their
    /// append → apply → ledger window; [`DProvDb::export_durable_state`]
    /// takes the write guard so a snapshot never observes a commit that is
    /// in the write-ahead ledger but not yet fully applied in memory.
    commit_gate: RwLock<()>,
    /// Every data access fed to the tight accountant, kept only in durable
    /// mode (recorder attached or state replayed) so snapshots can rebuild
    /// the accountant exactly. Grows with *data accesses* (global releases
    /// and fresh synopses), not with answered queries — under binding
    /// constraints that count is budget-bounded, but an effectively
    /// unbounded-budget deployment should expect snapshot size and
    /// compaction time to grow with it (summarising accountant state in
    /// the snapshot instead is a known follow-up).
    access_history: Mutex<Vec<AccessRecord>>,
    /// The dynamic-data update log: validated pending batches plus the
    /// sealed epoch history (see `dprov-delta`).
    delta_log: Mutex<UpdateLog>,
    /// Epoch gate: every submission and exact-answer evaluation holds the
    /// read side for its whole execution; [`DProvDb::seal_epoch`] takes
    /// the write side, so an answer is never torn across two epochs and a
    /// seal waits for in-flight answers to finish.
    epoch_gate: RwLock<()>,
    /// The observability registry (`dprov-obs`): admission outcomes,
    /// cache hit/miss, epoch staleness, execute latency and the
    /// per-(analyst, view) remaining-budget gauges. Recording is
    /// lock-free and only reads values the hot path already computed, so
    /// answers/noise/charges are bit-identical with the registry enabled
    /// or [`MetricsRegistry::disabled`] (the `metrics_determinism` suite
    /// proves it).
    metrics: MetricsRegistry,
    /// Dense view index (catalog order) for the budget-gauge matrix.
    view_index: std::collections::HashMap<String, usize>,
}

/// A guard holding the commit pipeline frozen (see
/// [`DProvDb::freeze_commits`]). Dropping it resumes commits.
pub struct CommitFreeze<'a> {
    _guard: std::sync::RwLockWriteGuard<'a, ()>,
}

/// What one epoch seal did (see [`DProvDb::seal_epoch`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// The sealed epoch's number.
    pub epoch: u64,
    /// Update batches the epoch applied.
    pub batches: usize,
    /// Delta rows (inserts + deletes) the epoch applied.
    pub rows: usize,
    /// Views whose exact histograms were patched (or rebuilt).
    pub views_patched: Vec<String>,
    /// Cached noisy synopses invalidated under the epoch policy.
    pub synopses_invalidated: usize,
}

/// What a request resolves to before any budget is spent.
struct ResolvedRequest {
    view: ViewDef,
    linear: LinearQuery,
    /// The per-bin variance the answer's synopsis must reach.
    per_bin_target: f64,
    /// The explicit epsilon of a privacy-oriented request, if any.
    requested_epsilon: Option<f64>,
}

impl DProvDb {
    /// Builds the system: computes constraints from the configuration,
    /// initialises the provenance table and materialises every view's exact
    /// histogram (the "setup time" of Tables 1/3).
    pub fn new(
        db: Database,
        catalog: ViewCatalog,
        registry: AnalystRegistry,
        config: SystemConfig,
        mechanism: MechanismKind,
    ) -> Result<Self> {
        config.validate_for_dataset(db.total_rows())?;

        let setup_start = Instant::now();

        let row_constraints = analyst_constraints(&config, &registry)?;
        let view_sens: Vec<(String, f64)> = catalog
            .views()
            .iter()
            .map(|v| (v.name.clone(), v.sensitivity().value()))
            .collect();
        let col_constraints = view_constraints(&config, &view_sens)?;

        let mut provenance = ProvenanceTable::new(config.total_epsilon.value());
        for (analyst, constraint) in registry.ids().into_iter().zip(row_constraints) {
            provenance.add_analyst(analyst, constraint);
        }
        for (view, constraint) in catalog.views().iter().zip(col_constraints) {
            provenance.add_view(&view.name, constraint);
        }

        // Ingest the database into the columnar execution layer, then
        // materialise the whole view catalog through it: every view over
        // one base table shares a single pass over its shards.
        let exec = ColumnarExecutor::ingest(&db, &ExecConfig::default());
        let mut synopses = SynopsisManager::new(config.delta);
        synopses.register_views(&exec, catalog.views())?;

        let view_names: Vec<String> = catalog.views().iter().map(|v| v.name.clone()).collect();
        let admission = AdmissionControl::new(registry.len(), &view_names);

        let setup_time = setup_start.elapsed();
        let rng = DpRng::seed_from_u64(config.seed);
        let per_analyst_answered = (0..registry.len()).map(|_| AtomicUsize::new(0)).collect();
        let tight_accountant = make_accountant(config.composition, config.delta.value());

        let view_index = view_names
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), i))
            .collect();

        let system = DProvDb {
            config,
            mechanism,
            db: RwLock::new(db),
            exec,
            catalog,
            registry,
            provenance: Mutex::new(provenance),
            synopses,
            ledger: Mutex::new(MultiAnalystLedger::new()),
            tight_accountant: Mutex::new(tight_accountant),
            admission,
            rng: Mutex::new(rng),
            stats: Mutex::new(SystemStats {
                setup_time,
                query_time: Duration::ZERO,
                answered: 0,
                rejected: 0,
                cache_hits: 0,
            }),
            per_analyst_answered,
            recorder: None,
            commit_seq: AtomicU64::new(0),
            commit_gate: RwLock::new(()),
            access_history: Mutex::new(Vec::new()),
            delta_log: Mutex::new(UpdateLog::new()),
            epoch_gate: RwLock::new(()),
            metrics: MetricsRegistry::new(),
            view_index,
        };
        system.publish_budget_matrix();
        Ok(system)
    }

    /// Replaces the observability registry (enabled by default; pass
    /// [`MetricsRegistry::disabled`] for a strict no-op). Must be called
    /// before the system is shared (hence `&mut self`), like
    /// [`Self::set_recorder`]. The budget-gauge matrix is re-registered
    /// and re-published from the current provenance state.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
        self.publish_budget_matrix();
    }

    /// The observability registry. Clone it into any layer that should
    /// record into the same set of metrics.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Registers the per-(analyst, view) budget-gauge matrix and seeds
    /// every cell from the current provenance state.
    fn publish_budget_matrix(&self) {
        if !self.metrics.is_enabled() {
            return;
        }
        self.metrics.register_budget_matrix(
            self.registry
                .analysts()
                .iter()
                .map(|a| a.name.clone())
                .collect(),
            self.catalog
                .views()
                .iter()
                .map(|v| v.name.clone())
                .collect(),
        );
        let provenance = self.lock_provenance();
        for analyst in self.registry.ids() {
            for view in self.catalog.views() {
                self.observe_budget(&provenance, analyst, &view.name);
            }
        }
    }

    /// Publishes one (analyst, view) budget gauge from the provenance
    /// state the caller already holds locked. Pure reads plus relaxed
    /// atomic stores — never mutates admission state.
    fn observe_budget(&self, provenance: &ProvenanceTable, analyst: AnalystId, view: &str) {
        if !self.metrics.is_enabled() {
            return;
        }
        let Some(&view_idx) = self.view_index.get(view) else {
            return;
        };
        let entry = provenance.entry(analyst, view);
        // Headroom for this cell: the analyst's remaining row budget
        // capped by the view column's remaining room under the
        // mechanism's accounting (sum for vanilla, max for additive).
        let column_spent = match self.mechanism {
            MechanismKind::Vanilla => provenance.column_sum(view),
            MechanismKind::AdditiveGaussian => provenance.column_max(view),
        };
        let column_headroom = provenance.col_constraint(view) - column_spent;
        let remaining = provenance
            .row_remaining(analyst)
            .min(column_headroom)
            .max(0.0);
        self.metrics
            .set_budget(analyst.0, view_idx, entry, remaining);
    }

    /// Attaches the durable-commit recorder. Must be called before the
    /// system is shared (hence `&mut self`), and — when recovering — after
    /// [`Self::import_durable_state`] / [`Self::replay_commit`], so replay
    /// never echoes back into the write-ahead ledger.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// True when a durable recorder is attached.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.recorder.is_some()
    }

    /// The next commit sequence number to be assigned.
    #[must_use]
    pub fn next_commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::SeqCst)
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The mechanism the system runs.
    #[must_use]
    pub fn mechanism(&self) -> MechanismKind {
        self.mechanism
    }

    /// The analyst registry.
    #[must_use]
    pub fn registry(&self) -> &AnalystRegistry {
        &self.registry
    }

    /// Runs `f` against the current relational instance (the read side of
    /// the epoch-versioned database). The closure shape keeps the lock
    /// scoped to the call — planning layers use this for schema and
    /// domain-size lookups without cloning tables or holding the guard.
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        let db = self.db.read().expect("db lock poisoned");
        f(&db)
    }

    /// A consistent snapshot of the privacy provenance table. Cloning keeps
    /// the accessor re-entrant (callers may combine it freely with other
    /// accessors that lock internally); the matrix is small — one `f64` per
    /// (analyst, view) pair.
    #[must_use]
    pub fn provenance(&self) -> ProvenanceTable {
        self.lock_provenance().clone()
    }

    /// A consistent snapshot of the per-analyst privacy-loss ledger.
    #[must_use]
    pub fn ledger(&self) -> MultiAnalystLedger {
        self.ledger.lock().expect("ledger lock poisoned").clone()
    }

    fn lock_provenance(&self) -> MutexGuard<'_, ProvenanceTable> {
        self.provenance.lock().expect("provenance lock poisoned")
    }

    fn lock_ledger(&self) -> MutexGuard<'_, MultiAnalystLedger> {
        self.ledger.lock().expect("ledger lock poisoned")
    }

    /// The overall privacy loss of all data accesses under the configured
    /// composition method (Appendix A). With `CompositionMethod::Sequential`
    /// this matches the provenance-table accounting; Rényi/zCDP give a
    /// tighter bound over long runs. Reporting only — constraint checks use
    /// the provenance table.
    #[must_use]
    pub fn tight_accounting(&self) -> Budget {
        self.tight_accountant
            .lock()
            .expect("accountant lock poisoned")
            .total()
    }

    /// Runtime statistics.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        *self.stats.lock().expect("stats lock poisoned")
    }

    /// The exact (non-private) answer to a query — only used by the
    /// evaluation harness for relative-error measurements, never exposed to
    /// analysts. Scalar queries run on the columnar executor (vectorised
    /// kernels, zone-map pruning); GROUP BY queries stay on the engine's
    /// row-at-a-time path, which reports them as non-scalar.
    pub fn true_answer(&self, query: &Query) -> Result<f64> {
        let _epoch_gate = self.epoch_gate.read().expect("epoch gate poisoned");
        if query.group_by.is_empty() {
            let (answers, scan_ns) = self
                .exec
                .execute_batch_timed(std::slice::from_ref(query))
                .map_err(CoreError::Engine)?;
            // One sample per batch, summed over every scan thread — not
            // one sample per thread, and not wall-clock around the call.
            self.metrics.observe(HistId::ScanTime, scan_ns);
            return Ok(answers[0]);
        }
        let db = self.db.read().expect("db lock poisoned");
        let result = execute(&db, query).map_err(CoreError::Engine)?;
        result.scalar().ok_or_else(|| {
            CoreError::Engine(EngineError::InvalidQuery(
                "true_answer requires a scalar query".to_owned(),
            ))
        })
    }

    /// Exact answers to a whole batch of scalar queries in a **single
    /// shared scan** per base table (the `dprov-exec` batch path): `B`
    /// same-table queries cost 1 scan instead of `B`. Answers are
    /// bit-identical to calling [`Self::true_answer`] per query.
    pub fn true_answers(&self, queries: &[Query]) -> Result<Vec<f64>> {
        Ok(self.true_answers_epoch(queries)?.0)
    }

    /// Like [`Self::true_answers`], but also reports the update epoch the
    /// audit ran against — the whole batch is evaluated under one epoch
    /// gate acquisition, so every answer reflects exactly that epoch.
    pub fn true_answers_epoch(&self, queries: &[Query]) -> Result<(Vec<f64>, u64)> {
        let _epoch_gate = self.epoch_gate.read().expect("epoch gate poisoned");
        let (answers, scan_ns) = self
            .exec
            .execute_batch_timed(queries)
            .map_err(CoreError::Engine)?;
        // Summed thread-busy time, recorded exactly once per batch
        // regardless of the scan-thread fan-out.
        self.metrics.observe(HistId::ScanTime, scan_ns);
        Ok((answers, self.synopses.current_epoch()))
    }

    /// The columnar execution layer (shard/batch diagnostics, direct batch
    /// evaluation).
    #[must_use]
    pub fn exec(&self) -> &ColumnarExecutor {
        &self.exec
    }

    /// Sets how many threads the columnar executor fans shard scans out
    /// over (clamped to at least 1). Answers are **bit-identical** at any
    /// thread count — per-thread partials merge in shard order and only
    /// reassociation-exact aggregates take the parallel path — so this
    /// knob trades latency for cores without perturbing noise or budget
    /// accounting.
    pub fn set_scan_threads(&self, threads: usize) {
        self.exec.set_scan_threads(threads);
    }

    /// Counters of the columnar execution layer: scans, queries, batches
    /// and the scans-per-query amortisation ratio.
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.exec.stats()
    }

    /// Per-analyst outcomes for the fairness metrics.
    #[must_use]
    pub fn fairness_outcomes(&self) -> Vec<AnalystOutcome> {
        let ledger = self.lock_ledger();
        self.registry
            .analysts()
            .iter()
            .map(|a| AnalystOutcome {
                privilege: a.privilege.level(),
                answered: self.per_analyst_answered[a.id.0].load(Ordering::Relaxed),
                consumed_epsilon: ledger.loss_to(a.id).epsilon.value(),
            })
            .collect()
    }

    /// The nDCFG fairness score of the answered workload so far.
    #[must_use]
    pub fn ndcfg(&self) -> f64 {
        fairness::ndcfg(&self.fairness_outcomes())
    }

    /// Number of queries answered to each analyst, indexed by analyst id.
    #[must_use]
    pub fn answered_per_analyst(&self) -> Vec<usize> {
        self.per_analyst_answered
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Submits a query on behalf of an analyst (Algorithm 1, lines 5–14).
    ///
    /// Legacy single-threaded entry point; forwards to the shared path
    /// using the system-wide RNG.
    pub fn submit(&mut self, analyst: AnalystId, request: &QueryRequest) -> Result<QueryOutcome> {
        self.submit_shared(analyst, request)
    }

    /// Shared-reference submission using the system-wide RNG (serialises
    /// noise generation on one generator; concurrent callers should prefer
    /// [`Self::submit_with_rng`] with per-session streams).
    pub fn submit_shared(
        &self,
        analyst: AnalystId,
        request: &QueryRequest,
    ) -> Result<QueryOutcome> {
        let mut rng = self.rng.lock().expect("rng lock poisoned");
        self.submit_with_rng(analyst, request, &mut rng)
    }

    /// Submits a query on behalf of an analyst using a caller-supplied
    /// noise generator. Safe to call concurrently from many threads; the
    /// admission locks guarantee no constraint is ever overspent.
    pub fn submit_with_rng(
        &self,
        analyst: AnalystId,
        request: &QueryRequest,
        rng: &mut DpRng,
    ) -> Result<QueryOutcome> {
        self.registry.get(analyst)?;
        // Hold the epoch gate for the whole execution: a seal waits for
        // this answer and this answer never mixes two epochs.
        let _epoch_gate = self.epoch_gate.read().expect("epoch gate poisoned");
        let start = Instant::now();
        let outcome = match self.mechanism {
            MechanismKind::Vanilla => self.submit_vanilla(analyst, request, rng),
            MechanismKind::AdditiveGaussian => self.submit_additive(analyst, request, rng),
        };
        let elapsed = start.elapsed();
        self.observe_outcome(analyst, &outcome, elapsed);
        if self.metrics.is_enabled() {
            self.metrics.observe_duration(HistId::Execute, elapsed);
        }
        outcome
    }

    /// Folds one per-query outcome into the runtime stats and the
    /// observability counters. Shared between the scalar submission path
    /// and the grouped path, which calls it once per group cell so grouped
    /// stats equal the per-group oracle's.
    fn observe_outcome(
        &self,
        analyst: AnalystId,
        outcome: &Result<QueryOutcome>,
        elapsed: Duration,
    ) {
        {
            let mut stats = self.stats.lock().expect("stats lock poisoned");
            stats.query_time += elapsed;
            if let Ok(outcome) = outcome {
                match outcome {
                    QueryOutcome::Answered(a) => {
                        stats.answered += 1;
                        if a.from_cache {
                            stats.cache_hits += 1;
                        }
                        self.per_analyst_answered[analyst.0].fetch_add(1, Ordering::Relaxed);
                    }
                    QueryOutcome::Rejected { .. } => stats.rejected += 1,
                }
            }
        }
        // Observability: classify the outcome the hot path already
        // computed. Reads + relaxed atomics only; no lock, no RNG.
        if self.metrics.is_enabled() {
            if let Ok(outcome) = outcome {
                match outcome {
                    QueryOutcome::Answered(a) => {
                        self.metrics.incr(CounterId::QueriesAnswered);
                        if a.from_cache {
                            self.metrics.incr(CounterId::CacheHits);
                            // Bounded staleness under `CarryForward`: a
                            // cache hit whose synopsis predates the
                            // current epoch is a stale serve.
                            let current = self.synopses.current_epoch();
                            if a.epoch < current {
                                self.metrics.incr(CounterId::StaleServes);
                                self.metrics
                                    .observe(HistId::EpochStaleness, current - a.epoch);
                            }
                        } else {
                            self.metrics.incr(CounterId::CacheMisses);
                        }
                    }
                    QueryOutcome::Rejected { .. } => {
                        self.metrics.incr(CounterId::QueriesRejected);
                    }
                }
            }
        }
    }

    /// Resolves a request: selects the view, transforms the query, and
    /// derives the per-bin accuracy target. Returns `Err(reason)` for
    /// rejections that should not abort the run.
    fn resolve(
        &self,
        request: &QueryRequest,
    ) -> std::result::Result<ResolvedRequest, RejectReason> {
        let (view, linear) = {
            let db = self.db.read().expect("db lock poisoned");
            match self.catalog.select_view(&request.query, &db) {
                Ok(pair) => pair,
                Err(EngineError::NotAnswerable(_)) => return Err(RejectReason::NotAnswerable),
                Err(_) => return Err(RejectReason::NotAnswerable),
            }
        };
        let coeff_sq = linear.answer_variance(1.0);
        if coeff_sq <= 0.0 {
            // A query touching no cell has a trivially exact answer of 0; we
            // treat it as answerable from any synopsis with no extra cost.
            return Ok(ResolvedRequest {
                view,
                linear,
                per_bin_target: f64::INFINITY,
                requested_epsilon: None,
            });
        }
        let (per_bin_target, requested_epsilon) = match request.mode {
            SubmissionMode::Accuracy { variance } => {
                if !(variance.is_finite() && variance > 0.0) {
                    return Err(RejectReason::AccuracyUnreachable);
                }
                (variance / coeff_sq, None)
            }
            SubmissionMode::Privacy { epsilon } => {
                let sigma = match analytic_gaussian_sigma(
                    epsilon,
                    self.config.delta.value(),
                    view.sensitivity().value(),
                ) {
                    Ok(s) => s,
                    Err(_) => return Err(RejectReason::AccuracyUnreachable),
                };
                (sigma * sigma, Some(epsilon))
            }
        };
        Ok(ResolvedRequest {
            view,
            linear,
            per_bin_target,
            requested_epsilon,
        })
    }

    /// Answers from an existing (analyst, view) synopsis if it is accurate
    /// enough. The variance check and the answer evaluation both happen
    /// under the shard read guard (`with_local`), so the hot path never
    /// clones the synopsis counts.
    fn try_cache(&self, analyst: AnalystId, resolved: &ResolvedRequest) -> Option<AnsweredQuery> {
        self.synopses
            .with_local(analyst.0, &resolved.view.name, |local| {
                if local.synopsis.per_bin_variance <= resolved.per_bin_target {
                    Some(AnsweredQuery {
                        value: local.synopsis.answer(&resolved.linear),
                        view: Some(resolved.view.name.clone()),
                        epsilon_charged: 0.0,
                        noise_variance: local.synopsis.answer_variance(&resolved.linear),
                        from_cache: true,
                        // Under carry-forward this may lag the current
                        // epoch (bounded staleness); stale-beyond-bound
                        // entries were invalidated at the seal, so
                        // whatever is cached is servable.
                        epoch: local.epoch,
                    })
                } else {
                    None
                }
            })
            .flatten()
    }

    /// Translates a per-bin variance target into the minimal epsilon, using
    /// the table constraint as the search range (Definition 9).
    fn translate_vanilla(
        &self,
        per_bin_target: f64,
        sensitivity: dprov_dp::sensitivity::Sensitivity,
    ) -> std::result::Result<f64, RejectReason> {
        match translate_variance_to_epsilon(
            per_bin_target,
            self.config.delta,
            sensitivity,
            self.config.total_epsilon,
            self.config.translation_precision,
        ) {
            Ok(t) => Ok(t.epsilon.value()),
            Err(DpError::TranslationOutOfRange { .. }) => Err(RejectReason::AccuracyUnreachable),
            Err(_) => Err(RejectReason::AccuracyUnreachable),
        }
    }

    /// Records one data access in the tight accountant, journalling it to
    /// the write-ahead ledger (and the in-memory access history) first when
    /// a recorder is attached. The append happens under the accountant lock
    /// so the ledger's access order equals the accountant's record order.
    /// Append failures are tolerated: tight accounting is reporting-only
    /// and losing an access record never undercounts the *constraint*
    /// accounting.
    fn record_tight(&self, seq: u64, epsilon: f64, sigma: f64, sensitivity: f64) {
        let mut accountant = self
            .tight_accountant
            .lock()
            .expect("accountant lock poisoned");
        if let Some(recorder) = &self.recorder {
            let record = AccessRecord {
                seq,
                epsilon,
                sigma,
                sensitivity,
            };
            let _ = recorder.record_access(&record);
            self.access_history
                .lock()
                .expect("access history poisoned")
                .push(record);
        }
        accountant.record(
            Budget::from_parts(Epsilon::unchecked(epsilon), self.config.delta),
            sigma,
            sensitivity,
        );
    }

    /// Persists one commit record and assigns its sequence number. Must be
    /// called with the provenance lock held, *before* the in-memory charge
    /// is applied; an `Err` means nothing was persisted and the caller must
    /// abort the submission without mutating memory.
    fn record_commit(
        &self,
        analyst: AnalystId,
        view: &str,
        mechanism: MechanismKind,
        prev_entry: f64,
        new_entry: f64,
        charged: f64,
    ) -> Result<u64> {
        let seq = self.commit_seq.fetch_add(1, Ordering::SeqCst);
        if let Some(recorder) = &self.recorder {
            recorder
                .record_commit(&CommitRecord {
                    seq,
                    analyst,
                    view: view.to_owned(),
                    mechanism,
                    prev_entry,
                    new_entry,
                    charged,
                })
                .map_err(CoreError::Storage)?;
        }
        Ok(seq)
    }

    /// Appends a tombstone voiding commit `seq` after its release failed
    /// and the in-memory charge was rolled back. Best-effort: losing the
    /// tombstone only makes recovery over-count the spend.
    fn record_rollback(&self, seq: u64) {
        if let Some(recorder) = &self.recorder {
            let _ = recorder.record_rollback(seq);
        }
    }

    /// Algorithm 2: the vanilla approach.
    fn submit_vanilla(
        &self,
        analyst: AnalystId,
        request: &QueryRequest,
        rng: &mut DpRng,
    ) -> Result<QueryOutcome> {
        let resolved = match self.resolve(request) {
            Ok(r) => r,
            Err(reason) => return Ok(QueryOutcome::Rejected { reason }),
        };
        self.admit_vanilla(analyst, resolved, rng)
    }

    /// The post-resolve tail of Algorithm 2: cache probe, translation,
    /// check-and-reserve, release. Everything that spends budget or draws
    /// noise lives here; the grouped path calls it once per group cell
    /// with resolutions from [`Self::resolve_grouped`], so a grouped
    /// answer is bit-identical to per-group scalar submissions.
    fn admit_vanilla(
        &self,
        analyst: AnalystId,
        resolved: ResolvedRequest,
        rng: &mut DpRng,
    ) -> Result<QueryOutcome> {
        // Serialise competing submissions for this provenance entry: the
        // second of two identical queries waits here and is then answered
        // from the first one's cached synopsis for free.
        let _entry = self.admission.lock_entry(analyst.0, &resolved.view.name);

        if let Some(answer) = self.try_cache(analyst, &resolved) {
            return Ok(QueryOutcome::Answered(answer));
        }

        let sensitivity = resolved.view.sensitivity();
        let epsilon = match resolved.requested_epsilon {
            Some(e) => e,
            None => match self.translate_vanilla(resolved.per_bin_target, sensitivity) {
                Ok(e) => e,
                Err(reason) => return Ok(QueryOutcome::Rejected { reason }),
            },
        };

        // Hold the commit gate across append → apply → ledger so durable
        // snapshots (which take the write side) never observe a commit that
        // is in the write-ahead ledger but only half-applied in memory.
        let _commit_gate = self.commit_gate.read().expect("commit gate poisoned");

        // Check-and-reserve atomically: the write-ahead append and the
        // charge happen in the same critical section as the check, so no
        // concurrent submission can sneak its own charge between them and
        // the ledger's record order equals the commit order.
        let seq = {
            let mut provenance = self.lock_provenance();
            if let Err(reason) = provenance.check_vanilla(analyst, &resolved.view.name, epsilon) {
                return Ok(QueryOutcome::Rejected { reason });
            }
            let prev_entry = provenance.entry(analyst, &resolved.view.name);
            let seq = self.record_commit(
                analyst,
                &resolved.view.name,
                MechanismKind::Vanilla,
                prev_entry,
                prev_entry + epsilon,
                epsilon,
            )?;
            provenance.charge(analyst, &resolved.view.name, epsilon);
            self.observe_budget(&provenance, analyst, &resolved.view.name);
            seq
        };

        // Run: an independent synopsis per (analyst, view) release; noise
        // generation happens outside the provenance lock.
        let synopsis = match self
            .synopses
            .fresh_synopsis(&resolved.view.name, epsilon, rng)
        {
            Ok(s) => s,
            Err(e) => {
                // Release failed after the reserve: roll the charge back
                // and void the write-ahead record with a tombstone.
                {
                    let mut provenance = self.lock_provenance();
                    provenance.charge(analyst, &resolved.view.name, -epsilon);
                    self.observe_budget(&provenance, analyst, &resolved.view.name);
                }
                self.record_rollback(seq);
                return Err(e);
            }
        };
        let answer = synopsis.answer(&resolved.linear);
        let noise_variance = synopsis.answer_variance(&resolved.linear);
        self.record_tight(
            seq,
            epsilon,
            synopsis.per_bin_variance.sqrt(),
            sensitivity.value(),
        );
        let release_epoch = self.synopses.current_epoch();
        self.synopses.store_local(
            analyst.0,
            &resolved.view.name,
            BudgetedSynopsis {
                synopsis,
                epsilon,
                epoch: release_epoch,
            },
        );
        self.lock_ledger().record(
            analyst,
            Budget::from_parts(Epsilon::unchecked(epsilon), self.config.delta),
            MechanismKind::Vanilla,
        );

        Ok(QueryOutcome::Answered(AnsweredQuery {
            value: answer,
            view: Some(resolved.view.name),
            epsilon_charged: epsilon,
            noise_variance,
            from_cache: false,
            epoch: release_epoch,
        }))
    }

    /// Algorithm 4: the additive Gaussian approach.
    fn submit_additive(
        &self,
        analyst: AnalystId,
        request: &QueryRequest,
        rng: &mut DpRng,
    ) -> Result<QueryOutcome> {
        let resolved = match self.resolve(request) {
            Ok(r) => r,
            Err(reason) => return Ok(QueryOutcome::Rejected { reason }),
        };
        self.admit_additive(analyst, resolved, rng)
    }

    /// The post-resolve tail of Algorithm 4 (see [`Self::admit_vanilla`]
    /// for why the split exists).
    fn admit_additive(
        &self,
        analyst: AnalystId,
        resolved: ResolvedRequest,
        rng: &mut DpRng,
    ) -> Result<QueryOutcome> {
        let _entry = self.admission.lock_entry(analyst.0, &resolved.view.name);

        if let Some(answer) = self.try_cache(analyst, &resolved) {
            return Ok(QueryOutcome::Answered(answer));
        }

        let view_name = resolved.view.name.clone();
        let sensitivity = resolved.view.sensitivity();

        // The additive path reads the hidden global synopsis, translates
        // against it and then grows it; the per-view lock makes that
        // read-translate-grow sequence atomic (entry lock first, view lock
        // second — fixed order, deadlock-free).
        let _view = self.admission.lock_view(&view_name);

        let global_state = self.synopses.global_state(&view_name)?;
        let current_global_eps = global_state.map(|(eps, _)| eps);
        let current_global_var = global_state.map(|(_, var)| var);

        // Translation (Algorithm 4, privacyTranslate): figure out the
        // global target budget and the analyst's local budget.
        let (global_target, local_epsilon) = match resolved.requested_epsilon {
            Some(eps_req) => {
                // Privacy-oriented mode follows Algorithm 4 literally.
                let global_target = current_global_eps.unwrap_or(0.0).max(eps_req);
                (global_target, eps_req)
            }
            None => {
                let local_nominal =
                    match self.translate_vanilla(resolved.per_bin_target, sensitivity) {
                        Ok(e) => e,
                        Err(reason) => return Ok(QueryOutcome::Rejected { reason }),
                    };
                let global_target = match (current_global_eps, current_global_var) {
                    (None, _) => local_nominal,
                    (Some(eps_g), Some(v_g)) if v_g <= resolved.per_bin_target => eps_g,
                    (Some(eps_g), Some(v_g)) => {
                        // Friction-aware translation (Eq. 3): the delta
                        // synopsis may be noisier than the request because
                        // it will be combined with the existing one.
                        let translator =
                            FrictionAwareTranslation::new(self.config.delta, sensitivity);
                        match translator.translate(
                            resolved.per_bin_target,
                            Some(v_g),
                            self.config.total_epsilon,
                        ) {
                            Ok(t) => eps_g + t.epsilon.value(),
                            Err(_) => {
                                return Ok(QueryOutcome::Rejected {
                                    reason: RejectReason::AccuracyUnreachable,
                                })
                            }
                        }
                    }
                    (Some(eps_g), None) => eps_g.max(local_nominal),
                };
                (global_target, local_nominal.min(global_target))
            }
        };

        // Hold the commit gate across append → apply → ledger (see
        // `submit_vanilla`).
        let _commit_gate = self.commit_gate.read().expect("commit gate poisoned");

        // Incremental charge to this analyst (Algorithm 4, line 19):
        // ε' = min(ε_global, P[A_i, V] + ε_i) − P[A_i, V].
        // Write-ahead append and read-check-reserve in ONE provenance
        // critical section.
        let (previous_entry, effective, seq) = {
            let mut provenance = self.lock_provenance();
            let previous_entry = provenance.entry(analyst, &view_name);
            let new_entry = global_target.min(previous_entry + local_epsilon);
            let effective = (new_entry - previous_entry).max(0.0);
            if let Err(reason) = provenance.check_additive(analyst, &view_name, effective) {
                return Ok(QueryOutcome::Rejected { reason });
            }
            let seq = self.record_commit(
                analyst,
                &view_name,
                MechanismKind::AdditiveGaussian,
                previous_entry,
                new_entry,
                effective,
            )?;
            provenance.set_entry(analyst, &view_name, new_entry);
            self.observe_budget(&provenance, analyst, &view_name);
            (previous_entry, effective, seq)
        };

        // Run (Algorithm 4, lines 2–10): grow the global synopsis if
        // needed, then derive the local synopsis via additive GM. Only the
        // global release touches the data, so only it is recorded in the
        // tight accountant (local synopses are post-processing).
        let rollback = |e: CoreError| {
            {
                let mut provenance = self.lock_provenance();
                provenance.set_entry(analyst, &view_name, previous_entry);
                self.observe_budget(&provenance, analyst, &view_name);
            }
            self.record_rollback(seq);
            Err(e)
        };
        let growth = match self.synopses.grow_global(&view_name, global_target, rng) {
            Ok(g) => g,
            Err(e) => return rollback(e),
        };
        if let Some(growth) = growth {
            self.record_tight(
                seq,
                growth.spent_epsilon,
                growth.release_sigma,
                sensitivity.value(),
            );
        }
        let local = match self.synopses.derive_local(
            analyst.0,
            &view_name,
            local_epsilon.min(global_target),
            rng,
        ) {
            Ok(l) => l,
            Err(e) => return rollback(e),
        };

        self.lock_ledger().record(
            analyst,
            Budget::from_parts(Epsilon::unchecked(effective), self.config.delta),
            MechanismKind::AdditiveGaussian,
        );

        Ok(QueryOutcome::Answered(AnsweredQuery {
            value: local.synopsis.answer(&resolved.linear),
            view: Some(view_name),
            epsilon_charged: effective,
            noise_variance: local.synopsis.answer_variance(&resolved.linear),
            from_cache: false,
            epoch: local.epoch,
        }))
    }

    // ----- grouped (GROUP BY) answering -----

    /// Answers a grouped query with the system-wide RNG (the grouped
    /// analogue of [`Self::submit_shared`]). Concurrent callers should
    /// prefer [`Self::answer_group_by_with_rng`] with per-session streams.
    pub fn answer_group_by(
        &self,
        analyst: AnalystId,
        request: &GroupedRequest,
    ) -> Result<GroupedOutcome> {
        let mut rng = self.rng.lock().expect("rng lock poisoned");
        self.answer_group_by_with_rng(analyst, request, &mut rng)
    }

    /// Answers a grouped query: one outcome per group cell in canonical
    /// enumeration order, each priced and admitted through the normal
    /// provenance path.
    ///
    /// **Oracle equivalence.** Answers, noise draws, budget charges and
    /// runtime counters are bit-identical to submitting the per-group
    /// scalar queries ([`GroupByQuery::scalar_queries`]) one by one via
    /// [`Self::submit_with_rng`] with the same RNG: resolution walks the
    /// selected view's histogram once and replays the exact per-group
    /// coefficient lists `transform` would build, and each cell then runs
    /// the same `admit_*` tail the scalar path runs. The whole grouped
    /// answer executes under **one** epoch-gate acquisition, so it never
    /// straddles an update epoch.
    ///
    /// Structurally invalid grouped queries (unknown table, unknown or
    /// duplicate grouping attribute — cases where the oracle could not
    /// even enumerate its queries) return `Err`; everything else surfaces
    /// as per-cell [`QueryOutcome::Rejected`].
    pub fn answer_group_by_with_rng(
        &self,
        analyst: AnalystId,
        request: &GroupedRequest,
        rng: &mut DpRng,
    ) -> Result<GroupedOutcome> {
        self.registry.get(analyst)?;
        let _epoch_gate = self.epoch_gate.read().expect("epoch gate poisoned");
        let group_start = Instant::now();
        let (keys, cells) = self.resolve_grouped(request)?;
        let mut outcomes = Vec::with_capacity(cells.len());
        let mut released = 0u64;
        for cell in cells {
            let start = Instant::now();
            let outcome = match cell {
                Err(reason) => Ok(QueryOutcome::Rejected { reason }),
                Ok(resolved) => match self.mechanism {
                    MechanismKind::Vanilla => self.admit_vanilla(analyst, resolved, rng),
                    MechanismKind::AdditiveGaussian => self.admit_additive(analyst, resolved, rng),
                },
            };
            self.observe_outcome(analyst, &outcome, start.elapsed());
            let outcome = outcome?;
            if outcome.is_answered() {
                released += 1;
            }
            outcomes.push(outcome);
        }
        if self.metrics.is_enabled() {
            self.metrics.incr(CounterId::GroupQueries);
            self.metrics.add(CounterId::GroupCellsReleased, released);
            self.metrics
                .observe(HistId::GroupSize, outcomes.len() as u64);
            self.metrics
                .observe_duration(HistId::GroupExecute, group_start.elapsed());
        }
        Ok(GroupedOutcome { keys, outcomes })
    }

    /// Resolves a grouped request into one per-cell resolution in
    /// canonical enumeration order, walking the selected view's cells
    /// **once** instead of once per group.
    ///
    /// Per-group results are bit-identical to calling [`Self::resolve`] on
    /// the per-group oracle queries: view selection is value-independent
    /// (answerability depends on attribute coverage and aggregate shape,
    /// never on the group key, so every group picks the same view), each
    /// view cell satisfies exactly one group's equality selection, and
    /// cells are visited in ascending flat order — the same order
    /// `transform` enumerates them per group.
    #[allow(clippy::type_complexity)]
    fn resolve_grouped(
        &self,
        request: &GroupedRequest,
    ) -> Result<(
        Vec<Vec<Value>>,
        Vec<std::result::Result<ResolvedRequest, RejectReason>>,
    )> {
        let db = self.db.read().expect("db lock poisoned");
        let query = &request.query;
        let table = db.table(&query.table).map_err(CoreError::Engine)?;
        let schema = table.schema();
        let group_positions = query.group_positions(schema).map_err(CoreError::Engine)?;
        let group_sizes: Vec<usize> = group_positions
            .iter()
            .map(|&p| schema.attributes()[p].domain_size())
            .collect();
        let keys = query.group_keys(schema).map_err(CoreError::Engine)?;
        let num_groups: usize = group_sizes.iter().product();

        // Select the view once, against the representative (all-zero) group
        // cell's scalar query; answerability never depends on the key.
        let representative = query
            .group_query(schema, &vec![0; group_positions.len()])
            .map_err(CoreError::Engine)?;
        let view = match self.catalog.select_view(&representative, &db) {
            Ok((view, _)) => view,
            // Not answerable over any view: every group is rejected,
            // exactly as the oracle would reject each scalar query.
            Err(_) => {
                let cells = (0..num_groups)
                    .map(|_| Err(RejectReason::NotAnswerable))
                    .collect();
                return Ok((keys, cells));
            }
        };

        // One pass over the view's cells, replaying `transform`'s
        // coefficient construction with the cells routed to their group.
        let attrs: Vec<&dprov_engine::schema::Attribute> = view
            .attributes
            .iter()
            .map(|a| schema.attribute(a))
            .collect::<dprov_engine::Result<_>>()
            .map_err(CoreError::Engine)?;
        let dims = view.dimensions(schema).map_err(CoreError::Engine)?;
        let view_cells: usize = dims.iter().product();
        let view_group_positions: Vec<usize> = query
            .group_cols
            .iter()
            .map(|g| {
                view.attributes
                    .iter()
                    .position(|a| a == g)
                    .expect("selected view covers the grouping attributes")
            })
            .collect();
        let sum_position = match &query.aggregate {
            AggregateKind::Count => None,
            AggregateKind::Sum(a) => Some(
                view.attributes
                    .iter()
                    .position(|v| v == a)
                    .expect("selected view covers the aggregate target"),
            ),
            AggregateKind::Avg(_) => unreachable!("Avg never transforms to a linear query"),
        };

        let mut coefficients: Vec<Vec<(usize, f64)>> =
            (0..num_groups).map(|_| Vec::new()).collect();
        for cell in MultiIndexIter::new(&dims) {
            if !query.predicate.matches_cell(&attrs, &cell) {
                continue;
            }
            let coeff = match sum_position {
                None => 1.0,
                Some(pos) => attrs[pos]
                    .numeric_at(cell[pos])
                    .expect("view selection only admits numeric SUM targets"),
            };
            if coeff != 0.0 {
                let group_cell: Vec<usize> =
                    view_group_positions.iter().map(|&p| cell[p]).collect();
                let group = flat_index(&group_sizes, &group_cell);
                coefficients[group].push((flat_index(&dims, &cell), coeff));
            }
        }
        drop(db);

        // Per-group tail of `resolve`, with the shared pieces hoisted: the
        // privacy-mode sigma and the accuracy-mode validity depend only on
        // the request and the view, so hoisting is bit-identical.
        let mut cells = Vec::with_capacity(num_groups);
        for coeffs in coefficients {
            let linear = LinearQuery {
                view: view.name.clone(),
                coefficients: coeffs,
                view_cells,
            };
            let coeff_sq = linear.answer_variance(1.0);
            if coeff_sq <= 0.0 {
                // A group touching no cell has a trivially exact answer of
                // 0, answerable from any synopsis with no extra cost.
                cells.push(Ok(ResolvedRequest {
                    view: view.clone(),
                    linear,
                    per_bin_target: f64::INFINITY,
                    requested_epsilon: None,
                }));
                continue;
            }
            cells.push(match request.mode {
                SubmissionMode::Accuracy { variance } => {
                    if variance.is_finite() && variance > 0.0 {
                        Ok(ResolvedRequest {
                            view: view.clone(),
                            linear,
                            per_bin_target: variance / coeff_sq,
                            requested_epsilon: None,
                        })
                    } else {
                        Err(RejectReason::AccuracyUnreachable)
                    }
                }
                SubmissionMode::Privacy { epsilon } => {
                    match analytic_gaussian_sigma(
                        epsilon,
                        self.config.delta.value(),
                        view.sensitivity().value(),
                    ) {
                        Ok(sigma) => Ok(ResolvedRequest {
                            view: view.clone(),
                            linear,
                            per_bin_target: sigma * sigma,
                            requested_epsilon: Some(epsilon),
                        }),
                        Err(_) => Err(RejectReason::AccuracyUnreachable),
                    }
                }
            });
        }
        Ok((keys, cells))
    }

    /// Exact (non-private) per-group answers in canonical enumeration
    /// order — evaluation-harness only, like [`Self::true_answer`]. Runs
    /// on the columnar executor's grouped path (one shared pass for the
    /// whole group set).
    pub fn true_group_by(&self, query: &GroupByQuery) -> Result<Vec<f64>> {
        let _epoch_gate = self.epoch_gate.read().expect("epoch gate poisoned");
        let (answers, scan_ns) = self
            .exec
            .execute_group_by_timed(query)
            .map_err(CoreError::Engine)?;
        self.metrics.observe(HistId::ScanTime, scan_ns);
        Ok(answers)
    }

    // ----- dynamic data: epoch-versioned updates (see `dprov-delta`) -----

    /// The last sealed update epoch (0 = the immutable setup state).
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.synopses.current_epoch()
    }

    /// Number of validated update batches awaiting the next seal.
    #[must_use]
    pub fn pending_updates(&self) -> usize {
        self.lock_delta().pending.len()
    }

    fn lock_delta(&self) -> MutexGuard<'_, UpdateLog> {
        self.delta_log.lock().expect("delta log poisoned")
    }

    /// Submits one update batch: validates every row against the schema
    /// (and every delete's multiplicity against the logical table state),
    /// journals the encoded batch to the write-ahead ledger *before* it
    /// becomes pending in memory, and returns its batch sequence number.
    /// The batch takes effect at the next [`Self::seal_epoch`]; queries
    /// keep answering against the current epoch until then.
    pub fn apply_update(&self, batch: &UpdateBatch) -> Result<u64> {
        // Epoch-gate read: a concurrent seal is either fully applied or
        // not started when validation runs. Without it there is a window
        // (seal drained the pending log but has not yet applied the
        // batches to the tables) in which delete-multiplicity validation
        // would see neither the sealed batches nor their effects.
        let _epoch_gate = self.epoch_gate.read().expect("epoch gate poisoned");
        // Commit-gate read: the WAL append and the in-memory push are
        // atomic with respect to durable snapshots, like budget commits.
        let _commit_gate = self.commit_gate.read().expect("commit gate poisoned");
        let db = self.db.read().expect("db lock poisoned");
        let mut log = self.lock_delta();
        let encoded = log.encode_batch(&db, batch).map_err(CoreError::Delta)?;
        if let Some(recorder) = &self.recorder {
            recorder
                .record_update(&encoded)
                .map_err(CoreError::Storage)?;
        }
        let seq = encoded.seq;
        log.push_pending(encoded);
        Ok(seq)
    }

    /// Seals the pending update batches into the next epoch:
    ///
    /// 1. quiesces query execution (epoch-gate write: every in-flight
    ///    answer finishes against the old epoch, none straddles the seal);
    /// 2. journals the seal to the write-ahead ledger *before* applying;
    /// 3. applies the batches to the engine tables, appends the epoch's
    ///    immutable delta segments to the columnar shard sets (old shards
    ///    are never rewritten), and patches every affected view's exact
    ///    histogram from the delta rows alone (bit-identical to a full
    ///    rebuild; [`MaintenanceMode::FullRebuild`] runs the rebuild
    ///    instead, as the equivalence oracle);
    /// 4. invalidates cached noisy synopses per the configured
    ///    [`dprov_delta::EpochPolicy`] — the seal itself draws **no**
    ///    randomness and spends **no** budget; re-releases are bought
    ///    lazily by the next query through the normal admission path, so
    ///    the multi-analyst constraints keep holding across epochs.
    ///
    /// Sealing with no pending batches is allowed (an empty epoch).
    pub fn seal_epoch(&self) -> Result<EpochReport> {
        let _epoch_gate = self.epoch_gate.write().expect("epoch gate poisoned");
        let _commit_gate = self.commit_gate.read().expect("commit gate poisoned");
        let mut log = self.lock_delta();
        let epoch = log.current_epoch + 1;
        if let Some(recorder) = &self.recorder {
            recorder
                .record_epoch_seal(epoch, log.next_seq)
                .map_err(CoreError::Storage)?;
        }
        let sealed = log.seal();
        drop(log);
        self.apply_sealed(&sealed)
    }

    /// Applies one sealed epoch to the engine tables, the columnar shard
    /// sets and the synopsis state. Callers hold the epoch-gate write (or
    /// run single-threaded recovery).
    fn apply_sealed(&self, sealed: &SealedEpoch) -> Result<EpochReport> {
        let segments = {
            let db = self.db.read().expect("db lock poisoned");
            build_segments(&db, &sealed.batches)
        };
        {
            let mut db = self.db.write().expect("db lock poisoned");
            for batch in &sealed.batches {
                db.table_mut(&batch.table)
                    .map_err(CoreError::Engine)?
                    .apply_encoded_updates(&batch.inserts, &batch.deletes)
                    .map_err(CoreError::Engine)?;
            }
            db.set_epoch(sealed.epoch);
        }
        self.exec
            .append_epoch(sealed.epoch, &segments)
            .map_err(CoreError::Engine)?;

        let touched_tables = UpdateLog::touched_tables(&sealed.batches);
        let mut views_patched = Vec::new();
        for table in &touched_tables {
            let schema = self.exec.schema(table).map_err(CoreError::Engine)?.clone();
            for def in self.synopses.views_over_table(table) {
                match self.config.maintenance {
                    MaintenanceMode::Incremental => {
                        self.synopses
                            .patch_exact(&def.name, &schema, &sealed.batches)?;
                    }
                    MaintenanceMode::FullRebuild => {
                        let rebuilt = self
                            .exec
                            .materialize_histogram(&def)
                            .map_err(CoreError::Engine)?;
                        self.synopses.set_exact(&def.name, rebuilt)?;
                    }
                }
                // Runtime patch-vs-rebuild cross-check: any bit divergence
                // is a maintenance bug, so it panics.
                #[cfg(feature = "fallback-equivalence")]
                {
                    let patched = self.synopses.exact_histogram(&def.name)?;
                    let rebuilt = self
                        .exec
                        .materialize_histogram(&def)
                        .map_err(CoreError::Engine)?;
                    assert_eq!(
                        patched, rebuilt,
                        "incremental patch diverged from full rebuild for {} at epoch {}",
                        def.name, sealed.epoch
                    );
                }
                views_patched.push(def.name.clone());
            }
        }
        let synopses_invalidated =
            self.synopses
                .apply_epoch(sealed.epoch, &views_patched, self.config.epoch_policy);
        Ok(EpochReport {
            epoch: sealed.epoch,
            batches: sealed.batches.len(),
            rows: sealed.batches.iter().map(EncodedBatch::len).sum(),
            views_patched,
            synopses_invalidated,
        })
    }

    /// Re-enqueues one journalled update batch during recovery (no
    /// recorder echo — attach the recorder only after replay). Validates
    /// the target table and row arity; cell values were validated before
    /// the frame was written and are protected by its checksum.
    pub fn replay_update(&self, batch: EncodedBatch) -> Result<()> {
        let db = self.db.read().expect("db lock poisoned");
        let table = db.table(&batch.table).map_err(CoreError::Engine)?;
        let arity = table.schema().arity();
        for row in batch.inserts.iter().chain(&batch.deletes) {
            if row.len() != arity {
                return Err(CoreError::Engine(EngineError::ArityMismatch {
                    expected: arity,
                    found: row.len(),
                }));
            }
        }
        drop(db);
        self.lock_delta().replay_pending(batch);
        Ok(())
    }

    /// Re-applies one journalled epoch seal during recovery: drains the
    /// replayed pending batches with `seq < through_seq` into the epoch
    /// and applies it exactly as the live seal did — deterministic
    /// integer work, so the recovered segments and histograms are
    /// bit-identical to the pre-crash state.
    pub fn replay_epoch_seal(&self, epoch: u64, through_seq: u64) -> Result<()> {
        let sealed = {
            let mut log = self.lock_delta();
            if epoch != log.current_epoch + 1 {
                return Err(CoreError::Storage(
                    crate::error::StorageError::IncompatibleState(format!(
                        "epoch seal {epoch} does not follow current epoch {}",
                        log.current_epoch
                    )),
                ));
            }
            let stragglers: Vec<EncodedBatch> = log
                .pending
                .iter()
                .filter(|b| b.seq >= through_seq)
                .cloned()
                .collect();
            log.pending.retain(|b| b.seq < through_seq);
            let mut sealed = log.seal();
            // Keep the journalled watermark (seal() stamps next_seq, which
            // may exceed it when stragglers were already replayed).
            sealed.through_seq = through_seq;
            if let Some(last) = log.sealed.last_mut() {
                last.through_seq = through_seq;
            }
            log.pending = stragglers;
            sealed
        };
        self.apply_sealed(&sealed)?;
        Ok(())
    }

    // ----- durable recovery support (see `crate::recorder`) -----

    /// Validates that a durable record references a registered analyst and
    /// view of *this* system.
    fn check_replay_target(&self, analyst: AnalystId, view: &str) -> Result<()> {
        self.registry.get(analyst)?;
        if self.catalog.view(view).is_err() {
            return Err(CoreError::Storage(
                crate::error::StorageError::IncompatibleState(format!(
                    "durable record references unregistered view {view}"
                )),
            ));
        }
        Ok(())
    }

    /// Re-applies one committed charge from the write-ahead ledger during
    /// recovery: sets the provenance entry to its post-commit value and
    /// re-records the ledger charge. Does **not** echo into the recorder —
    /// attach the recorder only after replay.
    pub fn replay_commit(&self, record: &CommitRecord) -> Result<()> {
        self.check_replay_target(record.analyst, &record.view)?;
        {
            let mut provenance = self.lock_provenance();
            provenance.set_entry(record.analyst, &record.view, record.new_entry);
            self.observe_budget(&provenance, record.analyst, &record.view);
        }
        self.lock_ledger().record(
            record.analyst,
            Budget::from_parts(Epsilon::unchecked(record.charged), self.config.delta),
            record.mechanism,
        );
        self.commit_seq.fetch_max(record.seq + 1, Ordering::SeqCst);
        Ok(())
    }

    /// Re-applies one journalled data access to the tight accountant during
    /// recovery (and to the in-memory access history, so a later snapshot
    /// carries it forward).
    pub fn replay_access(&self, record: &AccessRecord) {
        let mut accountant = self
            .tight_accountant
            .lock()
            .expect("accountant lock poisoned");
        self.access_history
            .lock()
            .expect("access history poisoned")
            .push(*record);
        accountant.record(
            Budget::from_parts(Epsilon::unchecked(record.epsilon), self.config.delta),
            record.sigma,
            record.sensitivity,
        );
    }

    /// Freezes the commit pipeline: blocks until no submission is between
    /// its write-ahead append and its last in-memory apply, and holds new
    /// commits off until the guard drops. Compaction holds this across
    /// snapshot *and* ledger truncation, so a commit can never land in the
    /// gap and be silently truncated away.
    #[must_use]
    pub fn freeze_commits(&self) -> CommitFreeze<'_> {
        CommitFreeze {
            _guard: self.commit_gate.write().expect("commit gate poisoned"),
        }
    }

    /// Caps the sealed delta history carried by future snapshots: merges
    /// every sealed epoch except the most recent `retain` into one
    /// baseline epoch (see
    /// [`dprov_delta::UpdateLog::compact_history`] — replaying the
    /// baseline is bit-identical to replaying the epochs it replaced).
    /// Returns the number of epochs merged away. Run it right before a
    /// snapshot export; it never changes the current epoch, the pending
    /// set or any answer.
    pub fn compact_delta_history(&self, retain: u64) -> usize {
        let mut delta = self.lock_delta();
        let watermark = delta.current_epoch.saturating_sub(retain);
        delta.compact_history(watermark)
    }

    /// Exports a consistent snapshot of every durably-relevant piece of
    /// state. Acquires the commit freeze internally; use
    /// [`Self::export_durable_state_frozen`] when the caller already holds
    /// it (the lock is not re-entrant).
    #[must_use]
    pub fn export_durable_state(&self) -> CoreState {
        let freeze = self.freeze_commits();
        self.export_durable_state_frozen(&freeze)
    }

    /// Exports the durable state under a caller-held commit freeze: every
    /// charge whose write-ahead record precedes the freeze is fully
    /// reflected in the result, which is what makes truncating the ledger
    /// while still holding the freeze safe.
    #[must_use]
    pub fn export_durable_state_frozen(&self, _freeze: &CommitFreeze<'_>) -> CoreState {
        let provenance = self.lock_provenance();
        let mut entries = Vec::new();
        for analyst in self.registry.ids() {
            for view in provenance.view_names() {
                let epsilon = provenance.entry(analyst, view);
                if epsilon != 0.0 {
                    entries.push(ProvenanceEntryState {
                        analyst,
                        view: view.clone(),
                        epsilon,
                    });
                }
            }
        }
        let ledger = self.lock_ledger();
        CoreState {
            next_seq: self.commit_seq.load(Ordering::SeqCst),
            provenance: entries,
            ledger: ledger.export_entries(),
            ledger_releases: ledger.releases() as u64,
            accesses: self
                .access_history
                .lock()
                .expect("access history poisoned")
                .clone(),
            synopses: self.synopses.export_cache(),
            deltas: self.lock_delta().clone(),
        }
    }

    /// Restores a snapshot produced by [`Self::export_durable_state`] into
    /// a freshly constructed system (same database, catalog, registry and
    /// configuration). Call *before* attaching the recorder and before
    /// replaying the write-ahead suffix.
    pub fn import_durable_state(&self, state: &CoreState) -> Result<()> {
        for entry in &state.provenance {
            self.check_replay_target(entry.analyst, &entry.view)?;
        }
        // Re-apply the sealed epoch history first (deterministic integer
        // work — segments and patched histograms land bit-identical),
        // then restore the log verbatim (pending batches included) and
        // finally overlay the snapshot's synopsis cache, which reflects
        // the post-seal state.
        for sealed in &state.deltas.sealed {
            self.apply_sealed(sealed)?;
        }
        *self.lock_delta() = state.deltas.clone();
        {
            let mut provenance = self.lock_provenance();
            for entry in &state.provenance {
                provenance.set_entry(entry.analyst, &entry.view, entry.epsilon);
            }
        }
        *self.lock_ledger() =
            MultiAnalystLedger::from_entries(&state.ledger, state.ledger_releases as usize);
        {
            let mut accountant = self
                .tight_accountant
                .lock()
                .expect("accountant lock poisoned");
            let mut history = self.access_history.lock().expect("access history poisoned");
            for access in &state.accesses {
                history.push(*access);
                accountant.record(
                    Budget::from_parts(Epsilon::unchecked(access.epsilon), self.config.delta),
                    access.sigma,
                    access.sensitivity,
                );
            }
        }
        self.synopses.import_cache(&state.synopses)?;
        self.commit_seq.fetch_max(state.next_seq, Ordering::SeqCst);
        // Re-seed the budget gauges from the imported provenance state.
        self.publish_budget_matrix();
        Ok(())
    }
}

impl QueryProcessor for DProvDb {
    fn name(&self) -> String {
        self.mechanism.label().to_owned()
    }

    fn submit(&mut self, analyst: AnalystId, request: &QueryRequest) -> Result<QueryOutcome> {
        DProvDb::submit(self, analyst, request)
    }

    fn cumulative_epsilon(&self) -> f64 {
        let provenance = self.lock_provenance();
        match self.mechanism {
            MechanismKind::Vanilla => provenance.total_sum(),
            MechanismKind::AdditiveGaussian => provenance.total_of_column_maxes(),
        }
    }

    fn analyst_epsilon(&self, analyst: AnalystId) -> f64 {
        self.lock_ledger().loss_to(analyst).epsilon.value()
    }

    fn num_analysts(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::datagen::adult::adult_database;
    use dprov_engine::query::Query;

    fn build(mechanism: MechanismKind, epsilon: f64) -> DProvDb {
        let db = adult_database(2_000, 1);
        let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
        let mut registry = AnalystRegistry::new();
        registry.register("external", 1).unwrap();
        registry.register("internal", 4).unwrap();
        let config = SystemConfig::new(epsilon).unwrap().with_seed(7);
        DProvDb::new(db, catalog, registry, config, mechanism).unwrap()
    }

    fn range_request(lo: i64, hi: i64, variance: f64) -> QueryRequest {
        QueryRequest::with_accuracy(Query::range_count("adult", "age", lo, hi), variance)
    }

    #[test]
    fn setup_builds_provenance_rows_and_columns() {
        let system = build(MechanismKind::AdditiveGaussian, 2.0);
        assert_eq!(system.provenance().num_analysts(), 2);
        assert_eq!(system.provenance().num_views(), 13);
        // Def. 11 (l_max over registered analysts): internal analyst can use
        // the full table budget.
        assert!((system.provenance().row_constraint(AnalystId(1)) - 2.0).abs() < 1e-12);
        assert!((system.provenance().row_constraint(AnalystId(0)) - 0.5).abs() < 1e-12);
        assert!(system.stats().setup_time > Duration::ZERO);
    }

    #[test]
    fn batched_true_answers_share_one_scan_and_match_per_query() {
        let system = build(MechanismKind::Vanilla, 2.0);
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::range_count("adult", "age", 20 + i, 40 + i))
            .collect();
        let per_query: Vec<f64> = queries
            .iter()
            .map(|q| system.true_answer(q).unwrap())
            .collect();
        let scans_before = system.exec_stats().scans;
        let batched = system.true_answers(&queries).unwrap();
        assert_eq!(
            system.exec_stats().scans,
            scans_before + 1,
            "8 same-table queries must share one scan"
        );
        for (a, b) in batched.iter().zip(&per_query) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Setup materialised the whole 13-view catalog in one table pass.
        assert_eq!(system.exec_stats().histogram_scans, 1);
        assert_eq!(system.exec_stats().histograms, 13);
    }

    #[test]
    fn answered_query_is_close_to_truth_and_charges_budget() {
        let mut system = build(MechanismKind::AdditiveGaussian, 4.0);
        let request = range_request(30, 39, 400.0);
        let outcome = system.submit(AnalystId(1), &request).unwrap();
        let answered = outcome.answered().expect("should be answered");
        let truth = system.true_answer(&request.query).unwrap();
        assert!(answered.noise_variance <= 400.0 * 1.0001);
        assert!(
            (answered.value - truth).abs() < 150.0,
            "noisy {} vs truth {truth}",
            answered.value
        );
        assert!(answered.epsilon_charged > 0.0);
        assert!(!answered.from_cache);
        assert_eq!(system.stats().answered, 1);
        assert!(system.cumulative_epsilon() > 0.0);
    }

    #[test]
    fn repeated_query_hits_the_cache_for_both_mechanisms() {
        for mech in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
            let mut system = build(mech, 4.0);
            let request = range_request(30, 39, 400.0);
            let first = system.submit(AnalystId(1), &request).unwrap();
            let consumed_after_first = system.cumulative_epsilon();
            let second = system.submit(AnalystId(1), &request).unwrap();
            assert!(first.is_answered() && second.is_answered());
            let second = second.answered().unwrap();
            assert!(second.from_cache, "{mech}: second query should be cached");
            assert_eq!(second.epsilon_charged, 0.0);
            assert_eq!(system.cumulative_epsilon(), consumed_after_first);
            assert_eq!(system.stats().cache_hits, 1);
        }
    }

    #[test]
    fn similar_queries_from_two_analysts_are_cheaper_under_additive() {
        // The motivating scenario: two analysts ask the same query. Vanilla
        // pays twice; additive GM pays only the maximum.
        let request = range_request(25, 44, 2_000.0);
        let mut vanilla = build(MechanismKind::Vanilla, 8.0);
        vanilla.submit(AnalystId(0), &request).unwrap();
        vanilla.submit(AnalystId(1), &request).unwrap();
        let mut additive = build(MechanismKind::AdditiveGaussian, 8.0);
        additive.submit(AnalystId(0), &request).unwrap();
        additive.submit(AnalystId(1), &request).unwrap();
        assert!(
            additive.cumulative_epsilon() < vanilla.cumulative_epsilon() * 0.75,
            "additive {} should be well below vanilla {}",
            additive.cumulative_epsilon(),
            vanilla.cumulative_epsilon()
        );
    }

    #[test]
    fn rejection_when_accuracy_needs_more_than_the_table_budget() {
        let mut system = build(MechanismKind::AdditiveGaussian, 0.1);
        // Essentially exact counts cannot be bought with epsilon <= 0.1.
        let request = range_request(30, 39, 1e-4);
        let outcome = system.submit(AnalystId(1), &request).unwrap();
        assert_eq!(
            outcome,
            QueryOutcome::Rejected {
                reason: RejectReason::AccuracyUnreachable
            }
        );
        assert_eq!(system.stats().rejected, 1);
        assert_eq!(system.cumulative_epsilon(), 0.0);
    }

    #[test]
    fn low_privilege_analyst_hits_their_row_constraint_first() {
        let mut system = build(MechanismKind::AdditiveGaussian, 1.0);
        // Analyst 0 has privilege 1 => constraint 0.25. A query needing an
        // epsilon between 0.25 and 1.0 must be rejected for them but
        // accepted for the high-privilege analyst.
        let request = range_request(20, 60, 10_000.0);
        let low = system.submit(AnalystId(0), &request).unwrap();
        assert!(matches!(
            low,
            QueryOutcome::Rejected {
                reason: RejectReason::AnalystConstraint { .. }
            }
        ));
        let high = system.submit(AnalystId(1), &request).unwrap();
        assert!(high.is_answered());
    }

    #[test]
    fn unanswerable_and_unknown_analyst_paths() {
        let mut system = build(MechanismKind::Vanilla, 2.0);
        // Two attributes but only 1-way views: not answerable.
        let q = Query::count("adult")
            .filter(dprov_engine::expr::Predicate::range("age", 20, 30))
            .filter(dprov_engine::expr::Predicate::equals("sex", "Female"));
        let outcome = system
            .submit(AnalystId(0), &QueryRequest::with_accuracy(q, 100.0))
            .unwrap();
        assert_eq!(
            outcome,
            QueryOutcome::Rejected {
                reason: RejectReason::NotAnswerable
            }
        );
        assert!(system
            .submit(AnalystId(9), &range_request(20, 30, 100.0))
            .is_err());
    }

    #[test]
    fn privacy_oriented_mode_charges_the_requested_epsilon() {
        let mut system = build(MechanismKind::AdditiveGaussian, 2.0);
        let request = QueryRequest::with_privacy(Query::range_count("adult", "age", 30, 39), 0.5);
        let outcome = system.submit(AnalystId(1), &request).unwrap();
        let answered = outcome.answered().unwrap();
        assert!((answered.epsilon_charged - 0.5).abs() < 1e-9);
        assert!((system.analyst_epsilon(AnalystId(1)) - 0.5).abs() < 1e-9);
        // A second analyst asking with a smaller budget on the same view
        // does not move the global synopsis, so the collusion bound stays.
        let request2 = QueryRequest::with_privacy(Query::range_count("adult", "age", 35, 44), 0.3);
        system.submit(AnalystId(0), &request2).unwrap();
        assert!((system.cumulative_epsilon() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn additive_collusion_bound_is_the_max_vanilla_is_the_sum() {
        let request = range_request(25, 44, 300.0);
        let mut vanilla = build(MechanismKind::Vanilla, 8.0);
        let mut additive = build(MechanismKind::AdditiveGaussian, 8.0);
        for system in [&mut vanilla, &mut additive] {
            system.submit(AnalystId(0), &request).unwrap();
            system.submit(AnalystId(1), &request).unwrap();
        }
        let eps_v0 = vanilla.analyst_epsilon(AnalystId(0));
        let eps_v1 = vanilla.analyst_epsilon(AnalystId(1));
        assert!((vanilla.cumulative_epsilon() - (eps_v0 + eps_v1)).abs() < 1e-9);

        let per_analyst_max = additive
            .analyst_epsilon(AnalystId(0))
            .max(additive.analyst_epsilon(AnalystId(1)));
        assert!((additive.cumulative_epsilon() - per_analyst_max).abs() < 1e-9);
    }

    #[test]
    fn fairness_outcomes_reflect_answered_counts() {
        let mut system = build(MechanismKind::AdditiveGaussian, 4.0);
        let request = range_request(30, 39, 500.0);
        system.submit(AnalystId(1), &request).unwrap();
        system
            .submit(AnalystId(1), &range_request(40, 49, 500.0))
            .unwrap();
        system
            .submit(AnalystId(0), &range_request(50, 59, 2_000.0))
            .unwrap();
        let outcomes = system.fairness_outcomes();
        assert_eq!(outcomes[0].answered, 1);
        assert_eq!(outcomes[1].answered, 2);
        assert!(system.ndcfg() > 0.0);
        assert_eq!(system.answered_per_analyst(), &[1, 2]);
    }

    #[test]
    fn accuracy_guarantee_holds_across_many_requests() {
        // Fig. 9(a): the delivered noise variance never exceeds the request.
        let mut system = build(MechanismKind::AdditiveGaussian, 6.4);
        let mut rng = DpRng::seed_from_u64(5);
        for i in 0..40 {
            let lo = 17 + (i % 30) as i64;
            let hi = lo + 5 + (i % 7) as i64;
            let variance = 200.0 + rng.uniform() * 2_000.0;
            let analyst = AnalystId((i % 2) as usize);
            let request =
                QueryRequest::with_accuracy(Query::range_count("adult", "age", lo, hi), variance);
            if let QueryOutcome::Answered(a) = system.submit(analyst, &request).unwrap() {
                assert!(
                    a.noise_variance <= variance * (1.0 + 1e-6),
                    "delivered {} > requested {variance}",
                    a.noise_variance
                );
            }
        }
    }

    #[test]
    fn tight_accounting_tracks_data_accesses() {
        use dprov_dp::accountant::CompositionMethod;
        let db = adult_database(2_000, 1);
        let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
        let mut registry = AnalystRegistry::new();
        registry.register("external", 1).unwrap();
        registry.register("internal", 4).unwrap();
        let build = |method| {
            let config = SystemConfig::new(6.4)
                .unwrap()
                .with_seed(7)
                .with_composition(method);
            DProvDb::new(
                db.clone(),
                catalog.clone(),
                registry.clone(),
                config,
                MechanismKind::AdditiveGaussian,
            )
            .unwrap()
        };
        let requests: Vec<QueryRequest> = (0..20)
            .map(|i| {
                QueryRequest::with_accuracy(
                    Query::range_count("adult", "age", 17 + i, 30 + i),
                    (2_000 - i * 90) as f64,
                )
            })
            .collect();

        let mut sequential = build(CompositionMethod::Sequential);
        let mut zcdp = build(CompositionMethod::Zcdp);
        for request in &requests {
            for analyst in [AnalystId(0), AnalystId(1)] {
                let _ = sequential.submit(analyst, request).unwrap();
                let _ = zcdp.submit(analyst, request).unwrap();
            }
        }
        let seq_total = sequential.tight_accounting().epsilon.value();
        let zcdp_total = zcdp.tight_accounting().epsilon.value();
        assert!(seq_total > 0.0);
        // Sequential tight accounting coincides with the additive
        // provenance accounting (only global releases are data accesses).
        assert!((seq_total - sequential.cumulative_epsilon()).abs() < 1e-6);
        // zCDP composition over many small releases is no looser than
        // twice the sequential bound (it is typically tighter; the exact
        // factor depends on the release sizes).
        assert!(zcdp_total <= 2.0 * seq_total + 1e-9);
    }

    #[test]
    fn delta_larger_than_inverse_dataset_size_is_rejected_at_setup() {
        let db = adult_database(2_000, 1);
        let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
        let mut registry = AnalystRegistry::new();
        registry.register("a", 1).unwrap();
        let config = SystemConfig::new(1.0).unwrap().with_delta(1e-2).unwrap();
        assert!(DProvDb::new(db, catalog, registry, config, MechanismKind::Vanilla).is_err());
    }

    /// An in-memory recorder capturing the write-ahead stream, for testing
    /// the commit hook without the storage crate.
    #[derive(Default)]
    struct MemoryRecorder {
        commits: Mutex<Vec<CommitRecord>>,
        accesses: Mutex<Vec<AccessRecord>>,
        rollbacks: Mutex<Vec<u64>>,
        updates: Mutex<Vec<EncodedBatch>>,
        seals: Mutex<Vec<(u64, u64)>>,
    }

    impl Recorder for MemoryRecorder {
        fn record_commit(
            &self,
            record: &CommitRecord,
        ) -> std::result::Result<(), crate::error::StorageError> {
            self.commits.lock().unwrap().push(record.clone());
            Ok(())
        }
        fn record_access(
            &self,
            record: &AccessRecord,
        ) -> std::result::Result<(), crate::error::StorageError> {
            self.accesses.lock().unwrap().push(*record);
            Ok(())
        }
        fn record_rollback(&self, seq: u64) -> std::result::Result<(), crate::error::StorageError> {
            self.rollbacks.lock().unwrap().push(seq);
            Ok(())
        }
        fn record_update(
            &self,
            batch: &EncodedBatch,
        ) -> std::result::Result<(), crate::error::StorageError> {
            self.updates.lock().unwrap().push(batch.clone());
            Ok(())
        }
        fn record_epoch_seal(
            &self,
            epoch: u64,
            through_seq: u64,
        ) -> std::result::Result<(), crate::error::StorageError> {
            self.seals.lock().unwrap().push((epoch, through_seq));
            Ok(())
        }
    }

    #[test]
    fn recorder_sees_every_commit_and_replay_reconstructs_budget_state() {
        for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
            let mut live = build(mechanism, 6.0);
            let recorder = Arc::new(MemoryRecorder::default());
            live.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
            for i in 0..6 {
                let analyst = AnalystId(i % 2);
                let _ = live
                    .submit(analyst, &range_request(20 + i as i64, 45, 600.0 + i as f64))
                    .unwrap();
            }
            let commits = recorder.commits.lock().unwrap().clone();
            let accesses = recorder.accesses.lock().unwrap().clone();
            assert!(!commits.is_empty(), "{mechanism}: no commits recorded");
            assert!(recorder.rollbacks.lock().unwrap().is_empty());
            // Sequence numbers are contiguous from zero in commit order.
            for (i, c) in commits.iter().enumerate() {
                assert_eq!(c.seq, i as u64);
                assert_eq!(c.mechanism, mechanism);
            }

            // Replay the stream into a fresh system: exact budget state.
            let fresh = build(mechanism, 6.0);
            for c in &commits {
                fresh.replay_commit(c).unwrap();
            }
            for a in &accesses {
                fresh.replay_access(a);
            }
            let live_prov = live.provenance();
            let fresh_prov = fresh.provenance();
            for analyst in [AnalystId(0), AnalystId(1)] {
                assert_eq!(
                    live_prov.row_total(analyst),
                    fresh_prov.row_total(analyst),
                    "{mechanism}: replayed row total differs"
                );
                assert_eq!(
                    live.ledger().loss_to(analyst).epsilon.value(),
                    fresh.ledger().loss_to(analyst).epsilon.value(),
                );
                assert_eq!(
                    live.ledger()
                        .loss_to_via(analyst, mechanism)
                        .epsilon
                        .value(),
                    fresh
                        .ledger()
                        .loss_to_via(analyst, mechanism)
                        .epsilon
                        .value(),
                );
            }
            assert_eq!(
                live.tight_accounting().epsilon.value(),
                fresh.tight_accounting().epsilon.value(),
                "{mechanism}: replayed tight accounting differs"
            );
            assert_eq!(fresh.next_commit_seq(), live.next_commit_seq());
        }
    }

    #[test]
    fn export_import_round_trips_durable_state() {
        let mut live = build(MechanismKind::AdditiveGaussian, 6.0);
        let recorder = Arc::new(MemoryRecorder::default());
        live.set_recorder(recorder as Arc<dyn Recorder>);
        for i in 0..5 {
            let _ = live
                .submit(AnalystId(i % 2), &range_request(25 + i as i64, 50, 700.0))
                .unwrap();
        }
        let state = live.export_durable_state();
        assert!(state.next_seq > 0);
        assert!(!state.provenance.is_empty());
        assert!(!state.synopses.is_empty());

        let fresh = build(MechanismKind::AdditiveGaussian, 6.0);
        fresh.import_durable_state(&state).unwrap();
        assert_eq!(fresh.export_durable_state(), state);
        // Budget state is bit-exact.
        for analyst in [AnalystId(0), AnalystId(1)] {
            assert_eq!(
                live.provenance().row_total(analyst),
                fresh.provenance().row_total(analyst)
            );
        }
        assert_eq!(
            live.tight_accounting().epsilon.value(),
            fresh.tight_accounting().epsilon.value()
        );
    }

    #[test]
    fn failing_recorder_aborts_the_submission_without_spending() {
        struct DeadRecorder;
        impl Recorder for DeadRecorder {
            fn record_commit(
                &self,
                _: &CommitRecord,
            ) -> std::result::Result<(), crate::error::StorageError> {
                Err(crate::error::StorageError::Unavailable("killed".into()))
            }
            fn record_access(
                &self,
                _: &AccessRecord,
            ) -> std::result::Result<(), crate::error::StorageError> {
                Err(crate::error::StorageError::Unavailable("killed".into()))
            }
            fn record_rollback(
                &self,
                _: u64,
            ) -> std::result::Result<(), crate::error::StorageError> {
                Err(crate::error::StorageError::Unavailable("killed".into()))
            }
        }
        for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
            let mut system = build(mechanism, 4.0);
            system.set_recorder(Arc::new(DeadRecorder));
            let outcome = system.submit(AnalystId(1), &range_request(30, 39, 400.0));
            assert!(
                matches!(outcome, Err(CoreError::Storage(_))),
                "{mechanism}: expected storage error"
            );
            // Nothing was spent: the in-memory commit never became visible.
            assert_eq!(system.cumulative_epsilon(), 0.0);
            assert_eq!(system.ledger().releases(), 0);
        }
    }

    fn age_row(age: i64) -> Vec<dprov_engine::value::Value> {
        use dprov_engine::value::Value;
        // A full adult row with the age set; other attributes fixed to
        // valid domain values (schema order: age, workclass, education,
        // education_num, marital_status, occupation, relationship, race,
        // sex, capital_gain, capital_loss, hours_per_week, income).
        vec![
            Value::Int(age),
            Value::text("Private"),
            Value::text("HS-grad"),
            Value::Int(9),
            Value::text("Never-married"),
            Value::text("Sales"),
            Value::text("Not-in-family"),
            Value::text("White"),
            Value::text("Male"),
            Value::Int(0),
            Value::Int(0),
            Value::Int(40),
            Value::text("<=50K"),
        ]
    }

    fn adult_insert(ages: &[i64]) -> UpdateBatch {
        UpdateBatch::insert("adult", ages.iter().map(|&a| age_row(a)).collect())
    }

    #[test]
    fn updates_seal_into_epochs_and_change_answers_exactly() {
        let system = build(MechanismKind::Vanilla, 4.0);
        let q = Query::range_count("adult", "age", 30, 30);
        let before = system.true_answer(&q).unwrap();
        assert_eq!(system.current_epoch(), 0);

        let seq = system.apply_update(&adult_insert(&[30, 30, 30])).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(system.pending_updates(), 1);
        // Pending updates are invisible until the seal.
        assert_eq!(system.true_answer(&q).unwrap(), before);

        let report = system.seal_epoch().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.batches, 1);
        assert_eq!(report.rows, 3);
        assert!(report.views_patched.contains(&"adult.age".to_owned()));
        assert_eq!(system.current_epoch(), 1);
        assert_eq!(system.pending_updates(), 0);
        assert_eq!(system.true_answer(&q).unwrap(), before + 3.0);

        // Deleting one of the inserted rows takes effect at the next seal.
        system
            .apply_update(&UpdateBatch::delete("adult", vec![age_row(30)]))
            .unwrap();
        let report = system.seal_epoch().unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(system.true_answer(&q).unwrap(), before + 2.0);
        // The exact histogram moved with the data (patched, not stale).
        let (answers, epoch) = system.true_answers_epoch(&[q]).unwrap();
        assert_eq!(answers[0], before + 2.0);
        assert_eq!(epoch, 2);
    }

    #[test]
    fn invalid_updates_are_refused_without_side_effects() {
        let system = build(MechanismKind::Vanilla, 4.0);
        use dprov_engine::value::Value;
        // Out-of-domain age.
        assert!(matches!(
            system.apply_update(&adult_insert(&[5])),
            Err(CoreError::Delta(dprov_delta::DeltaError::Engine(_)))
        ));
        // Delete of a row that (essentially surely) does not exist: a
        // jointly near-impossible attribute combination.
        let mut ghost = age_row(89);
        ghost[1] = Value::text("Never-worked");
        ghost[5] = Value::text("Armed-Forces");
        ghost[9] = Value::Int(50_000);
        assert!(matches!(
            system.apply_update(&UpdateBatch::delete("adult", vec![ghost])),
            Err(CoreError::Delta(dprov_delta::DeltaError::MissingRow { .. }))
        ));
        // Empty batches are refused.
        assert!(matches!(
            system.apply_update(&UpdateBatch::insert("adult", Vec::new())),
            Err(CoreError::Delta(dprov_delta::DeltaError::EmptyBatch))
        ));
        assert_eq!(system.pending_updates(), 0);
        assert_eq!(system.current_epoch(), 0);
    }

    #[test]
    fn renoise_policy_invalidates_and_recharges_while_carry_forward_serves_stale() {
        use dprov_delta::EpochPolicy;
        for mech in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
            // Re-noise: a seal touching the view invalidates the cached
            // synopsis; the same query afterwards is NOT a cache hit and
            // charges fresh budget through the admission path.
            let system = build(mech, 8.0);
            let request = range_request(30, 39, 400.0);
            let first = system.submit_shared(AnalystId(1), &request).unwrap();
            assert_eq!(first.answered().unwrap().epoch, 0);
            let spent_before = system.cumulative_epsilon();
            let accessed_before = system.tight_accounting().epsilon.value();
            system.apply_update(&adult_insert(&[35])).unwrap();
            let report = system.seal_epoch().unwrap();
            assert!(
                report.synopses_invalidated > 0,
                "{mech}: nothing invalidated"
            );
            let second = system.submit_shared(AnalystId(1), &request).unwrap();
            let answered = second.answered().unwrap();
            assert!(!answered.from_cache, "{mech}: stale cache served");
            assert_eq!(answered.epoch, 1);
            match mech {
                // Vanilla charges every fresh synopsis to the analyst.
                MechanismKind::Vanilla => assert!(
                    system.cumulative_epsilon() > spent_before,
                    "vanilla: re-release was not charged"
                ),
                // Additive prices the re-release through the provenance
                // formula min(ε_global, P+ε) − P: an analyst whose entry
                // already covers the target pays no *incremental* charge,
                // but the re-grown global synopsis is a genuinely new data
                // access and must appear in the tight accounting.
                MechanismKind::AdditiveGaussian => assert!(
                    system.tight_accounting().epsilon.value() > accessed_before,
                    "additive: re-released global synopsis was not recorded as a data access"
                ),
            }

            // Carry-forward: the stale synopsis keeps serving within the
            // bound, for free, tagged with its release epoch.
            let db = adult_database(2_000, 1);
            let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
            let mut registry = AnalystRegistry::new();
            registry.register("external", 1).unwrap();
            registry.register("internal", 4).unwrap();
            let config = SystemConfig::new(8.0)
                .unwrap()
                .with_seed(7)
                .with_epoch_policy(EpochPolicy::CarryForward { max_staleness: 2 });
            let system = DProvDb::new(db, catalog, registry, config, mech).unwrap();
            let first = system.submit_shared(AnalystId(1), &request).unwrap();
            assert!(first.is_answered());
            let spent_before = system.cumulative_epsilon();
            system.apply_update(&adult_insert(&[35])).unwrap();
            let report = system.seal_epoch().unwrap();
            assert_eq!(report.synopses_invalidated, 0);
            let second = system.submit_shared(AnalystId(1), &request).unwrap();
            let answered = second.answered().unwrap();
            assert!(answered.from_cache, "{mech}: carry-forward should serve");
            assert_eq!(answered.epoch, 0, "{mech}: stale answer tags its epoch");
            assert_eq!(system.cumulative_epsilon(), spent_before);

            // Two more touching seals exceed max_staleness=2: invalidated.
            for _ in 0..2 {
                system.apply_update(&adult_insert(&[35])).unwrap();
                system.seal_epoch().unwrap();
            }
            let third = system.submit_shared(AnalystId(1), &request).unwrap();
            assert!(
                !third.answered().unwrap().from_cache,
                "{mech}: staleness bound not enforced"
            );
            assert_eq!(third.answered().unwrap().epoch, 3);
        }
    }

    #[test]
    fn incremental_and_full_rebuild_maintenance_agree_bit_for_bit() {
        use dprov_delta::MaintenanceMode;
        let build_with = |mode| {
            let db = adult_database(1_500, 3);
            let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
            let mut registry = AnalystRegistry::new();
            registry.register("external", 1).unwrap();
            registry.register("internal", 4).unwrap();
            let config = SystemConfig::new(8.0)
                .unwrap()
                .with_seed(11)
                .with_maintenance(mode);
            DProvDb::new(
                db,
                catalog,
                registry,
                config,
                MechanismKind::AdditiveGaussian,
            )
            .unwrap()
        };
        let incremental = build_with(MaintenanceMode::Incremental);
        let rebuild = build_with(MaintenanceMode::FullRebuild);
        let mut rng_a = DpRng::for_stream(11, 1);
        let mut rng_b = DpRng::for_stream(11, 1);
        for round in 0..3 {
            for system in [&incremental, &rebuild] {
                system
                    .apply_update(&adult_insert(&[20 + round, 30 + round]))
                    .unwrap();
                system.seal_epoch().unwrap();
            }
            let request = range_request(25, 45, 500.0 + round as f64);
            let a = incremental
                .submit_with_rng(AnalystId(1), &request, &mut rng_a)
                .unwrap();
            let b = rebuild
                .submit_with_rng(AnalystId(1), &request, &mut rng_b)
                .unwrap();
            let (a, b) = (a.answered().unwrap(), b.answered().unwrap());
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "round {round}");
            assert_eq!(a.epsilon_charged.to_bits(), b.epsilon_charged.to_bits());
            assert_eq!(a.epoch, b.epoch);
        }
        assert_eq!(
            incremental.cumulative_epsilon().to_bits(),
            rebuild.cumulative_epsilon().to_bits()
        );
    }

    #[test]
    fn recorder_journals_updates_and_seals_and_replay_reconstructs_epochs() {
        let mut live = build(MechanismKind::Vanilla, 6.0);
        let recorder = Arc::new(MemoryRecorder::default());
        live.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
        live.apply_update(&adult_insert(&[30, 31])).unwrap();
        live.seal_epoch().unwrap();
        live.apply_update(&adult_insert(&[32])).unwrap();
        // NOT sealed: pending at "crash" time.
        let updates = recorder.updates.lock().unwrap().clone();
        let seals = recorder.seals.lock().unwrap().clone();
        assert_eq!(updates.len(), 2);
        assert_eq!(seals, vec![(1, 1)]);

        // Replay into a fresh system: WAL order (update, seal, update).
        let fresh = build(MechanismKind::Vanilla, 6.0);
        fresh.replay_update(updates[0].clone()).unwrap();
        fresh.replay_epoch_seal(seals[0].0, seals[0].1).unwrap();
        fresh.replay_update(updates[1].clone()).unwrap();
        assert_eq!(fresh.current_epoch(), 1);
        assert_eq!(fresh.pending_updates(), 1);
        let q = Query::range_count("adult", "age", 30, 32);
        assert_eq!(
            fresh.true_answer(&q).unwrap().to_bits(),
            live.true_answer(&q).unwrap().to_bits(),
            "recovered to the last sealed epoch, pending batch excluded"
        );
        // A second seal applies the recovered pending batch identically.
        live.seal_epoch().unwrap();
        fresh.seal_epoch().unwrap();
        assert_eq!(
            fresh.true_answer(&q).unwrap().to_bits(),
            live.true_answer(&q).unwrap().to_bits()
        );
    }

    #[test]
    fn export_import_round_trips_delta_state() {
        let live = build(MechanismKind::AdditiveGaussian, 6.0);
        live.apply_update(&adult_insert(&[30, 31])).unwrap();
        live.seal_epoch().unwrap();
        let _ = live
            .submit_shared(AnalystId(1), &range_request(25, 45, 700.0))
            .unwrap();
        live.apply_update(&adult_insert(&[33])).unwrap(); // pending
        let state = live.export_durable_state();
        assert_eq!(state.deltas.current_epoch, 1);
        assert_eq!(state.deltas.pending.len(), 1);

        let fresh = build(MechanismKind::AdditiveGaussian, 6.0);
        fresh.import_durable_state(&state).unwrap();
        assert_eq!(fresh.current_epoch(), 1);
        assert_eq!(fresh.pending_updates(), 1);
        assert_eq!(fresh.export_durable_state(), state);
        let q = Query::range_count("adult", "age", 30, 33);
        assert_eq!(
            fresh.true_answer(&q).unwrap().to_bits(),
            live.true_answer(&q).unwrap().to_bits()
        );
    }

    #[test]
    fn concurrent_submissions_never_overspend_any_constraint() {
        // A miniature of the server stress test, at the core layer: many
        // threads hammer the same view through `submit_with_rng` and the
        // provenance table must end inside every constraint.
        use std::sync::Arc;
        for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
            let db = adult_database(1_000, 1);
            let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
            let mut registry = AnalystRegistry::new();
            for i in 0..4 {
                registry
                    .register(&format!("a{i}"), [1, 2, 4, 8][i % 4])
                    .unwrap();
            }
            let config = SystemConfig::new(1.6).unwrap().with_seed(3);
            let system = Arc::new(DProvDb::new(db, catalog, registry, config, mechanism).unwrap());
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let system = Arc::clone(&system);
                handles.push(std::thread::spawn(move || {
                    let mut rng = DpRng::for_stream(3, t);
                    for i in 0..25 {
                        let variance = 400.0 * 0.9f64.powi(i);
                        let request = QueryRequest::with_accuracy(
                            Query::range_count("adult", "age", 25, 55),
                            variance,
                        );
                        let analyst = AnalystId((t as usize) % 4);
                        let _ = system.submit_with_rng(analyst, &request, &mut rng).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let provenance = system.provenance();
            for a in 0..4 {
                let analyst = AnalystId(a);
                assert!(
                    provenance.row_total(analyst) <= provenance.row_constraint(analyst) + 1e-6,
                    "{mechanism}: row constraint overspent"
                );
            }
            for view in provenance.view_names() {
                let col = match mechanism {
                    MechanismKind::Vanilla => provenance.column_sum(view),
                    MechanismKind::AdditiveGaussian => provenance.column_max(view),
                };
                assert!(
                    col <= provenance.col_constraint(view) + 1e-6,
                    "{mechanism}: column constraint overspent"
                );
            }
            let total = match mechanism {
                MechanismKind::Vanilla => provenance.total_sum(),
                MechanismKind::AdditiveGaussian => provenance.total_of_column_maxes(),
            };
            assert!(
                total <= provenance.table_constraint() + 1e-6,
                "{mechanism}: table constraint overspent"
            );
        }
    }
}
