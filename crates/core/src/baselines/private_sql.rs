//! A simulated PrivateSQL baseline (sPrivateSQL, §6.1.1).
//!
//! PrivateSQL \[36\] spends the whole privacy budget up front: every view gets
//! a static share (proportional to its sensitivity — an equal split when all
//! views are counting histograms) and one synopsis is generated per view at
//! setup. Incoming queries are answered from those static synopses when the
//! resulting error meets the request, and rejected otherwise; no further
//! budget is ever spent and all analysts see the same synopses.

use std::collections::HashMap;
use std::time::Instant;

use dprov_dp::mechanism::analytic_gaussian::analytic_gaussian_sigma;
use dprov_dp::rng::DpRng;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::database::Database;
use dprov_engine::synopsis::Synopsis;
use dprov_engine::EngineError;

use crate::analyst::{AnalystId, AnalystRegistry};
use crate::config::SystemConfig;
use crate::error::{RejectReason, Result};
use crate::fairness::AnalystOutcome;
use crate::processor::{AnsweredQuery, QueryOutcome, QueryProcessor, QueryRequest, SubmissionMode};
use crate::synopsis_manager::SynopsisManager;
use crate::system::SystemStats;

/// The simulated PrivateSQL baseline.
pub struct SPrivateSqlBaseline {
    db: Database,
    catalog: ViewCatalog,
    registry: AnalystRegistry,
    config: SystemConfig,
    /// The static synopses, one per view, generated at setup.
    synopses: HashMap<String, Synopsis>,
    per_view_epsilon: f64,
    per_analyst_answered: Vec<usize>,
    stats: SystemStats,
}

impl SPrivateSqlBaseline {
    /// Builds the baseline and spends the whole budget generating one static
    /// synopsis per view.
    pub fn new(
        db: Database,
        catalog: ViewCatalog,
        registry: AnalystRegistry,
        config: SystemConfig,
    ) -> Result<Self> {
        let setup_start = Instant::now();
        let mut rng = DpRng::seed_from_u64(config.seed);

        let num_views = catalog.len().max(1);
        let per_view_epsilon = config.total_epsilon.value() / num_views as f64;

        // Reuse the synopsis manager's materialisation + fresh-synopsis
        // machinery for the static generation.
        let mut manager = SynopsisManager::new(config.delta);
        let mut synopses = HashMap::new();
        for view in catalog.views() {
            manager.register_view(&db, view)?;
            let synopsis = manager.fresh_synopsis(&view.name, per_view_epsilon, &mut rng)?;
            synopses.insert(view.name.clone(), synopsis);
        }

        let stats = SystemStats {
            setup_time: setup_start.elapsed(),
            query_time: std::time::Duration::ZERO,
            answered: 0,
            rejected: 0,
            cache_hits: 0,
        };
        let per_analyst_answered = vec![0; registry.len()];
        Ok(SPrivateSqlBaseline {
            db,
            catalog,
            registry,
            config,
            synopses,
            per_view_epsilon,
            per_analyst_answered,
            stats,
        })
    }

    /// Runtime statistics (Tables 1 and 3).
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// The static budget share assigned to every view.
    #[must_use]
    pub fn per_view_epsilon(&self) -> f64 {
        self.per_view_epsilon
    }

    /// Per-analyst outcomes for the fairness metrics. sPrivateSQL spends the
    /// same (whole) budget regardless of analysts, so consumption is
    /// attributed uniformly.
    #[must_use]
    pub fn fairness_outcomes(&self) -> Vec<AnalystOutcome> {
        let n = self.registry.len().max(1) as f64;
        self.registry
            .analysts()
            .iter()
            .map(|a| AnalystOutcome {
                privilege: a.privilege.level(),
                answered: self.per_analyst_answered[a.id.0],
                consumed_epsilon: self.config.total_epsilon.value() / n,
            })
            .collect()
    }
}

impl QueryProcessor for SPrivateSqlBaseline {
    fn name(&self) -> String {
        "sPrivateSQL".to_owned()
    }

    fn submit(&mut self, analyst: AnalystId, request: &QueryRequest) -> Result<QueryOutcome> {
        self.registry.get(analyst)?;
        let start = Instant::now();
        let outcome = (|| {
            let (view, linear) = match self.catalog.select_view(&request.query, &self.db) {
                Ok(pair) => pair,
                Err(EngineError::NotAnswerable(_)) | Err(_) => {
                    self.stats.rejected += 1;
                    return Ok(QueryOutcome::Rejected {
                        reason: RejectReason::NotAnswerable,
                    });
                }
            };
            let synopsis = &self.synopses[&view.name];
            let delivered_variance = synopsis.answer_variance(&linear);

            let target_variance = match request.mode {
                SubmissionMode::Accuracy { variance } => variance,
                SubmissionMode::Privacy { epsilon } => {
                    // A privacy-oriented request is honoured when the static
                    // synopsis is at least as accurate as a fresh release at
                    // the requested epsilon would be.
                    match analytic_gaussian_sigma(
                        epsilon,
                        self.config.delta.value(),
                        view.sensitivity().value(),
                    ) {
                        Ok(sigma) => linear.answer_variance(sigma * sigma),
                        Err(_) => {
                            self.stats.rejected += 1;
                            return Ok(QueryOutcome::Rejected {
                                reason: RejectReason::AccuracyUnreachable,
                            });
                        }
                    }
                }
            };

            if delivered_variance > target_variance {
                self.stats.rejected += 1;
                return Ok(QueryOutcome::Rejected {
                    reason: RejectReason::InsufficientSynopsis,
                });
            }

            self.per_analyst_answered[analyst.0] += 1;
            self.stats.answered += 1;
            Ok(QueryOutcome::Answered(AnsweredQuery {
                value: synopsis.answer(&linear),
                view: Some(view.name),
                epsilon_charged: 0.0,
                noise_variance: delivered_variance,
                from_cache: true,
                epoch: 0,
            }))
        })();
        self.stats.query_time += start.elapsed();
        outcome
    }

    fn cumulative_epsilon(&self) -> f64 {
        // The whole budget is committed at setup.
        self.config.total_epsilon.value()
    }

    fn analyst_epsilon(&self, _analyst: AnalystId) -> f64 {
        self.config.total_epsilon.value() / self.registry.len().max(1) as f64
    }

    fn num_analysts(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::datagen::adult::adult_database;
    use dprov_engine::query::Query;

    fn build(epsilon: f64) -> SPrivateSqlBaseline {
        let db = adult_database(2_000, 1);
        let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
        let mut registry = AnalystRegistry::new();
        registry.register("external", 1).unwrap();
        registry.register("internal", 4).unwrap();
        SPrivateSqlBaseline::new(db, catalog, registry, SystemConfig::new(epsilon).unwrap())
            .unwrap()
    }

    fn request(v: f64) -> QueryRequest {
        QueryRequest::with_accuracy(Query::range_count("adult", "age", 25, 44), v)
    }

    #[test]
    fn budget_is_split_equally_across_views() {
        let s = build(6.4);
        assert!((s.per_view_epsilon() - 6.4 / 13.0).abs() < 1e-12);
        assert_eq!(s.cumulative_epsilon(), 6.4);
    }

    #[test]
    fn loose_requests_are_answered_tight_requests_rejected() {
        let mut s = build(6.4);
        let loose = s.submit(AnalystId(0), &request(1e6)).unwrap();
        assert!(loose.is_answered());
        assert_eq!(loose.answered().unwrap().epsilon_charged, 0.0);

        let tight = s.submit(AnalystId(0), &request(1e-3)).unwrap();
        assert_eq!(
            tight,
            QueryOutcome::Rejected {
                reason: RejectReason::InsufficientSynopsis
            }
        );
    }

    #[test]
    fn low_budget_static_synopses_answer_fewer_queries() {
        // The Fig. 3 observation: under a tight overall budget the static
        // split leaves every synopsis too noisy for moderately accurate
        // queries, while a generous budget handles them.
        let mut tight = build(0.4);
        let mut generous = build(6.4);
        let r = request(20_000.0);
        let tight_outcome = tight.submit(AnalystId(0), &r).unwrap();
        let generous_outcome = generous.submit(AnalystId(0), &r).unwrap();
        assert!(!tight_outcome.is_answered());
        assert!(generous_outcome.is_answered());
    }

    #[test]
    fn answering_never_spends_additional_budget() {
        let mut s = build(6.4);
        for _ in 0..50 {
            let _ = s.submit(AnalystId(1), &request(1e5)).unwrap();
        }
        assert_eq!(s.cumulative_epsilon(), 6.4);
        assert_eq!(s.stats().answered, 50);
    }
}
