//! The plain Chorus baseline.
//!
//! Chorus \[29\] answers each query directly from the database with fresh
//! Gaussian noise, tracks a single overall budget, keeps no state between
//! queries, and treats every analyst as the same principal. It is the
//! "stateless" extreme DProvDB argues against: similar queries and similar
//! analysts pay full price every time.

use std::time::Instant;

use dprov_dp::mechanism::analytic_gaussian::analytic_gaussian_sigma;
use dprov_dp::rng::DpRng;
use dprov_dp::sensitivity::Sensitivity;
use dprov_dp::translation::translate_variance_to_epsilon;
use dprov_engine::database::Database;
use dprov_exec::{ColumnarExecutor, ExecConfig};

use crate::analyst::{AnalystId, AnalystRegistry};
use crate::config::SystemConfig;
use crate::error::{CoreError, RejectReason, Result};
use crate::fairness::AnalystOutcome;
use crate::processor::{AnsweredQuery, QueryOutcome, QueryProcessor, QueryRequest, SubmissionMode};
use crate::system::SystemStats;

use super::direct_query_sensitivity;

/// The plain Chorus baseline.
pub struct ChorusBaseline {
    db: Database,
    /// Chorus scans the base table on every single query (it keeps no
    /// synopses), so its per-query scan runs on the columnar executor.
    exec: ColumnarExecutor,
    registry: AnalystRegistry,
    config: SystemConfig,
    rng: DpRng,
    consumed_total: f64,
    per_analyst_consumed: Vec<f64>,
    per_analyst_answered: Vec<usize>,
    stats: SystemStats,
}

impl ChorusBaseline {
    /// Builds the baseline. Chorus materialises no synopses; its only
    /// setup cost is ingesting the database into the columnar store the
    /// per-query scans run on.
    #[must_use]
    pub fn new(db: Database, registry: AnalystRegistry, config: SystemConfig) -> Self {
        let n = registry.len();
        let rng = DpRng::seed_from_u64(config.seed);
        let setup_start = Instant::now();
        let exec = ColumnarExecutor::ingest(&db, &ExecConfig::default());
        let setup_time = setup_start.elapsed();
        ChorusBaseline {
            db,
            exec,
            registry,
            config,
            rng,
            consumed_total: 0.0,
            per_analyst_consumed: vec![0.0; n],
            per_analyst_answered: vec![0; n],
            stats: SystemStats {
                setup_time,
                query_time: std::time::Duration::ZERO,
                answered: 0,
                rejected: 0,
                cache_hits: 0,
            },
        }
    }

    /// Runtime statistics (Tables 1 and 3).
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Per-analyst outcomes for the fairness metrics.
    #[must_use]
    pub fn fairness_outcomes(&self) -> Vec<AnalystOutcome> {
        self.registry
            .analysts()
            .iter()
            .map(|a| AnalystOutcome {
                privilege: a.privilege.level(),
                answered: self.per_analyst_answered[a.id.0],
                consumed_epsilon: self.per_analyst_consumed[a.id.0],
            })
            .collect()
    }

    /// Translates the request into an epsilon for direct query answering.
    fn required_epsilon(&self, request: &QueryRequest) -> std::result::Result<f64, RejectReason> {
        let sensitivity = direct_query_sensitivity(&self.db, &request.query)
            .map_err(|_| RejectReason::NotAnswerable)?;
        match request.mode {
            SubmissionMode::Privacy { epsilon } => Ok(epsilon),
            SubmissionMode::Accuracy { variance } => {
                if !(variance.is_finite() && variance > 0.0) {
                    return Err(RejectReason::AccuracyUnreachable);
                }
                translate_variance_to_epsilon(
                    variance,
                    self.config.delta,
                    Sensitivity::new(sensitivity).map_err(|_| RejectReason::NotAnswerable)?,
                    self.config.total_epsilon,
                    self.config.translation_precision,
                )
                .map(|t| t.epsilon.value())
                .map_err(|_| RejectReason::AccuracyUnreachable)
            }
        }
    }

    fn answer_directly(
        &mut self,
        analyst: AnalystId,
        request: &QueryRequest,
        epsilon: f64,
    ) -> Result<QueryOutcome> {
        let sensitivity =
            direct_query_sensitivity(&self.db, &request.query).map_err(CoreError::Engine)?;
        let sigma = analytic_gaussian_sigma(epsilon, self.config.delta.value(), sensitivity)
            .map_err(CoreError::Dp)?;
        // GROUP BY queries are not scalar — the row path used to discover
        // that after executing; the columnar path rejects them up front
        // with the same outcome.
        if !request.query.group_by.is_empty() {
            return Ok(QueryOutcome::Rejected {
                reason: RejectReason::NotAnswerable,
            });
        }
        let truth = self
            .exec
            .execute(&request.query)
            .map_err(CoreError::Engine)?;
        let value = truth + self.rng.gaussian(sigma);

        self.consumed_total += epsilon;
        self.per_analyst_consumed[analyst.0] += epsilon;
        self.per_analyst_answered[analyst.0] += 1;
        self.stats.answered += 1;

        Ok(QueryOutcome::Answered(AnsweredQuery {
            value,
            view: None,
            epsilon_charged: epsilon,
            noise_variance: sigma * sigma,
            from_cache: false,
            epoch: 0,
        }))
    }
}

impl QueryProcessor for ChorusBaseline {
    fn name(&self) -> String {
        "Chorus".to_owned()
    }

    fn submit(&mut self, analyst: AnalystId, request: &QueryRequest) -> Result<QueryOutcome> {
        self.registry.get(analyst)?;
        let start = Instant::now();
        let outcome = (|| {
            let epsilon = match self.required_epsilon(request) {
                Ok(e) => e,
                Err(reason) => {
                    self.stats.rejected += 1;
                    return Ok(QueryOutcome::Rejected { reason });
                }
            };
            if self.consumed_total + epsilon > self.config.total_epsilon.value() + 1e-9 {
                self.stats.rejected += 1;
                return Ok(QueryOutcome::Rejected {
                    reason: RejectReason::TableConstraint,
                });
            }
            self.answer_directly(analyst, request, epsilon)
        })();
        self.stats.query_time += start.elapsed();
        outcome
    }

    fn cumulative_epsilon(&self) -> f64 {
        self.consumed_total
    }

    fn analyst_epsilon(&self, analyst: AnalystId) -> f64 {
        self.per_analyst_consumed
            .get(analyst.0)
            .copied()
            .unwrap_or(0.0)
    }

    fn num_analysts(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::datagen::adult::adult_database;
    use dprov_engine::query::Query;

    fn build(epsilon: f64) -> ChorusBaseline {
        let db = adult_database(2_000, 1);
        let mut registry = AnalystRegistry::new();
        registry.register("external", 1).unwrap();
        registry.register("internal", 4).unwrap();
        ChorusBaseline::new(
            db,
            registry,
            SystemConfig::new(epsilon).unwrap().with_seed(3),
        )
    }

    fn request(lo: i64, hi: i64, v: f64) -> QueryRequest {
        QueryRequest::with_accuracy(Query::range_count("adult", "age", lo, hi), v)
    }

    #[test]
    fn answers_until_the_budget_runs_out() {
        let mut chorus = build(1.0);
        let mut answered = 0;
        for i in 0..200 {
            let outcome = chorus
                .submit(AnalystId((i % 2) as usize), &request(20, 40, 100.0))
                .unwrap();
            if outcome.is_answered() {
                answered += 1;
            }
        }
        assert!(answered > 0);
        // The budget is finite so not everything is answered.
        assert!(answered < 200, "answered {answered}");
        assert!(chorus.cumulative_epsilon() <= 1.0 + 1e-6);
    }

    #[test]
    fn identical_queries_pay_every_time() {
        let mut chorus = build(10.0);
        let r = request(30, 39, 100.0);
        let a = chorus.submit(AnalystId(0), &r).unwrap();
        let b = chorus.submit(AnalystId(0), &r).unwrap();
        let (a, b) = (a.answered().unwrap().clone(), b.answered().unwrap().clone());
        assert!(a.epsilon_charged > 0.0);
        assert!((a.epsilon_charged - b.epsilon_charged).abs() < 1e-9);
        assert!(!b.from_cache);
        assert!((chorus.cumulative_epsilon() - 2.0 * a.epsilon_charged).abs() < 1e-9);
    }

    #[test]
    fn no_distinction_between_analysts() {
        // A low-privilege analyst can drain the whole budget.
        let mut chorus = build(0.5);
        let mut drained = 0;
        while chorus
            .submit(AnalystId(0), &request(20, 40, 200.0))
            .unwrap()
            .is_answered()
        {
            drained += 1;
            assert!(drained < 1_000);
        }
        // Now the high-privilege analyst gets nothing.
        let outcome = chorus
            .submit(AnalystId(1), &request(20, 40, 200.0))
            .unwrap();
        assert!(!outcome.is_answered());
        assert!(chorus.analyst_epsilon(AnalystId(0)) > 0.0);
        assert_eq!(chorus.analyst_epsilon(AnalystId(1)), 0.0);
    }

    #[test]
    fn privacy_mode_uses_the_given_epsilon() {
        let mut chorus = build(1.0);
        let r = QueryRequest::with_privacy(Query::count("adult"), 0.25);
        let outcome = chorus.submit(AnalystId(0), &r).unwrap();
        assert!((outcome.answered().unwrap().epsilon_charged - 0.25).abs() < 1e-12);
    }
}
