//! Baseline systems used in the evaluation (§6.1.1).
//!
//! * [`chorus::ChorusBaseline`] — plain Chorus: per-query Gaussian noise,
//!   no views, no distinction between analysts, one overall budget.
//! * [`chorus_p::ChorusPBaseline`] — Chorus plus the privacy provenance
//!   idea: per-analyst constraints are enforced, but nothing is cached.
//! * [`private_sql::SPrivateSqlBaseline`] — a simulated PrivateSQL: all
//!   synopses are generated up front with a static budget split; queries
//!   that the static synopses cannot answer accurately enough are rejected.

pub mod chorus;
pub mod chorus_p;
pub mod private_sql;

pub use chorus::ChorusBaseline;
pub use chorus_p::ChorusPBaseline;
pub use private_sql::SPrivateSqlBaseline;

use dprov_engine::database::Database;
use dprov_engine::query::{AggregateKind, Query};
use dprov_engine::Result as EngineResult;

/// The ℓ2 sensitivity of answering a query *directly* (no view), under
/// bounded DP: 1 for counts, the attribute's value range for sums.
pub(crate) fn direct_query_sensitivity(db: &Database, query: &Query) -> EngineResult<f64> {
    let table = db.table(&query.table)?;
    match &query.aggregate {
        AggregateKind::Count => Ok(1.0),
        AggregateKind::Sum(attr) | AggregateKind::Avg(attr) => {
            let a = table.schema().attribute(attr)?;
            let size = a.domain_size();
            let lo = a.numeric_at(0).unwrap_or(0.0);
            let hi = a.numeric_at(size.saturating_sub(1)).unwrap_or(1.0);
            Ok((hi - lo).abs().max(1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::datagen::adult::adult_database;

    #[test]
    fn count_sensitivity_is_one_sum_uses_the_range() {
        let db = adult_database(100, 1);
        assert_eq!(
            direct_query_sensitivity(&db, &Query::count("adult")).unwrap(),
            1.0
        );
        let s = direct_query_sensitivity(&db, &Query::sum("adult", "hours_per_week")).unwrap();
        assert_eq!(s, 98.0);
        assert!(direct_query_sensitivity(&db, &Query::count("missing")).is_err());
    }
}
