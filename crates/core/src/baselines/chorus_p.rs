//! ChorusP: Chorus plus privacy provenance, minus cached views.
//!
//! This baseline ("DProvDB minus cached views" in §6.1.1) enforces the
//! per-analyst row constraints of the provenance framework — so a
//! low-privilege analyst can no longer starve a high-privilege one — but it
//! still answers every query directly with fresh noise, so similar queries
//! keep paying full price.

use std::time::Instant;

use dprov_dp::mechanism::analytic_gaussian::analytic_gaussian_sigma;
use dprov_dp::rng::DpRng;
use dprov_dp::sensitivity::Sensitivity;
use dprov_dp::translation::translate_variance_to_epsilon;
use dprov_engine::database::Database;
use dprov_engine::exec::execute;

use crate::analyst::{AnalystId, AnalystRegistry};
use crate::config::{AnalystConstraintSpec, SystemConfig};
use crate::error::{CoreError, RejectReason, Result};
use crate::fairness::AnalystOutcome;
use crate::processor::{AnsweredQuery, QueryOutcome, QueryProcessor, QueryRequest, SubmissionMode};
use crate::provenance::analyst_constraints;
use crate::system::SystemStats;

use super::direct_query_sensitivity;

/// The ChorusP baseline.
pub struct ChorusPBaseline {
    db: Database,
    registry: AnalystRegistry,
    config: SystemConfig,
    rng: DpRng,
    row_constraints: Vec<f64>,
    consumed_total: f64,
    per_analyst_consumed: Vec<f64>,
    per_analyst_answered: Vec<usize>,
    stats: SystemStats,
}

impl ChorusPBaseline {
    /// Builds the baseline. Analyst constraints follow Definition 10 (the
    /// proportional specification), matching the paper's configuration of
    /// ChorusP.
    pub fn new(db: Database, registry: AnalystRegistry, config: SystemConfig) -> Result<Self> {
        let spec_config = config
            .clone()
            .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
        let row_constraints = analyst_constraints(&spec_config, &registry)?;
        let n = registry.len();
        let rng = DpRng::seed_from_u64(config.seed);
        Ok(ChorusPBaseline {
            db,
            registry,
            config,
            rng,
            row_constraints,
            consumed_total: 0.0,
            per_analyst_consumed: vec![0.0; n],
            per_analyst_answered: vec![0; n],
            stats: SystemStats {
                setup_time: std::time::Duration::ZERO,
                query_time: std::time::Duration::ZERO,
                answered: 0,
                rejected: 0,
                cache_hits: 0,
            },
        })
    }

    /// Runtime statistics (Tables 1 and 3).
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Per-analyst outcomes for the fairness metrics.
    #[must_use]
    pub fn fairness_outcomes(&self) -> Vec<AnalystOutcome> {
        self.registry
            .analysts()
            .iter()
            .map(|a| AnalystOutcome {
                privilege: a.privilege.level(),
                answered: self.per_analyst_answered[a.id.0],
                consumed_epsilon: self.per_analyst_consumed[a.id.0],
            })
            .collect()
    }

    /// The row constraint ψ_Ai of an analyst.
    #[must_use]
    pub fn row_constraint(&self, analyst: AnalystId) -> f64 {
        self.row_constraints[analyst.0]
    }

    fn required_epsilon(&self, request: &QueryRequest) -> std::result::Result<f64, RejectReason> {
        let sensitivity = direct_query_sensitivity(&self.db, &request.query)
            .map_err(|_| RejectReason::NotAnswerable)?;
        match request.mode {
            SubmissionMode::Privacy { epsilon } => Ok(epsilon),
            SubmissionMode::Accuracy { variance } => {
                if !(variance.is_finite() && variance > 0.0) {
                    return Err(RejectReason::AccuracyUnreachable);
                }
                translate_variance_to_epsilon(
                    variance,
                    self.config.delta,
                    Sensitivity::new(sensitivity).map_err(|_| RejectReason::NotAnswerable)?,
                    self.config.total_epsilon,
                    self.config.translation_precision,
                )
                .map(|t| t.epsilon.value())
                .map_err(|_| RejectReason::AccuracyUnreachable)
            }
        }
    }
}

impl QueryProcessor for ChorusPBaseline {
    fn name(&self) -> String {
        "ChorusP".to_owned()
    }

    fn submit(&mut self, analyst: AnalystId, request: &QueryRequest) -> Result<QueryOutcome> {
        self.registry.get(analyst)?;
        let start = Instant::now();
        let outcome = (|| {
            let epsilon = match self.required_epsilon(request) {
                Ok(e) => e,
                Err(reason) => {
                    self.stats.rejected += 1;
                    return Ok(QueryOutcome::Rejected { reason });
                }
            };
            if self.consumed_total + epsilon > self.config.total_epsilon.value() + 1e-9 {
                self.stats.rejected += 1;
                return Ok(QueryOutcome::Rejected {
                    reason: RejectReason::TableConstraint,
                });
            }
            if self.per_analyst_consumed[analyst.0] + epsilon
                > self.row_constraints[analyst.0] + 1e-9
            {
                self.stats.rejected += 1;
                return Ok(QueryOutcome::Rejected {
                    reason: RejectReason::AnalystConstraint { analyst },
                });
            }

            let sensitivity =
                direct_query_sensitivity(&self.db, &request.query).map_err(CoreError::Engine)?;
            let sigma = analytic_gaussian_sigma(epsilon, self.config.delta.value(), sensitivity)
                .map_err(CoreError::Dp)?;
            let result = execute(&self.db, &request.query).map_err(CoreError::Engine)?;
            let truth = match result.scalar() {
                Some(v) => v,
                None => {
                    self.stats.rejected += 1;
                    return Ok(QueryOutcome::Rejected {
                        reason: RejectReason::NotAnswerable,
                    });
                }
            };
            let value = truth + self.rng.gaussian(sigma);

            self.consumed_total += epsilon;
            self.per_analyst_consumed[analyst.0] += epsilon;
            self.per_analyst_answered[analyst.0] += 1;
            self.stats.answered += 1;
            Ok(QueryOutcome::Answered(AnsweredQuery {
                value,
                view: None,
                epsilon_charged: epsilon,
                noise_variance: sigma * sigma,
                from_cache: false,
                epoch: 0,
            }))
        })();
        self.stats.query_time += start.elapsed();
        outcome
    }

    fn cumulative_epsilon(&self) -> f64 {
        self.consumed_total
    }

    fn analyst_epsilon(&self, analyst: AnalystId) -> f64 {
        self.per_analyst_consumed
            .get(analyst.0)
            .copied()
            .unwrap_or(0.0)
    }

    fn num_analysts(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::datagen::adult::adult_database;
    use dprov_engine::query::Query;

    fn build(epsilon: f64) -> ChorusPBaseline {
        let db = adult_database(2_000, 1);
        let mut registry = AnalystRegistry::new();
        registry.register("external", 1).unwrap();
        registry.register("internal", 4).unwrap();
        ChorusPBaseline::new(
            db,
            registry,
            SystemConfig::new(epsilon).unwrap().with_seed(3),
        )
        .unwrap()
    }

    fn request(v: f64) -> QueryRequest {
        QueryRequest::with_accuracy(Query::range_count("adult", "age", 25, 44), v)
    }

    #[test]
    fn constraints_follow_definition_10() {
        let chorus_p = build(1.0);
        assert!((chorus_p.row_constraint(AnalystId(0)) - 0.2).abs() < 1e-12);
        assert!((chorus_p.row_constraint(AnalystId(1)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn low_privilege_analyst_cannot_starve_the_high_privilege_one() {
        let mut chorus_p = build(1.0);
        // Drain analyst 0 (privilege 1, constraint 0.2).
        let mut answered_low = 0;
        for _ in 0..200 {
            if chorus_p
                .submit(AnalystId(0), &request(2_000.0))
                .unwrap()
                .is_answered()
            {
                answered_low += 1;
            }
        }
        assert!(chorus_p.analyst_epsilon(AnalystId(0)) <= 0.2 + 1e-6);
        // The high-privilege analyst still has room.
        let outcome = chorus_p.submit(AnalystId(1), &request(2_000.0)).unwrap();
        assert!(outcome.is_answered());
        assert!(answered_low > 0);
    }

    #[test]
    fn table_constraint_still_applies() {
        let mut chorus_p = build(0.2);
        let mut total_answered = 0;
        for i in 0..300 {
            if chorus_p
                .submit(AnalystId((i % 2) as usize), &request(5_000.0))
                .unwrap()
                .is_answered()
            {
                total_answered += 1;
            }
        }
        assert!(chorus_p.cumulative_epsilon() <= 0.2 + 1e-6);
        assert!(total_answered > 0);
        assert!(total_answered < 300);
    }
}
