//! Fairness metrics.
//!
//! * [`dcfg`] / [`ndcfg`] — the (normalised) discounted cumulative fairness
//!   gain of Definitions 17–18 / §6.1.3: answered query counts discounted by
//!   `log2(1/l_i + 1)` so that answering the *higher*-privilege analysts'
//!   queries earns more credit.
//! * [`ProportionalFairnessAudit`] — checks the proportional-fairness
//!   condition of Definition 7 on observed per-analyst budget consumption.

use serde::{Deserialize, Serialize};

use crate::analyst::Privilege;

/// Per-analyst outcome used by the fairness metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalystOutcome {
    /// The analyst's privilege level.
    pub privilege: u8,
    /// Number of queries answered to this analyst.
    pub answered: usize,
    /// Privacy budget (epsilon) consumed on behalf of this analyst.
    pub consumed_epsilon: f64,
}

/// The discount applied to one analyst's answered-query count:
/// `log2(1 / l_i + 1)`.
#[must_use]
pub fn dcfg_discount(privilege: u8) -> f64 {
    (1.0 / f64::from(privilege) + 1.0).log2()
}

/// Discounted cumulative fairness gain (Definition 17).
#[must_use]
pub fn dcfg(outcomes: &[AnalystOutcome]) -> f64 {
    outcomes
        .iter()
        .map(|o| o.answered as f64 / dcfg_discount(o.privilege))
        .sum()
}

/// Normalised DCFG (Definition 18): DCFG divided by the total number of
/// answered queries. Zero when nothing was answered.
#[must_use]
pub fn ndcfg(outcomes: &[AnalystOutcome]) -> f64 {
    let total: usize = outcomes.iter().map(|o| o.answered).sum();
    if total == 0 {
        return 0.0;
    }
    dcfg(outcomes) / total as f64
}

/// The result of auditing proportional fairness (Definition 7) with the
/// identity function as μ: for every pair with `l_i <= l_j` we require
/// `consumed_i / l_i <= consumed_j / l_j` (up to `tolerance`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProportionalFairnessAudit {
    /// Whether every pair satisfied the condition.
    pub is_fair: bool,
    /// The worst observed violation `consumed_i/l_i − consumed_j/l_j` over
    /// pairs with `l_i <= l_j` (non-positive when fair).
    pub worst_violation: f64,
}

/// Audits proportional fairness over observed per-analyst consumption.
#[must_use]
pub fn audit_proportional_fairness(
    outcomes: &[AnalystOutcome],
    tolerance: f64,
) -> ProportionalFairnessAudit {
    let mut worst: f64 = f64::NEG_INFINITY;
    let mut any_pair = false;
    for i in outcomes {
        for j in outcomes {
            if i.privilege <= j.privilege && !std::ptr::eq(i, j) {
                any_pair = true;
                let lhs = i.consumed_epsilon / f64::from(i.privilege);
                let rhs = j.consumed_epsilon / f64::from(j.privilege);
                worst = worst.max(lhs - rhs);
            }
        }
    }
    if !any_pair {
        return ProportionalFairnessAudit {
            is_fair: true,
            worst_violation: 0.0,
        };
    }
    ProportionalFairnessAudit {
        is_fair: worst <= tolerance,
        worst_violation: worst,
    }
}

/// Helper kept for call sites that have `Privilege` values.
#[must_use]
pub fn dcfg_discount_for(privilege: Privilege) -> f64 {
    dcfg_discount(privilege.level())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(privilege: u8, answered: usize, consumed: f64) -> AnalystOutcome {
        AnalystOutcome {
            privilege,
            answered,
            consumed_epsilon: consumed,
        }
    }

    #[test]
    fn discounts_match_example_7() {
        assert!((dcfg_discount(1) - 1.0).abs() < 1e-9);
        assert!((dcfg_discount(2) - 0.584_962_5).abs() < 1e-6);
        assert!((dcfg_discount(4) - 0.321_928_1).abs() < 1e-6);
    }

    #[test]
    fn dcfg_and_ndcfg_match_example_7() {
        // Example 7: privileges 1, 2, 4.
        let m1 = [outcome(1, 10, 0.0), outcome(2, 3, 0.0), outcome(4, 0, 0.0)];
        let m2 = [outcome(1, 2, 0.0), outcome(2, 4, 0.0), outcome(4, 7, 0.0)];
        assert!((dcfg(&m1) - 15.13).abs() < 0.01);
        assert!((dcfg(&m2) - 30.58).abs() < 0.01);
        assert!((ndcfg(&m1) - 1.16).abs() < 0.01);
        assert!((ndcfg(&m2) - 2.35).abs() < 0.01);
    }

    #[test]
    fn answering_high_privilege_scores_higher() {
        let favour_low = [outcome(1, 10, 0.0), outcome(4, 0, 0.0)];
        let favour_high = [outcome(1, 0, 0.0), outcome(4, 10, 0.0)];
        assert!(ndcfg(&favour_high) > ndcfg(&favour_low));
    }

    #[test]
    fn empty_and_zero_answer_cases() {
        assert_eq!(ndcfg(&[]), 0.0);
        assert_eq!(ndcfg(&[outcome(3, 0, 0.0)]), 0.0);
        assert_eq!(dcfg(&[]), 0.0);
    }

    #[test]
    fn proportional_fairness_audit_detects_violations() {
        // Fair: consumption proportional to privilege.
        let fair = [outcome(1, 0, 0.4), outcome(4, 0, 1.6)];
        let audit = audit_proportional_fairness(&fair, 1e-9);
        assert!(audit.is_fair);
        assert!(audit.worst_violation <= 1e-9);

        // Unfair: the low-privilege analyst consumed more per privilege
        // unit than the high-privilege one.
        let unfair = [outcome(1, 0, 1.0), outcome(4, 0, 1.6)];
        let audit = audit_proportional_fairness(&unfair, 1e-9);
        assert!(!audit.is_fair);
        assert!(audit.worst_violation > 0.5);
    }

    #[test]
    fn single_analyst_is_trivially_fair() {
        let audit = audit_proportional_fairness(&[outcome(5, 3, 2.0)], 1e-9);
        assert!(audit.is_fair);
    }
}
