//! Error types for the DProvDB system layer.

use dprov_dp::DpError;
use dprov_engine::EngineError;

use crate::analyst::AnalystId;

/// Why a query was rejected by the system.
///
/// Marked `#[non_exhaustive]`: new rejection classes may be added without a
/// breaking change, so downstream matches must carry a wildcard arm. The
/// stable wire representation lives in `dprov-api`.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// Answering would exceed the analyst's (row) constraint ψ_Ai.
    AnalystConstraint {
        /// The analyst whose constraint would be violated.
        analyst: AnalystId,
    },
    /// Answering would exceed the view's (column) constraint ψ_Vj.
    ViewConstraint {
        /// The view whose constraint would be violated.
        view: String,
    },
    /// Answering would exceed the overall table constraint ψ_P.
    TableConstraint,
    /// The requested accuracy cannot be met within the remaining budget.
    AccuracyUnreachable,
    /// No registered view can answer the query.
    NotAnswerable,
    /// The system's static synopses (sPrivateSQL baseline) are not accurate
    /// enough for the requested accuracy.
    InsufficientSynopsis,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::AnalystConstraint { analyst } => {
                write!(f, "analyst constraint violated for analyst {analyst}")
            }
            RejectReason::ViewConstraint { view } => {
                write!(f, "view constraint violated for {view}")
            }
            RejectReason::TableConstraint => write!(f, "table (overall) constraint violated"),
            RejectReason::AccuracyUnreachable => {
                write!(f, "accuracy requirement unreachable within the budget")
            }
            RejectReason::NotAnswerable => write!(f, "no registered view answers the query"),
            RejectReason::InsufficientSynopsis => {
                write!(f, "static synopsis not accurate enough for the request")
            }
        }
    }
}

/// Errors raised by the durable-storage subsystem (write-ahead ledger and
/// snapshots). Defined here so the [`crate::recorder::Recorder`] hook on the
/// commit path can surface them without the core crate depending on the
/// storage crate.
///
/// Marked `#[non_exhaustive]`: variants may grow (new corruption classes,
/// new media) without breaking downstream matches or the stable `dprov-api`
/// error codes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// An operating-system I/O failure (the `std::io::Error` rendered to a
    /// string so the variant stays `Clone + PartialEq`).
    Io(String),
    /// A checksum, magic-number or length check failed while reading the
    /// write-ahead ledger or a snapshot.
    Corrupt {
        /// Which file failed verification (e.g. `"wal"`, `"snapshot"`).
        file: String,
        /// Byte offset of the first record that failed verification.
        offset: u64,
        /// What exactly failed (checksum, magic, truncated payload...).
        reason: String,
    },
    /// A snapshot or ledger was written by an incompatible format version.
    UnsupportedVersion {
        /// The version found on disk.
        found: u32,
        /// The newest version this build understands.
        supported: u32,
    },
    /// Durable state does not match the live system (different seed,
    /// budget, mechanism, or unknown analysts/views).
    IncompatibleState(String),
    /// The recorder was killed by an injected failpoint (crash testing) or
    /// closed by shutdown; the in-memory commit was not applied.
    Unavailable(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage i/o error: {msg}"),
            StorageError::Corrupt {
                file,
                offset,
                reason,
            } => {
                write!(f, "corrupt {file} at byte {offset}: {reason}")
            }
            StorageError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported storage version {found} (supported <= {supported})"
                )
            }
            StorageError::IncompatibleState(msg) => {
                write!(f, "durable state incompatible with live system: {msg}")
            }
            StorageError::Unavailable(msg) => write!(f, "recorder unavailable: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Errors raised by the DProvDB system layer.
///
/// Marked `#[non_exhaustive]`: the system grows subsystems (and with them
/// error variants) over time; downstream matches must carry a wildcard arm
/// so additions are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error from the DP primitives.
    Dp(DpError),
    /// An error from the relational engine.
    Engine(EngineError),
    /// An unknown analyst id was used.
    UnknownAnalyst(AnalystId),
    /// A privilege level outside `1..=10` was supplied.
    InvalidPrivilege(u8),
    /// The system was configured inconsistently.
    InvalidConfig(String),
    /// A corruption-graph policy was invalid (e.g. a component of size >= t).
    InvalidCorruptionGraph(String),
    /// The durable recorder refused or failed a write-ahead append; the
    /// associated in-memory commit was not applied.
    Storage(StorageError),
    /// An update batch failed validation (see `dprov-delta`): bad rows,
    /// a delete naming a row the logical table does not hold, or an
    /// empty batch.
    Delta(dprov_delta::DeltaError),
}

impl From<DpError> for CoreError {
    fn from(e: DpError) -> Self {
        CoreError::Dp(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<dprov_delta::DeltaError> for CoreError {
    fn from(e: dprov_delta::DeltaError) -> Self {
        CoreError::Delta(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Dp(e) => write!(f, "dp error: {e}"),
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::UnknownAnalyst(a) => write!(f, "unknown analyst: {a}"),
            CoreError::InvalidPrivilege(p) => write!(f, "privilege must be in 1..=10, got {p}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::InvalidCorruptionGraph(msg) => write!(f, "invalid corruption graph: {msg}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Delta(e) => write!(f, "update error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
