//! Error types for the DProvDB system layer.

use dprov_dp::DpError;
use dprov_engine::EngineError;

use crate::analyst::AnalystId;

/// Why a query was rejected by the system.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// Answering would exceed the analyst's (row) constraint ψ_Ai.
    AnalystConstraint {
        /// The analyst whose constraint would be violated.
        analyst: AnalystId,
    },
    /// Answering would exceed the view's (column) constraint ψ_Vj.
    ViewConstraint {
        /// The view whose constraint would be violated.
        view: String,
    },
    /// Answering would exceed the overall table constraint ψ_P.
    TableConstraint,
    /// The requested accuracy cannot be met within the remaining budget.
    AccuracyUnreachable,
    /// No registered view can answer the query.
    NotAnswerable,
    /// The system's static synopses (sPrivateSQL baseline) are not accurate
    /// enough for the requested accuracy.
    InsufficientSynopsis,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::AnalystConstraint { analyst } => {
                write!(f, "analyst constraint violated for analyst {analyst}")
            }
            RejectReason::ViewConstraint { view } => {
                write!(f, "view constraint violated for {view}")
            }
            RejectReason::TableConstraint => write!(f, "table (overall) constraint violated"),
            RejectReason::AccuracyUnreachable => {
                write!(f, "accuracy requirement unreachable within the budget")
            }
            RejectReason::NotAnswerable => write!(f, "no registered view answers the query"),
            RejectReason::InsufficientSynopsis => {
                write!(f, "static synopsis not accurate enough for the request")
            }
        }
    }
}

/// Errors raised by the DProvDB system layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error from the DP primitives.
    Dp(DpError),
    /// An error from the relational engine.
    Engine(EngineError),
    /// An unknown analyst id was used.
    UnknownAnalyst(AnalystId),
    /// A privilege level outside `1..=10` was supplied.
    InvalidPrivilege(u8),
    /// The system was configured inconsistently.
    InvalidConfig(String),
    /// A corruption-graph policy was invalid (e.g. a component of size >= t).
    InvalidCorruptionGraph(String),
}

impl From<DpError> for CoreError {
    fn from(e: DpError) -> Self {
        CoreError::Dp(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Dp(e) => write!(f, "dp error: {e}"),
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::UnknownAnalyst(a) => write!(f, "unknown analyst: {a}"),
            CoreError::InvalidPrivilege(p) => write!(f, "privilege must be in 1..=10, got {p}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::InvalidCorruptionGraph(msg) => write!(f, "invalid corruption graph: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
