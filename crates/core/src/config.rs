//! System configuration.
//!
//! Unlike the single-knob configuration of prior DP systems, DProvDB asks
//! the administrator to configure the table constraint ψ_P, the per-analyst
//! constraint specification (Definition 10 or 11, optionally expanded by τ),
//! the per-view constraint specification (Definition 12 or a static split),
//! the system-wide δ, and the composition method.

use serde::{Deserialize, Serialize};

use dprov_delta::{EpochPolicy, MaintenanceMode};
use dprov_dp::accountant::CompositionMethod;
use dprov_dp::budget::{Delta, Epsilon};
use dprov_dp::translation::DEFAULT_EPSILON_PRECISION;

use crate::error::{CoreError, Result};

/// How per-analyst (row) constraints ψ_Ai are derived from privileges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnalystConstraintSpec {
    /// Definition 10 ("l_sum"): ψ_Ai = l_i / Σ_j l_j · ψ_P. Requires every
    /// analyst to be registered before setup; tailored to the vanilla
    /// approach.
    ProportionalSum,
    /// Definition 11 ("l_max"): ψ_Ai = l_i / l_max · ψ_P. `system_max_level`
    /// fixes l_max; `None` uses the maximum privilege among registered
    /// analysts, which is what the paper's experiments correspond to.
    MaxNormalized {
        /// Optional fixed system-wide maximum privilege level.
        system_max_level: Option<u8>,
    },
}

/// How per-view (column) constraints ψ_Vj are derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ViewConstraintSpec {
    /// Definition 12 (water-filling): every view constraint equals the table
    /// constraint; budget flows to the views analysts actually query.
    WaterFilling,
    /// The PrivateSQL-style static split: the table budget is divided across
    /// views proportionally to the inverse of their sensitivities (equal
    /// split when all views are counting histograms).
    StaticSensitivitySplit,
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The table constraint ψ_P — the overall privacy budget.
    pub total_epsilon: Epsilon,
    /// The per-query / per-synopsis δ (the paper fixes one small δ for all
    /// queries, e.g. 1e-9, capped by 1/|D|).
    pub delta: Delta,
    /// How analyst constraints are derived.
    pub analyst_constraints: AnalystConstraintSpec,
    /// How view constraints are derived.
    pub view_constraints: ViewConstraintSpec,
    /// The constraint-expansion factor τ ≥ 1 (§6.2.2, Fig. 7): analyst
    /// constraints are multiplied by τ (and capped at ψ_P), trading fairness
    /// for utility.
    pub expansion_tau: f64,
    /// The composition method used for overall accounting.
    pub composition: CompositionMethod,
    /// The precision `p` of the accuracy→privacy binary search.
    pub translation_precision: f64,
    /// RNG seed for noise generation (experiments repeat over several seeds).
    pub seed: u64,
    /// What happens to noisy synopses of a view whose data changed at an
    /// epoch seal (the dynamic-data budget policy; see `dprov-delta`).
    pub epoch_policy: EpochPolicy,
    /// How exact histograms are maintained at a seal: incremental patching
    /// (production) or full rebuild (the bit-identical oracle the
    /// equivalence suites compare against).
    pub maintenance: MaintenanceMode,
}

impl SystemConfig {
    /// A configuration with the paper's defaults: δ = 1e-9, water-filling
    /// view constraints, Def. 11 analyst constraints, no expansion, basic
    /// composition.
    pub fn new(total_epsilon: f64) -> Result<Self> {
        Ok(SystemConfig {
            total_epsilon: Epsilon::new(total_epsilon).map_err(CoreError::Dp)?,
            delta: Delta::new(1e-9).expect("default delta is valid"),
            analyst_constraints: AnalystConstraintSpec::MaxNormalized {
                system_max_level: None,
            },
            view_constraints: ViewConstraintSpec::WaterFilling,
            expansion_tau: 1.0,
            composition: CompositionMethod::Sequential,
            translation_precision: DEFAULT_EPSILON_PRECISION,
            seed: 0,
            epoch_policy: EpochPolicy::default(),
            maintenance: MaintenanceMode::default(),
        })
    }

    /// Sets the per-epoch synopsis budget policy for dynamic data.
    #[must_use]
    pub fn with_epoch_policy(mut self, policy: EpochPolicy) -> Self {
        self.epoch_policy = policy;
        self
    }

    /// Sets the histogram maintenance mode (equivalence testing uses
    /// [`MaintenanceMode::FullRebuild`] as the oracle).
    #[must_use]
    pub fn with_maintenance(mut self, mode: MaintenanceMode) -> Self {
        self.maintenance = mode;
        self
    }

    /// Sets the per-query δ.
    pub fn with_delta(mut self, delta: f64) -> Result<Self> {
        self.delta = Delta::new(delta).map_err(CoreError::Dp)?;
        Ok(self)
    }

    /// Sets the analyst-constraint specification.
    #[must_use]
    pub fn with_analyst_constraints(mut self, spec: AnalystConstraintSpec) -> Self {
        self.analyst_constraints = spec;
        self
    }

    /// Sets the view-constraint specification.
    #[must_use]
    pub fn with_view_constraints(mut self, spec: ViewConstraintSpec) -> Self {
        self.view_constraints = spec;
        self
    }

    /// Sets the constraint-expansion factor τ (must be ≥ 1).
    pub fn with_expansion(mut self, tau: f64) -> Result<Self> {
        if !(tau.is_finite() && tau >= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "expansion factor must be >= 1, got {tau}"
            )));
        }
        self.expansion_tau = tau;
        Ok(self)
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the composition method for overall accounting.
    #[must_use]
    pub fn with_composition(mut self, method: CompositionMethod) -> Self {
        self.composition = method;
        self
    }

    /// Validates the configuration against a dataset size: the paper caps δ
    /// at the inverse of the dataset size.
    pub fn validate_for_dataset(&self, rows: usize) -> Result<()> {
        if rows > 0 && self.delta.value() > 1.0 / rows as f64 {
            return Err(CoreError::InvalidConfig(format!(
                "delta {} exceeds 1/|D| = {}",
                self.delta.value(),
                1.0 / rows as f64
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SystemConfig::new(3.2).unwrap();
        assert_eq!(c.total_epsilon.value(), 3.2);
        assert_eq!(c.delta.value(), 1e-9);
        assert_eq!(c.expansion_tau, 1.0);
        assert_eq!(c.view_constraints, ViewConstraintSpec::WaterFilling);
        assert!(matches!(
            c.analyst_constraints,
            AnalystConstraintSpec::MaxNormalized { .. }
        ));
    }

    #[test]
    fn builders_validate() {
        assert!(SystemConfig::new(-1.0).is_err());
        let c = SystemConfig::new(1.0).unwrap();
        assert!(c.clone().with_delta(2.0).is_err());
        assert!(c.clone().with_expansion(0.5).is_err());
        assert!(c.clone().with_expansion(1.9).is_ok());
        assert_eq!(c.clone().with_seed(9).seed, 9);
    }

    #[test]
    fn delta_cap_against_dataset_size() {
        let c = SystemConfig::new(1.0).unwrap().with_delta(1e-3).unwrap();
        assert!(c.validate_for_dataset(100).is_ok());
        assert!(c.validate_for_dataset(10_000).is_err());
        assert!(c.validate_for_dataset(0).is_ok());
    }
}
