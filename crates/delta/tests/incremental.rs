//! Property suite: incremental maintenance is bit-identical to a full
//! rebuild over random tables, random update batches and random epoch
//! counts — for the exact histograms (patch vs re-materialise) and for
//! the columnar scan path (weighted delta segments vs a physically
//! rebuilt table).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dprov_delta::{build_segments, patch_histogram, UpdateBatch, UpdateLog};
use dprov_engine::database::Database;
use dprov_engine::exec::execute;
use dprov_engine::histogram::Histogram;
use dprov_engine::query::Query;
use dprov_engine::schema::{Attribute, AttributeType, Schema};
use dprov_engine::table::Table;
use dprov_engine::value::Value;
use dprov_engine::view::ViewDef;
use dprov_exec::{ColumnarExecutor, EncodingKind, EpochSegment, ExecConfig};

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttributeType::integer(0, 14)),
        Attribute::new("b", AttributeType::categorical(&["x", "y", "z"])),
        Attribute::new("c", AttributeType::binned_integer(0, 29, 5)),
    ])
}

fn random_db(rng: &mut StdRng, rows: usize) -> Database {
    let mut table = Table::new("t", schema());
    for _ in 0..rows {
        table
            .insert_encoded_row(&[
                rng.gen_range(0..15u32),
                rng.gen_range(0..3u32),
                rng.gen_range(0..6u32),
            ])
            .unwrap();
    }
    let mut db = Database::new();
    db.add_table(table);
    db
}

fn decode_row(row: &[u32]) -> Vec<Value> {
    let schema = schema();
    schema
        .attributes()
        .iter()
        .zip(row)
        .map(|(attr, &idx)| attr.value_at(idx as usize))
        .collect()
}

/// A random batch against the *current logical state* `live` (a physically
/// maintained mirror): inserts are random rows, deletes pick existing
/// rows, so validation always passes.
fn random_batch(rng: &mut StdRng, live: &Table) -> UpdateBatch {
    let n_ins = rng.gen_range(0..6usize);
    let inserts: Vec<Vec<Value>> = (0..n_ins)
        .map(|_| {
            decode_row(&[
                rng.gen_range(0..15u32),
                rng.gen_range(0..3u32),
                rng.gen_range(0..6u32),
            ])
        })
        .collect();
    let max_del = live.num_rows().min(4);
    let n_del = if max_del == 0 {
        0
    } else {
        rng.gen_range(0..=max_del)
    };
    // Pick delete victims among live rows, without replacement.
    let mut victims: Vec<usize> = (0..live.num_rows()).collect();
    let mut deletes = Vec::with_capacity(n_del);
    for _ in 0..n_del {
        let pick = rng.gen_range(0..victims.len());
        let row = victims.swap_remove(pick);
        deletes.push(live.row(row));
    }
    UpdateBatch {
        table: "t".to_owned(),
        inserts,
        deletes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Patched histograms == full rebuild, bit for bit, over random
    /// tables, random batches and random epoch counts. The columnar scan
    /// path over the appended delta segments agrees too.
    #[test]
    fn patched_state_is_bit_identical_to_full_rebuild(
        seed in 0u64..u64::MAX / 2,
        rows in 0usize..120,
        epochs in 1usize..5,
        batches_per_epoch in 1usize..4,
        shard_rows in 1usize..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_db(&mut rng, rows);
        let exec = ColumnarExecutor::ingest(&db, &ExecConfig { shard_rows, ..ExecConfig::default() });
        let views = vec![
            ViewDef::histogram("v_a", "t", &["a"]),
            ViewDef::histogram("v_ab", "t", &["a", "b"]),
            ViewDef::clipped("v_clip", "t", "a", 3, 11),
        ];
        let mut patched: Vec<Histogram> = views
            .iter()
            .map(|v| Histogram::materialize(&db, v).unwrap())
            .collect();

        // `sealed_db` mirrors the engine database the real system
        // maintains: updated only at epoch seals. `live` additionally has
        // the pending batches applied (the logical state deletes validate
        // against — used here to pick guaranteed-present delete victims).
        let mut sealed_db = db.clone();
        let mut live = db.table("t").unwrap().clone();
        let mut log = UpdateLog::new();
        let sch = schema();

        for _ in 0..epochs {
            for _ in 0..batches_per_epoch {
                let batch = random_batch(&mut rng, &live);
                if batch.is_empty() {
                    continue;
                }
                let encoded = log
                    .encode_batch(&sealed_db, &batch)
                    .expect("victims are picked from the live state");
                live.apply_encoded_updates(&encoded.inserts, &encoded.deletes)
                    .unwrap();
                log.push_pending(encoded);
            }
            let sealed = log.seal();
            // Incremental path: segments into the executor, patches into
            // the histograms.
            let segments = build_segments(&sealed_db, &sealed.batches);
            exec.append_epoch(sealed.epoch, &segments).unwrap();
            for (view, hist) in views.iter().zip(&mut patched) {
                patch_histogram(hist, view, &sch, &sealed.batches).unwrap();
            }
            // Full-rebuild oracle: apply the sealed batches physically.
            for batch in &sealed.batches {
                sealed_db
                    .table_mut("t")
                    .unwrap()
                    .apply_encoded_updates(&batch.inserts, &batch.deletes)
                    .unwrap();
            }
            sealed_db.advance_epoch();

            // Bit-identical counts after every epoch.
            for (view, hist) in views.iter().zip(&patched) {
                let rebuilt = Histogram::materialize(&sealed_db, view).unwrap();
                prop_assert_eq!(hist, &rebuilt, "view {} epoch {}", &view.name, sealed.epoch);
            }
            // The executor's shared-scan materialisation agrees as well.
            let from_exec = exec.materialize_histograms(&views).unwrap();
            for (hist, exec_hist) in patched.iter().zip(&from_exec) {
                prop_assert_eq!(hist, exec_hist);
            }
        }

        // Scan path: weighted delta segments answer like the rebuilt table.
        for q in [
            Query::count("t"),
            Query::range_count("t", "a", 2, 9),
            Query::sum("t", "c"),
            Query::avg("t", "a"),
        ] {
            let columnar = exec.execute(&q).unwrap();
            let reference = execute(&sealed_db, &q).unwrap().scalar().unwrap();
            prop_assert_eq!(
                columnar.to_bits(),
                reference.to_bits(),
                "{} diverged: {} vs {}",
                q.describe(),
                columnar,
                reference
            );
        }
        prop_assert_eq!(exec.sealed_epoch(), epochs as u64);
    }
}

/// Sealed-epoch delta segments go through the same per-column compression
/// as the base ingest: the appended shard stores *encoded* columns (under
/// the default `Auto` policy a small-domain segment never stays plain),
/// carries its weights, and decodes back to exactly the appended rows.
#[test]
fn sealed_delta_segments_are_stored_encoded() {
    let mut rng = StdRng::seed_from_u64(99);
    let db = random_db(&mut rng, 60);
    let exec = ColumnarExecutor::ingest(&db, &ExecConfig::default());

    let columns: Vec<Vec<u32>> = vec![
        (0..40).map(|i| (i % 15) as u32).collect(),
        (0..40).map(|i| (i % 3) as u32).collect(),
        (0..40).map(|i| (i % 6) as u32).collect(),
    ];
    let weights: Vec<f64> = (0..40)
        .map(|i| if i % 5 == 0 { -1.0 } else { 1.0 })
        .collect();
    exec.append_epoch(
        1,
        &[EpochSegment {
            table: "t".to_owned(),
            columns: columns.clone(),
            weights: weights.clone(),
        }],
    )
    .unwrap();

    exec.with_table("t", |table| {
        let delta: Vec<_> = table.shards().iter().filter(|s| s.epoch() > 0).collect();
        assert_eq!(delta.len(), 1, "one appended shard for the sealed epoch");
        let shard = delta[0];
        assert_eq!(shard.epoch(), 1);
        assert_eq!(shard.weights(), Some(&weights[..]));
        for (pos, expected) in columns.iter().enumerate() {
            let col = shard.column(pos);
            assert_ne!(
                col.kind(),
                EncodingKind::Plain,
                "delta column {pos} must arrive compressed"
            );
            assert_eq!(&col.to_vec(), expected, "column {pos} decodes losslessly");
        }
        assert!(
            shard.encoded_bytes() < shard.plain_bytes(),
            "encoded delta shard is smaller than the plain layout"
        );
    })
    .unwrap();
}
