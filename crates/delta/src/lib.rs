//! # `dprov-delta` — dynamic data: epoch-versioned updates and
//! incremental view maintenance
//!
//! The source paper scopes its provenance-driven budget management to
//! *static* databases and names dynamic data as the open extension. This
//! crate is that extension's data layer:
//!
//! * [`log`] — the [`UpdateLog`]: validated insert/delete batches
//!   accumulate as *pending* state and seal into numbered **epochs**
//!   (epoch 0 is the immutable setup state). Batches carry
//!   domain-index-encoded rows, so sealing is deterministic integer
//!   work — no randomness, no floating-point rounding;
//! * [`maintain`] — **incremental synopsis maintenance**:
//!   [`maintain::patch_histogram`] patches a view's exact histogram from
//!   the delta rows alone (`+1` per insert, `−1` per delete, with the
//!   view's clipping applied), provably **bit-identical** to a full
//!   rebuild because every cell count is exact integer arithmetic in
//!   `f64`;
//! * [`policy`] — the per-epoch **budget policy** for noisy synopses:
//!   [`policy::EpochPolicy::ReNoise`] invalidates every synopsis of a
//!   changed view at the seal (the next query re-buys it through the
//!   normal admission path, so multi-analyst constraints keep holding
//!   across epochs), while [`policy::EpochPolicy::CarryForward`] keeps
//!   serving stale synopses within a bounded number of epochs before
//!   forcing a re-release.
//!
//! The execution side (per-epoch immutable column-store segments appended
//! to the `dprov-exec` shard set) is built from [`log::EncodedBatch`]es
//! via [`log::build_segments`]; the orchestration (WAL-first durability,
//! quiescing analysts at the seal, charging re-releases) lives in
//! `dprov-core` and `dprov-server`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod log;
pub mod maintain;
pub mod policy;

pub use log::{build_segments, DeltaError, EncodedBatch, SealedEpoch, UpdateBatch, UpdateLog};
pub use maintain::patch_histogram;
pub use policy::{EpochPolicy, MaintenanceMode};
