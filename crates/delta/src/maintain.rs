//! Incremental view maintenance: patching exact histograms from delta
//! rows alone.
//!
//! A view's exact histogram is a vector of integer cell counts stored in
//! `f64`. Applying `+1` per inserted row and `−1` per deleted row — with
//! the view's clipping applied exactly as materialisation applies it —
//! yields the same integers a full rebuild over the updated table would
//! produce, and integers up to 2⁵³ are exact in `f64`, so the patched
//! histogram is **bit-identical** to the rebuilt one (the
//! `incremental` proptest suite and `dprov-core`'s `fallback-equivalence`
//! runtime check both enforce this).

use dprov_engine::histogram::Histogram;
use dprov_engine::schema::Schema;
use dprov_engine::view::{flat_index, ViewDef, ViewKind};
use dprov_engine::EngineError;

use crate::log::{DeltaError, EncodedBatch, Result};

/// Patches a view's exact histogram in place from the delta rows of the
/// given batches. Only batches targeting the view's base table
/// contribute; others are skipped. The histogram's dimensions must match
/// the view/schema (they were materialised from it).
pub fn patch_histogram(
    hist: &mut Histogram,
    view: &ViewDef,
    schema: &Schema,
    batches: &[EncodedBatch],
) -> Result<()> {
    let dims = view.dimensions(schema).map_err(DeltaError::Engine)?;
    if dims != hist.dims {
        return Err(DeltaError::Engine(EngineError::InvalidQuery(format!(
            "histogram dimensions {:?} do not match view {} ({:?})",
            hist.dims, view.name, dims
        ))));
    }
    let positions = view.positions(schema).map_err(DeltaError::Engine)?;
    let clip = match view.kind {
        ViewKind::Clipped { lower, upper } => {
            let attr = schema
                .attribute(&view.attributes[0])
                .map_err(DeltaError::Engine)?;
            attr.index_range(lower, upper)
        }
        ViewKind::FullDomainHistogram => None,
    };

    let mut cell = vec![0usize; positions.len()];
    let mut apply = |row: &[u32], weight: f64| {
        for (d, &pos) in positions.iter().enumerate() {
            let mut idx = row[pos] as usize;
            if let Some((lo, hi)) = clip {
                idx = idx.clamp(lo, hi);
            }
            cell[d] = idx;
        }
        hist.counts[flat_index(&dims, &cell)] += weight;
    };
    for batch in batches.iter().filter(|b| b.table == view.table) {
        for row in &batch.inserts {
            apply(row, 1.0);
        }
        for row in &batch.deletes {
            apply(row, -1.0);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::database::Database;
    use dprov_engine::schema::{Attribute, AttributeType};
    use dprov_engine::table::Table;
    use dprov_engine::value::Value;

    fn setup() -> (Database, Schema) {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(20, 24)),
            Attribute::new("sex", AttributeType::categorical(&["F", "M"])),
        ]);
        let mut t = Table::new("adult", schema.clone());
        for (age, sex) in [(20, "F"), (20, "M"), (21, "F"), (24, "M"), (24, "M")] {
            t.insert_row(&[Value::Int(age), Value::text(sex)]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        (db, schema)
    }

    fn batch(inserts: Vec<Vec<u32>>, deletes: Vec<Vec<u32>>) -> EncodedBatch {
        EncodedBatch {
            seq: 0,
            table: "adult".to_owned(),
            inserts,
            deletes,
        }
    }

    #[test]
    fn patch_equals_rebuild_for_plain_and_clipped_views() {
        let (mut db, schema) = setup();
        let views = [
            ViewDef::histogram("v_age", "adult", &["age"]),
            ViewDef::histogram("v_age_sex", "adult", &["age", "sex"]),
            ViewDef::clipped("v_clip", "adult", "age", 21, 23),
        ];
        // Insert (22, F) twice, delete one (24, M).
        let b = batch(vec![vec![2, 0], vec![2, 0]], vec![vec![4, 1]]);

        let mut patched: Vec<Histogram> = views
            .iter()
            .map(|v| Histogram::materialize(&db, v).unwrap())
            .collect();
        for (view, hist) in views.iter().zip(&mut patched) {
            patch_histogram(hist, view, &schema, std::slice::from_ref(&b)).unwrap();
        }

        // Physically rebuild.
        db.table_mut("adult")
            .unwrap()
            .apply_encoded_updates(&b.inserts, &b.deletes)
            .unwrap();
        for (view, hist) in views.iter().zip(&patched) {
            let rebuilt = Histogram::materialize(&db, view).unwrap();
            assert_eq!(hist, &rebuilt, "{}", view.name);
        }
    }

    #[test]
    fn batches_for_other_tables_are_skipped_and_dims_are_checked() {
        let (db, schema) = setup();
        let view = ViewDef::histogram("v_age", "adult", &["age"]);
        let mut hist = Histogram::materialize(&db, &view).unwrap();
        let untouched = hist.clone();
        let other = EncodedBatch {
            seq: 0,
            table: "other".to_owned(),
            inserts: vec![vec![0, 0]],
            deletes: Vec::new(),
        };
        patch_histogram(&mut hist, &view, &schema, &[other]).unwrap();
        assert_eq!(hist, untouched);

        let mut wrong = Histogram {
            view: "v_age".to_owned(),
            dims: vec![3],
            counts: vec![0.0; 3],
        };
        assert!(patch_histogram(&mut wrong, &view, &schema, &[]).is_err());
    }
}
