//! Per-epoch budget policy for noisy synopses, and the maintenance-mode
//! switch the equivalence suites compare.
//!
//! Sealing an epoch changes the data under every view over an updated
//! table. The noisy synopses released against the old data are now
//! answering stale questions; the policy decides what happens to them:
//!
//! * [`EpochPolicy::ReNoise`] — every synopsis of a changed view is
//!   invalidated at the seal. The next query that needs it re-buys a
//!   release **through the normal admission path** (translate → check →
//!   charge → release), so every re-release is charged to the analyst's
//!   provenance row exactly like a first release and the multi-analyst
//!   row/column/table constraints keep holding across epochs. The seal
//!   itself draws no noise and spends no budget — which is what makes
//!   sealing deterministic and replayable.
//! * [`EpochPolicy::CarryForward`] — synopses of changed views keep
//!   serving answers for up to `max_staleness` epochs after the release's
//!   epoch (bounded staleness: answers may reflect data up to that many
//!   seals old, but never spend budget they did not pay). Once the bound
//!   is exceeded the synopsis is invalidated like under `ReNoise`.

use serde::{Deserialize, Serialize};

/// What happens to noisy synopses of a view whose data changed at an
/// epoch seal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EpochPolicy {
    /// Invalidate at the seal; the next query re-buys the release under
    /// the normal admission charging. Freshest answers, highest budget
    /// drain under churn.
    #[default]
    ReNoise,
    /// Keep serving stale synopses for up to `max_staleness` epochs past
    /// the release's epoch, then invalidate. `max_staleness = 0` behaves
    /// like [`EpochPolicy::ReNoise`].
    CarryForward {
        /// How many epochs a stale synopsis may keep serving.
        max_staleness: u64,
    },
}

impl EpochPolicy {
    /// Whether a synopsis released at `entry_epoch` over a view whose data
    /// last changed at `view_data_epoch` may still serve answers at
    /// `current_epoch`.
    ///
    /// A synopsis released at or after the view's last data change is
    /// always fresh (the data it answers is current). A stale one is
    /// retained only within the carry-forward bound.
    #[must_use]
    pub fn retains(&self, entry_epoch: u64, view_data_epoch: u64, current_epoch: u64) -> bool {
        if entry_epoch >= view_data_epoch {
            return true;
        }
        match self {
            EpochPolicy::ReNoise => false,
            EpochPolicy::CarryForward { max_staleness } => {
                current_epoch.saturating_sub(entry_epoch) <= *max_staleness
            }
        }
    }
}

/// How the exact histograms are maintained at a seal. The two modes must
/// be **bit-identical** (the end-to-end epoch-equivalence suite runs the
/// same workload under both); `Incremental` is the production setting,
/// `FullRebuild` the oracle it is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MaintenanceMode {
    /// Patch each changed view's histogram from the delta rows alone.
    #[default]
    Incremental,
    /// Re-materialise each changed view from the updated shard set.
    FullRebuild,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renoise_drops_stale_synopses_immediately() {
        let p = EpochPolicy::ReNoise;
        // Fresh: released at the view's current data epoch.
        assert!(p.retains(3, 3, 3));
        assert!(p.retains(3, 2, 3));
        // Stale: data changed after the release.
        assert!(!p.retains(2, 3, 3));
        assert!(!p.retains(0, 1, 5));
    }

    #[test]
    fn carry_forward_bounds_staleness_in_epochs() {
        let p = EpochPolicy::CarryForward { max_staleness: 2 };
        // Stale but within bound: released at 3, now 5 (staleness 2).
        assert!(p.retains(3, 4, 5));
        // Out of bound: released at 3, now 6.
        assert!(!p.retains(3, 4, 6));
        // Fresh synopses never expire, however old.
        assert!(p.retains(1, 1, 9));
        // Zero bound behaves like ReNoise once data changes.
        let zero = EpochPolicy::CarryForward { max_staleness: 0 };
        assert!(!zero.retains(2, 3, 3));
        assert!(zero.retains(3, 3, 3));
    }
}
