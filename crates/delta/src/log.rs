//! The epoch-versioned update log.
//!
//! Analyst-facing updates arrive as [`UpdateBatch`]es of decoded values.
//! Validation encodes every row against the table schema and checks
//! delete multiplicities against the *logical* table state (base table
//! plus all pending batches), producing an [`EncodedBatch`] — after which
//! everything downstream (WAL frames, delta segments, histogram patches,
//! recovery replay) is deterministic integer work over encoded rows.
//!
//! Sealing drains the pending batches into a numbered [`SealedEpoch`].
//! The log keeps the sealed history so durable snapshots can rebuild the
//! whole segment/histogram state from scratch; because that history grows
//! with the total number of updates, [`UpdateLog::compact_history`] can
//! merge the epochs below a retention watermark into one baseline epoch
//! whose replay is bit-identical to replaying what it replaced.

use serde::{Deserialize, Serialize};

use dprov_engine::database::Database;
use dprov_engine::table::Table;
use dprov_engine::value::Value;
use dprov_engine::EngineError;
use dprov_exec::EpochSegment;

/// Errors raised by update validation and sealing.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// The engine rejected a row (unknown table/attribute, arity mismatch,
    /// value outside the attribute domain).
    Engine(EngineError),
    /// A delete names a row that does not exist in the logical table state
    /// (base table plus pending updates). Accepting it would drive a
    /// histogram cell negative and break rebuild equivalence.
    MissingRow {
        /// The table the delete targeted.
        table: String,
        /// Human-readable rendering of the missing row.
        row: String,
    },
    /// An update batch was empty (no inserts and no deletes).
    EmptyBatch,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Engine(e) => write!(f, "engine error: {e}"),
            DeltaError::MissingRow { table, row } => {
                write!(f, "delete names a row not present in {table}: {row}")
            }
            DeltaError::EmptyBatch => write!(f, "update batch carries no inserts and no deletes"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<EngineError> for DeltaError {
    fn from(e: EngineError) -> Self {
        DeltaError::Engine(e)
    }
}

/// Result alias for the delta layer.
pub type Result<T> = std::result::Result<T, DeltaError>;

/// One analyst-facing update batch: decoded rows to insert and decoded
/// rows to delete (multiset semantics — each delete removes one matching
/// occurrence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch {
    /// The updated table.
    pub table: String,
    /// Rows to insert, in order.
    pub inserts: Vec<Vec<Value>>,
    /// Rows to delete (by full-row value match), in order.
    pub deletes: Vec<Vec<Value>>,
}

impl UpdateBatch {
    /// An insert-only batch.
    #[must_use]
    pub fn insert(table: &str, rows: Vec<Vec<Value>>) -> Self {
        UpdateBatch {
            table: table.to_owned(),
            inserts: rows,
            deletes: Vec::new(),
        }
    }

    /// A delete-only batch.
    #[must_use]
    pub fn delete(table: &str, rows: Vec<Vec<Value>>) -> Self {
        UpdateBatch {
            table: table.to_owned(),
            inserts: Vec::new(),
            deletes: rows,
        }
    }

    /// Total number of rows the batch touches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the batch touches no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A validated, schema-encoded update batch: the durable/wire form. Every
/// cell is the domain index of its value (`u32`), exactly as the engine
/// stores rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedBatch {
    /// Monotone batch sequence number (assigned at submission; WAL frames
    /// and snapshots are reconciled through it).
    pub seq: u64,
    /// The updated table.
    pub table: String,
    /// Encoded rows to insert, in order.
    pub inserts: Vec<Vec<u32>>,
    /// Encoded rows to delete, in order.
    pub deletes: Vec<Vec<u32>>,
}

impl EncodedBatch {
    /// Total number of delta rows (inserts + deletes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the batch touches no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One sealed epoch: its number and the batches it applied, in submission
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SealedEpoch {
    /// The epoch number (1 = first seal after setup).
    pub epoch: u64,
    /// Batches with `seq < through_seq` not in an earlier epoch belong to
    /// this epoch (the recovery reconciliation watermark).
    pub through_seq: u64,
    /// The batches, in submission order.
    pub batches: Vec<EncodedBatch>,
}

fn encode_row(table: &Table, row: &[Value]) -> Result<Vec<u32>> {
    let schema = table.schema();
    if row.len() != schema.arity() {
        return Err(DeltaError::Engine(EngineError::ArityMismatch {
            expected: schema.arity(),
            found: row.len(),
        }));
    }
    let mut encoded = Vec::with_capacity(row.len());
    for (attr, value) in schema.attributes().iter().zip(row) {
        encoded.push(attr.index_of(value).map_err(DeltaError::Engine)? as u32);
    }
    Ok(encoded)
}

/// The epoch-versioned update log: pending validated batches plus the
/// sealed epoch history. Plain serialisable data — this type doubles as
/// the durable snapshot state of the dynamic-data subsystem.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UpdateLog {
    /// The next batch sequence number to assign.
    pub next_seq: u64,
    /// The last sealed epoch (0 = setup state only).
    pub current_epoch: u64,
    /// Validated batches awaiting the next seal, in submission order.
    pub pending: Vec<EncodedBatch>,
    /// Every sealed epoch, in order (rebuilt verbatim at recovery).
    pub sealed: Vec<SealedEpoch>,
}

impl UpdateLog {
    /// An empty log at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        UpdateLog::default()
    }

    /// Validates and encodes a batch against the database, checking every
    /// value's domain membership and every delete's multiplicity against
    /// the logical state (base table + pending batches). Does **not**
    /// enqueue — callers journal the returned batch durably first, then
    /// [`UpdateLog::push_pending`] it.
    ///
    /// Delete validation scans the base table per delete row (`O(rows ×
    /// arity)`), so delete-heavy ingest over very large tables pays a
    /// linear check the `O(delta)` seal does not; a per-table multiset
    /// index maintained at seals is the known follow-up.
    pub fn encode_batch(&self, db: &Database, batch: &UpdateBatch) -> Result<EncodedBatch> {
        if batch.is_empty() {
            return Err(DeltaError::EmptyBatch);
        }
        let table = db.table(&batch.table).map_err(DeltaError::Engine)?;
        let inserts = batch
            .inserts
            .iter()
            .map(|row| encode_row(table, row))
            .collect::<Result<Vec<_>>>()?;
        let deletes = batch
            .deletes
            .iter()
            .map(|row| encode_row(table, row))
            .collect::<Result<Vec<_>>>()?;

        // Multiplicity check: each delete must find a row in the logical
        // state formed by the base table, all pending batches, and the
        // earlier rows of this batch.
        let available = |row: &[u32]| -> Result<i64> {
            let base = table.count_encoded_rows(row).map_err(DeltaError::Engine)? as i64;
            let mut net = base;
            for pending in self.pending.iter().filter(|b| b.table == batch.table) {
                net += pending
                    .inserts
                    .iter()
                    .filter(|r| r.as_slice() == row)
                    .count() as i64;
                net -= pending
                    .deletes
                    .iter()
                    .filter(|r| r.as_slice() == row)
                    .count() as i64;
            }
            Ok(net)
        };
        for (i, row) in deletes.iter().enumerate() {
            let mut net = available(row)?;
            net += inserts
                .iter()
                .filter(|r| r.as_slice() == row.as_slice())
                .count() as i64;
            net -= deletes[..i]
                .iter()
                .filter(|r| r.as_slice() == row.as_slice())
                .count() as i64;
            if net <= 0 {
                return Err(DeltaError::MissingRow {
                    table: batch.table.clone(),
                    row: format!("{:?}", batch.deletes[i]),
                });
            }
        }

        Ok(EncodedBatch {
            seq: self.next_seq,
            table: batch.table.clone(),
            inserts,
            deletes,
        })
    }

    /// Enqueues a validated batch (after its WAL frame is durable). The
    /// batch's `seq` must be the log's `next_seq` — callers hold one lock
    /// across encode → journal → push, so this is an internal sequencing
    /// invariant, not an input condition.
    ///
    /// # Panics
    ///
    /// Panics when the sequence number is out of order.
    pub fn push_pending(&mut self, batch: EncodedBatch) {
        assert_eq!(
            batch.seq, self.next_seq,
            "update batches must be sequential"
        );
        self.next_seq = batch.seq + 1;
        self.pending.push(batch);
    }

    /// Re-enqueues a batch during recovery replay (sequence numbers come
    /// from the write-ahead ledger and may skip voided ranges).
    pub fn replay_pending(&mut self, batch: EncodedBatch) {
        self.next_seq = self.next_seq.max(batch.seq + 1);
        self.pending.push(batch);
    }

    /// Seals the pending batches into the next epoch and records it in the
    /// history. An empty pending set still seals (an empty epoch), which
    /// keeps epoch numbering deterministic under replay.
    pub fn seal(&mut self) -> SealedEpoch {
        self.current_epoch += 1;
        let sealed = SealedEpoch {
            epoch: self.current_epoch,
            through_seq: self.next_seq,
            batches: std::mem::take(&mut self.pending),
        };
        self.sealed.push(sealed.clone());
        sealed
    }

    /// Merges every sealed epoch at or below `watermark` into one
    /// baseline epoch, capping the history a snapshot has to carry.
    /// Returns the number of epochs merged away (0 when fewer than two
    /// epochs sit at or below the watermark).
    ///
    /// The merged epoch keeps the **last** merged epoch's number and
    /// `through_seq` and concatenates every merged epoch's batches in
    /// seal order, so replaying it applies exactly the same encoded rows
    /// in exactly the same order as replaying the epochs it replaced —
    /// segment rows, histogram patches and recovered answers stay
    /// bit-identical (delta arithmetic is integer-exact, and the
    /// executor fast-forwards the skipped epoch numbers with empty
    /// segments). `current_epoch`, `next_seq` and the pending set are
    /// untouched: compaction rewrites history, never state.
    pub fn compact_history(&mut self, watermark: u64) -> usize {
        let split = self.sealed.partition_point(|e| e.epoch <= watermark);
        if split < 2 {
            return 0;
        }
        let tail = self.sealed.split_off(split);
        let last = self.sealed.last().expect("split >= 2");
        let (epoch, through_seq) = (last.epoch, last.through_seq);
        let merged = SealedEpoch {
            epoch,
            through_seq,
            batches: self.sealed.drain(..).flat_map(|e| e.batches).collect(),
        };
        self.sealed.push(merged);
        self.sealed.extend(tail);
        split - 1
    }

    /// Tables touched by the given batches, in first-appearance order.
    #[must_use]
    pub fn touched_tables(batches: &[EncodedBatch]) -> Vec<String> {
        let mut tables: Vec<String> = Vec::new();
        for batch in batches {
            if !tables.contains(&batch.table) {
                tables.push(batch.table.clone());
            }
        }
        tables
    }

    /// Total updates (rows) across pending and sealed state.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.pending.iter().map(EncodedBatch::len).sum::<usize>()
            + self
                .sealed
                .iter()
                .flat_map(|e| e.batches.iter())
                .map(EncodedBatch::len)
                .sum::<usize>()
    }
}

/// Builds the per-table delta segments of one epoch from its batches:
/// rows appear in submission order, each batch's inserts (weight `+1`)
/// before its deletes (weight `−1`). The fixed order is what makes seal
/// replay bit-identical.
#[must_use]
pub fn build_segments(db: &Database, batches: &[EncodedBatch]) -> Vec<EpochSegment> {
    let mut segments: Vec<EpochSegment> = Vec::new();
    for batch in batches {
        let arity = db
            .table(&batch.table)
            .map(|t| t.schema().arity())
            .unwrap_or(0);
        let segment = match segments.iter_mut().find(|s| s.table == batch.table) {
            Some(s) => s,
            None => {
                segments.push(EpochSegment {
                    table: batch.table.clone(),
                    columns: vec![Vec::new(); arity],
                    weights: Vec::new(),
                });
                segments.last_mut().expect("just pushed")
            }
        };
        for row in &batch.inserts {
            for (col, &v) in segment.columns.iter_mut().zip(row) {
                col.push(v);
            }
            segment.weights.push(1.0);
        }
        for row in &batch.deletes {
            for (col, &v) in segment.columns.iter_mut().zip(row) {
                col.push(v);
            }
            segment.weights.push(-1.0);
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_engine::schema::{Attribute, AttributeType, Schema};

    fn db() -> Database {
        let schema = Schema::new(vec![
            Attribute::new("age", AttributeType::integer(20, 29)),
            Attribute::new("sex", AttributeType::categorical(&["F", "M"])),
        ]);
        let mut t = Table::new("adult", schema);
        for (age, sex) in [(20, "F"), (25, "M"), (25, "M"), (27, "F")] {
            t.insert_row(&[Value::Int(age), Value::text(sex)]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    fn row(age: i64, sex: &str) -> Vec<Value> {
        vec![Value::Int(age), Value::text(sex)]
    }

    #[test]
    fn encode_validates_domains_and_arity() {
        let db = db();
        let log = UpdateLog::new();
        let ok = log
            .encode_batch(&db, &UpdateBatch::insert("adult", vec![row(22, "F")]))
            .unwrap();
        assert_eq!(ok.seq, 0);
        assert_eq!(ok.inserts, vec![vec![2, 0]]);
        assert!(matches!(
            log.encode_batch(&db, &UpdateBatch::insert("nope", vec![row(22, "F")])),
            Err(DeltaError::Engine(EngineError::UnknownTable(_)))
        ));
        assert!(matches!(
            log.encode_batch(&db, &UpdateBatch::insert("adult", vec![row(99, "F")])),
            Err(DeltaError::Engine(EngineError::ValueOutOfDomain { .. }))
        ));
        assert!(matches!(
            log.encode_batch(
                &db,
                &UpdateBatch::insert("adult", vec![vec![Value::Int(22)]])
            ),
            Err(DeltaError::Engine(EngineError::ArityMismatch { .. }))
        ));
        assert!(matches!(
            log.encode_batch(&db, &UpdateBatch::insert("adult", Vec::new())),
            Err(DeltaError::EmptyBatch)
        ));
    }

    #[test]
    fn delete_multiplicity_counts_base_pending_and_intra_batch_state() {
        let db = db();
        let mut log = UpdateLog::new();
        // Two (25, M) rows exist: deleting two is fine, three is not.
        let two = UpdateBatch::delete("adult", vec![row(25, "M"), row(25, "M")]);
        assert!(log.encode_batch(&db, &two).is_ok());
        let three = UpdateBatch::delete("adult", vec![row(25, "M"), row(25, "M"), row(25, "M")]);
        assert!(matches!(
            log.encode_batch(&db, &three),
            Err(DeltaError::MissingRow { .. })
        ));
        // An intra-batch insert makes the third delete legal.
        let mixed = UpdateBatch {
            table: "adult".to_owned(),
            inserts: vec![row(25, "M")],
            deletes: vec![row(25, "M"), row(25, "M"), row(25, "M")],
        };
        assert!(log.encode_batch(&db, &mixed).is_ok());
        // A pending delete consumes multiplicity for later batches.
        let first = log.encode_batch(&db, &two).unwrap();
        log.push_pending(first);
        assert!(matches!(
            log.encode_batch(&db, &UpdateBatch::delete("adult", vec![row(25, "M")])),
            Err(DeltaError::MissingRow { .. })
        ));
        // ...and a pending insert provides it.
        let ins = log
            .encode_batch(&db, &UpdateBatch::insert("adult", vec![row(21, "F")]))
            .unwrap();
        log.push_pending(ins);
        assert!(log
            .encode_batch(&db, &UpdateBatch::delete("adult", vec![row(21, "F")]))
            .is_ok());
    }

    #[test]
    fn seal_drains_pending_into_numbered_epochs() {
        let db = db();
        let mut log = UpdateLog::new();
        let b0 = log
            .encode_batch(&db, &UpdateBatch::insert("adult", vec![row(21, "F")]))
            .unwrap();
        log.push_pending(b0);
        let e1 = log.seal();
        assert_eq!(e1.epoch, 1);
        assert_eq!(e1.through_seq, 1);
        assert_eq!(e1.batches.len(), 1);
        assert!(log.pending.is_empty());
        assert_eq!(log.current_epoch, 1);
        // Empty seal still advances the epoch.
        let e2 = log.seal();
        assert_eq!(e2.epoch, 2);
        assert!(e2.batches.is_empty());
        assert_eq!(log.sealed.len(), 2);
        assert_eq!(log.total_rows(), 1);
    }

    #[test]
    fn compact_history_merges_epochs_below_the_watermark() {
        let db = db();
        let mut log = UpdateLog::new();
        for rows in [vec![row(21, "F")], vec![row(22, "M")], vec![row(23, "F")]] {
            let b = log
                .encode_batch(&db, &UpdateBatch::insert("adult", rows))
                .unwrap();
            log.push_pending(b);
            log.seal();
        }
        // Watermark below the second epoch: nothing to merge.
        assert_eq!(log.clone().compact_history(0), 0);
        assert_eq!(log.clone().compact_history(1), 0);
        let rows_before = log.total_rows();
        assert_eq!(log.compact_history(2), 1);
        assert_eq!(log.sealed.len(), 2);
        let merged = &log.sealed[0];
        assert_eq!(merged.epoch, 2);
        assert_eq!(merged.through_seq, 2);
        // Batches of epochs 1 and 2, in seal order.
        assert_eq!(
            merged.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(log.sealed[1].epoch, 3);
        assert_eq!(log.current_epoch, 3);
        assert_eq!(log.total_rows(), rows_before);
        // Idempotent at the same watermark; a later watermark folds the
        // baseline and the next epoch together.
        assert_eq!(log.compact_history(2), 0);
        assert_eq!(log.compact_history(3), 1);
        assert_eq!(log.sealed.len(), 1);
        assert_eq!(log.sealed[0].epoch, 3);
    }

    #[test]
    fn segments_order_rows_and_group_tables() {
        let db = db();
        let mut log = UpdateLog::new();
        let b0 = log
            .encode_batch(
                &db,
                &UpdateBatch {
                    table: "adult".to_owned(),
                    inserts: vec![row(21, "F"), row(22, "M")],
                    deletes: vec![row(20, "F")],
                },
            )
            .unwrap();
        log.push_pending(b0);
        let b1 = log
            .encode_batch(&db, &UpdateBatch::insert("adult", vec![row(29, "M")]))
            .unwrap();
        log.push_pending(b1);
        let sealed = log.seal();
        let segments = build_segments(&db, &sealed.batches);
        assert_eq!(segments.len(), 1);
        let s = &segments[0];
        assert_eq!(s.table, "adult");
        // Batch 0 inserts, batch 0 delete, batch 1 insert — in order.
        assert_eq!(s.weights, vec![1.0, 1.0, -1.0, 1.0]);
        assert_eq!(s.columns[0], vec![1, 2, 0, 9]);
        assert_eq!(s.columns[1], vec![0, 1, 0, 1]);
        assert_eq!(UpdateLog::touched_tables(&sealed.batches), vec!["adult"]);
    }
}
