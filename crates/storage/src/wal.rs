//! The write-ahead ledger: checksummed, fsync'd, torn-tail tolerant.
//!
//! # File format
//!
//! ```text
//! magic "DPWAL001" (8 bytes)
//! frame*            where frame = [len: u32][crc32(payload): u32][payload]
//! ```
//!
//! Each payload is one [`WalRecord`], tag byte first. Appends write the
//! whole frame in one `write_all` and (in fsync mode) `sync_data` before
//! returning, which is what lets the admission path treat a returned
//! append as *durable*.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a partial frame at the tail. [`scan`] stops at
//! the first frame whose length, checksum or payload fails verification,
//! returns every record before it plus the byte offset of the damage, and
//! the writer truncates the file back to that offset before appending
//! again. A record is therefore either wholly in the recovered history or
//! wholly absent — never half-applied.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dprov_core::analyst::AnalystId;
use dprov_core::mechanism::MechanismKind;
use dprov_core::recorder::{AccessRecord, CommitRecord};
use dprov_core::StorageError;
use dprov_delta::EncodedBatch;
use dprov_dp::rng::RngCheckpoint;

use crate::codec::{crc32, Decoder, Encoder};

/// Magic bytes opening every write-ahead ledger file.
pub const WAL_MAGIC: &[u8; 8] = b"DPWAL001";

/// Upper bound on one frame's payload; anything larger is corruption.
const MAX_PAYLOAD: u32 = 64 << 20;

const TAG_COMMIT: u8 = 1;
const TAG_ACCESS: u8 = 2;
const TAG_ROLLBACK: u8 = 3;
const TAG_SESSION: u8 = 4;
const TAG_SESSION_CLOSED: u8 = 5;
const TAG_FINGERPRINT: u8 = 6;
const TAG_UPDATE: u8 = 7;
const TAG_EPOCH_SEAL: u8 = 8;

/// A persisted position of one analyst session's deterministic noise
/// stream. Recovery rebuilds the session's generator fast-forwarded to
/// this checkpoint, so a restarted service continues each stream instead
/// of reusing randomness the crashed process already consumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionCheckpoint {
    /// The session id (also the RNG stream number).
    pub session: u64,
    /// The analyst the session belongs to.
    pub analyst: AnalystId,
    /// The session RNG's stream position.
    pub rng: RngCheckpoint,
}

/// One record of the write-ahead ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed admission charge (appended before the in-memory commit).
    Commit(CommitRecord),
    /// A data access journalled for the tight accountant.
    Access(AccessRecord),
    /// A tombstone voiding the commit with this sequence number (its
    /// release failed after the reserve and memory was rolled back).
    Rollback {
        /// The voided commit's sequence number.
        seq: u64,
    },
    /// A session noise-stream checkpoint (latest per session id wins).
    Session(SessionCheckpoint),
    /// A session was closed or expired; recovery drops its checkpoint.
    SessionClosed {
        /// The closed session id.
        session: u64,
    },
    /// The configuration fingerprint binding this ledger to one system
    /// configuration. Written as the first frame of a fresh ledger so
    /// WAL-only recovery (no snapshot yet) can refuse a mismatched
    /// system just like snapshot recovery does.
    Fingerprint {
        /// See `crate::store::config_fingerprint`.
        fingerprint: u64,
    },
    /// One validated update batch (appended before it becomes pending in
    /// memory). Rows are domain-index encoded, so replay is deterministic
    /// integer work.
    Update(EncodedBatch),
    /// An epoch seal: every update batch with `seq < through_seq` not
    /// sealed earlier belongs to `epoch`. Appended before the seal is
    /// applied in memory; a crash *between* update frames and this frame
    /// recovers the updates as pending, at the previous sealed epoch.
    EpochSeal {
        /// The sealed epoch's number.
        epoch: u64,
        /// The batch-sequence watermark the seal covers.
        through_seq: u64,
    },
}

impl WalRecord {
    /// Encodes the record payload (tag byte first).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            WalRecord::Commit(c) => {
                enc.put_u8(TAG_COMMIT);
                enc.put_u64(c.seq);
                enc.put_u64(c.analyst.0 as u64);
                enc.put_str(&c.view);
                enc.put_u8(c.mechanism.code());
                enc.put_f64(c.prev_entry);
                enc.put_f64(c.new_entry);
                enc.put_f64(c.charged);
            }
            WalRecord::Access(a) => {
                enc.put_u8(TAG_ACCESS);
                enc.put_u64(a.seq);
                enc.put_f64(a.epsilon);
                enc.put_f64(a.sigma);
                enc.put_f64(a.sensitivity);
            }
            WalRecord::Rollback { seq } => {
                enc.put_u8(TAG_ROLLBACK);
                enc.put_u64(*seq);
            }
            WalRecord::Session(s) => {
                enc.put_u8(TAG_SESSION);
                enc.put_u64(s.session);
                enc.put_u64(s.analyst.0 as u64);
                enc.put_u64(s.rng.draws);
                enc.put_opt_f64(s.rng.spare_normal);
            }
            WalRecord::SessionClosed { session } => {
                enc.put_u8(TAG_SESSION_CLOSED);
                enc.put_u64(*session);
            }
            WalRecord::Fingerprint { fingerprint } => {
                enc.put_u8(TAG_FINGERPRINT);
                enc.put_u64(*fingerprint);
            }
            WalRecord::Update(batch) => {
                enc.put_u8(TAG_UPDATE);
                enc.put_u64(batch.seq);
                enc.put_str(&batch.table);
                enc.put_u32_rows(&batch.inserts);
                enc.put_u32_rows(&batch.deletes);
            }
            WalRecord::EpochSeal { epoch, through_seq } => {
                enc.put_u8(TAG_EPOCH_SEAL);
                enc.put_u64(*epoch);
                enc.put_u64(*through_seq);
            }
        }
        enc.into_bytes()
    }

    /// Decodes a payload produced by [`Self::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut dec = Decoder::new(payload);
        let record = match dec.take_u8()? {
            TAG_COMMIT => WalRecord::Commit(CommitRecord {
                seq: dec.take_u64()?,
                analyst: AnalystId(dec.take_u64()? as usize),
                view: dec.take_str()?,
                mechanism: {
                    let code = dec.take_u8()?;
                    MechanismKind::from_code(code)
                        .ok_or_else(|| format!("unknown mechanism code {code}"))?
                },
                prev_entry: dec.take_f64()?,
                new_entry: dec.take_f64()?,
                charged: dec.take_f64()?,
            }),
            TAG_ACCESS => WalRecord::Access(AccessRecord {
                seq: dec.take_u64()?,
                epsilon: dec.take_f64()?,
                sigma: dec.take_f64()?,
                sensitivity: dec.take_f64()?,
            }),
            TAG_ROLLBACK => WalRecord::Rollback {
                seq: dec.take_u64()?,
            },
            TAG_SESSION => WalRecord::Session(SessionCheckpoint {
                session: dec.take_u64()?,
                analyst: AnalystId(dec.take_u64()? as usize),
                rng: RngCheckpoint {
                    draws: dec.take_u64()?,
                    spare_normal: dec.take_opt_f64()?,
                },
            }),
            TAG_SESSION_CLOSED => WalRecord::SessionClosed {
                session: dec.take_u64()?,
            },
            TAG_FINGERPRINT => WalRecord::Fingerprint {
                fingerprint: dec.take_u64()?,
            },
            TAG_UPDATE => WalRecord::Update(EncodedBatch {
                seq: dec.take_u64()?,
                table: dec.take_str()?,
                inserts: dec.take_u32_rows()?,
                deletes: dec.take_u32_rows()?,
            }),
            TAG_EPOCH_SEAL => WalRecord::EpochSeal {
                epoch: dec.take_u64()?,
                through_seq: dec.take_u64()?,
            },
            tag => return Err(format!("unknown record tag {tag}")),
        };
        if !dec.is_empty() {
            return Err(format!("{} trailing bytes after record", dec.remaining()));
        }
        Ok(record)
    }

    /// Encodes the record as a complete frame (`len + crc + payload`).
    #[must_use]
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// The result of scanning a ledger file: every verifiable record, the byte
/// offset up to which the file is intact, and — when the tail failed
/// verification — the typed error describing the damage.
#[derive(Debug)]
pub struct WalScan {
    /// Records in append order, up to the first damaged frame.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last intact frame.
    pub valid_len: u64,
    /// The damage that ended the scan, if any (torn tail or bit-flip).
    pub corruption: Option<StorageError>,
}

fn io_err(e: &std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

fn corrupt(offset: u64, reason: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        file: "wal".to_owned(),
        offset,
        reason: reason.into(),
    }
}

/// Scans a ledger file. A missing file yields an empty scan; a damaged
/// *header* (magic) is a hard error — nothing after it can be trusted —
/// while damage *after* any number of intact frames ends the scan there
/// and is reported in [`WalScan::corruption`] (the standard torn-tail
/// outcome recovery discards).
pub fn scan(path: &Path) -> Result<WalScan, StorageError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
                corruption: None,
            })
        }
        Err(e) => return Err(io_err(&e)),
    };
    if bytes.is_empty() {
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            corruption: None,
        });
    }
    if bytes.len() < WAL_MAGIC.len() {
        // A first-open crash can tear the magic write itself. A short
        // prefix of the magic provably holds no records, so treat it as a
        // fresh ledger (the writer reinitialises it) instead of bricking
        // the store; any other short content is unidentifiable damage.
        if WAL_MAGIC.starts_with(&bytes) {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
                corruption: None,
            });
        }
        return Err(corrupt(0, "bad or truncated ledger magic"));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(corrupt(0, "bad or truncated ledger magic"));
    }

    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    let mut corruption = None;
    while offset < bytes.len() {
        let at = offset as u64;
        if bytes.len() - offset < 8 {
            corruption = Some(corrupt(at, "torn frame header"));
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            corruption = Some(corrupt(at, format!("frame length {len} exceeds maximum")));
            break;
        }
        let body_start = offset + 8;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            corruption = Some(corrupt(at, "torn frame payload"));
            break;
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            corruption = Some(corrupt(at, "frame checksum mismatch"));
            break;
        }
        match WalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(reason) => {
                corruption = Some(corrupt(at, format!("undecodable record: {reason}")));
                break;
            }
        }
        offset = body_end;
    }
    Ok(WalScan {
        records,
        valid_len: offset as u64,
        corruption,
    })
}

/// An append handle over a ledger file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync: bool,
    len: u64,
    /// Observability handle (disabled unless attached): append/fsync
    /// latency histograms and counters. Recording happens after the I/O
    /// completes and never changes what is written.
    metrics: dprov_obs::MetricsRegistry,
}

impl WalWriter {
    /// Opens (creating if absent) a ledger for appending, first truncating
    /// any torn tail found by a scan. Returns the writer positioned at the
    /// end of the intact prefix.
    pub fn open(path: &Path, fsync: bool, valid_len: u64) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(&e))?;
        let disk_len = file.metadata().map_err(|e| io_err(&e))?.len();
        let mut len = valid_len;
        if len < WAL_MAGIC.len() as u64 {
            // Fresh file, or a first-open crash tore the magic write:
            // reinitialise the header (there are provably no records).
            file.set_len(0).map_err(|e| io_err(&e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| io_err(&e))?;
            file.write_all(WAL_MAGIC).map_err(|e| io_err(&e))?;
            if fsync {
                file.sync_data().map_err(|e| io_err(&e))?;
            }
            len = WAL_MAGIC.len() as u64;
        } else if disk_len > valid_len {
            // Discard the torn suffix so new frames never follow damage.
            file.set_len(valid_len).map_err(|e| io_err(&e))?;
            if fsync {
                file.sync_data().map_err(|e| io_err(&e))?;
            }
        }
        file.seek(SeekFrom::Start(len)).map_err(|e| io_err(&e))?;
        Ok(WalWriter {
            file,
            path: path.to_owned(),
            fsync,
            len,
            metrics: dprov_obs::MetricsRegistry::disabled(),
        })
    }

    /// Attaches an observability registry; subsequent appends record
    /// their write and fsync latency into it.
    pub fn set_metrics(&mut self, metrics: dprov_obs::MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Appends one record; durable on return when fsync mode is on.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        use dprov_obs::{CounterId, HistId};
        let frame = record.encode_frame();
        let append_start = self.metrics.start();
        self.file.write_all(&frame).map_err(|e| io_err(&e))?;
        if let Some(t0) = append_start {
            self.metrics
                .observe_duration(HistId::WalAppend, t0.elapsed());
            self.metrics.incr(CounterId::WalAppends);
        }
        if self.fsync {
            let fsync_start = self.metrics.start();
            self.file.sync_data().map_err(|e| io_err(&e))?;
            if let Some(t0) = fsync_start {
                self.metrics
                    .observe_duration(HistId::WalFsync, t0.elapsed());
                self.metrics.incr(CounterId::WalFsyncs);
            }
        }
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Current byte length of the intact ledger.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the ledger holds no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Truncates the ledger back to just its magic header (after a
    /// snapshot has captured everything the frames said).
    pub fn truncate_to_header(&mut self) -> Result<(), StorageError> {
        let header = WAL_MAGIC.len() as u64;
        self.file.set_len(header).map_err(|e| io_err(&e))?;
        self.file
            .seek(SeekFrom::Start(header))
            .map_err(|e| io_err(&e))?;
        if self.fsync {
            self.file.sync_data().map_err(|e| io_err(&e))?;
        }
        self.len = header;
        Ok(())
    }

    /// Writes only the first `keep` bytes of a record's frame *without*
    /// sync — simulating a crash in the middle of an append. Crash-testing
    /// support for the failpoint harness; a real writer never calls this.
    pub fn append_torn(&mut self, record: &WalRecord, keep: usize) -> Result<(), StorageError> {
        let frame = record.encode_frame();
        let keep = keep.min(frame.len().saturating_sub(1)).max(1);
        self.file
            .write_all(&frame[..keep])
            .map_err(|e| io_err(&e))?;
        self.len += keep as u64;
        Ok(())
    }

    /// The ledger file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;

    fn commit(seq: u64) -> WalRecord {
        WalRecord::Commit(CommitRecord {
            seq,
            analyst: AnalystId(1),
            view: "adult.age".to_owned(),
            mechanism: MechanismKind::AdditiveGaussian,
            prev_entry: 0.25,
            new_entry: 0.5,
            charged: 0.25,
        })
    }

    #[test]
    fn records_round_trip_through_payload_encoding() {
        let records = vec![
            commit(3),
            WalRecord::Access(AccessRecord {
                seq: 3,
                epsilon: 0.5,
                sigma: 12.5,
                sensitivity: std::f64::consts::SQRT_2,
            }),
            WalRecord::Rollback { seq: 9 },
            WalRecord::Session(SessionCheckpoint {
                session: 4,
                analyst: AnalystId(0),
                rng: RngCheckpoint {
                    draws: 1234,
                    spare_normal: Some(-0.75),
                },
            }),
            WalRecord::SessionClosed { session: 4 },
            WalRecord::Update(EncodedBatch {
                seq: 17,
                table: "adult".to_owned(),
                inserts: vec![vec![1, 2, 3], vec![4, 5, 6]],
                deletes: vec![vec![7, 8, 9]],
            }),
            WalRecord::Update(EncodedBatch {
                seq: 18,
                table: "empty-rows".to_owned(),
                inserts: vec![Vec::new()],
                deletes: Vec::new(),
            }),
            WalRecord::EpochSeal {
                epoch: 3,
                through_seq: 19,
            },
        ];
        for record in records {
            assert_eq!(WalRecord::decode(&record.encode()).unwrap(), record);
        }
        assert!(WalRecord::decode(&[99]).is_err());
        assert!(WalRecord::decode(&[]).is_err());
    }

    #[test]
    fn append_scan_round_trips_and_missing_file_is_empty() {
        let dir = scratch_dir("wal-roundtrip");
        let path = dir.join("wal.log");
        let empty = scan(&path).unwrap();
        assert!(empty.records.is_empty() && empty.corruption.is_none());

        let mut writer = WalWriter::open(&path, true, 0).unwrap();
        for seq in 0..5 {
            writer.append(&commit(seq)).unwrap();
        }
        drop(writer);
        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 5);
        assert!(scanned.corruption.is_none());
        assert_eq!(scanned.records[2], commit(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_reopen() {
        let dir = scratch_dir("wal-torn");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::open(&path, false, 0).unwrap();
        writer.append(&commit(0)).unwrap();
        writer.append(&commit(1)).unwrap();
        writer.append_torn(&commit(2), 7).unwrap();
        drop(writer);

        let scanned = scan(&path).unwrap();
        assert_eq!(scanned.records.len(), 2);
        assert!(matches!(
            scanned.corruption,
            Some(StorageError::Corrupt { ref file, .. }) if file == "wal"
        ));

        // Reopening truncates the damage; the next append lands cleanly.
        let mut writer = WalWriter::open(&path, false, scanned.valid_len).unwrap();
        writer.append(&commit(2)).unwrap();
        drop(writer);
        let rescanned = scan(&path).unwrap();
        assert_eq!(rescanned.records.len(), 3);
        assert!(rescanned.corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_is_a_hard_error() {
        let dir = scratch_dir("wal-magic");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"NOTAWAL!garbage").unwrap();
        assert!(matches!(
            scan(&path),
            Err(StorageError::Corrupt { offset: 0, .. })
        ));
        // A short file that is NOT a magic prefix is also hard damage.
        std::fs::write(&path, b"XYZ").unwrap();
        assert!(matches!(
            scan(&path),
            Err(StorageError::Corrupt { offset: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_magic_from_a_first_open_crash_reinitialises() {
        let dir = scratch_dir("wal-torn-magic");
        let path = dir.join("wal.log");
        // A crash mid-way through the very first header write.
        std::fs::write(&path, &WAL_MAGIC[..3]).unwrap();
        let scanned = scan(&path).unwrap();
        assert!(scanned.records.is_empty());
        assert!(scanned.corruption.is_none());
        assert_eq!(scanned.valid_len, 0);
        // The writer reinitialises and the ledger works normally.
        let mut writer = WalWriter::open(&path, false, scanned.valid_len).unwrap();
        writer.append(&commit(0)).unwrap();
        drop(writer);
        let rescanned = scan(&path).unwrap();
        assert_eq!(rescanned.records.len(), 1);
        assert!(rescanned.corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
