//! Versioned snapshots of the full durable state.
//!
//! A snapshot captures everything the write-ahead ledger's frames would
//! rebuild — provenance entries, per-mechanism ledger buckets, the tight
//! accountant's access history, the synopsis cache and the session
//! noise-stream checkpoints — so the ledger can be truncated after one is
//! written.
//!
//! # File format
//!
//! ```text
//! magic "DPSNAP01" (8 bytes)
//! version: u32
//! body_len: u64
//! body (body_len bytes)
//! crc32(body): u32
//! ```
//!
//! Snapshots are written to a temp file, fsync'd and atomically renamed
//! over the previous one, so a crash mid-snapshot leaves the old snapshot
//! intact. Floats are stored as raw IEEE-754 bits: a recovered system's
//! budget state is bit-exact.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use dprov_core::analyst::AnalystId;
use dprov_core::mechanism::MechanismKind;
use dprov_core::recorder::{
    AccessRecord, CoreState, GlobalSynopsisState, LedgerEntryState, LocalSynopsisState,
    ProvenanceEntryState, ViewCacheState,
};
use dprov_core::StorageError;
use dprov_delta::{EncodedBatch, SealedEpoch, UpdateLog};
use dprov_dp::rng::RngCheckpoint;

use crate::codec::{crc32, Decoder, Encoder};
use crate::wal::SessionCheckpoint;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"DPSNAP01";

/// Newest snapshot format version this build reads and writes. Version 2
/// added the dynamic-data state (synopsis release epochs and the update
/// log); version-1 snapshots still read, with every epoch defaulting to 0
/// and an empty update log.
pub const SNAPSHOT_VERSION: u32 = 2;

/// A full durable-state snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotState {
    /// Fingerprint of the system configuration that produced the state
    /// (see [`crate::store::config_fingerprint`]); recovery refuses a
    /// snapshot whose fingerprint does not match the live system.
    pub fingerprint: u64,
    /// The core system state (provenance, ledger, accesses, synopses).
    pub core: CoreState,
    /// Session noise-stream checkpoints, one per live session.
    pub sessions: Vec<SessionCheckpoint>,
    /// The next session id the registry would assign.
    pub next_session_id: u64,
}

fn io_err(e: &std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

fn corrupt(offset: u64, reason: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        file: "snapshot".to_owned(),
        offset,
        reason: reason.into(),
    }
}

fn encode_body(state: &SnapshotState) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(state.fingerprint);
    enc.put_u64(state.core.next_seq);

    enc.put_u32(state.core.provenance.len() as u32);
    for entry in &state.core.provenance {
        enc.put_u64(entry.analyst.0 as u64);
        enc.put_str(&entry.view);
        enc.put_f64(entry.epsilon);
    }

    enc.put_u32(state.core.ledger.len() as u32);
    for entry in &state.core.ledger {
        enc.put_u64(entry.analyst.0 as u64);
        enc.put_u8(entry.mechanism.code());
        enc.put_f64(entry.epsilon);
        enc.put_f64(entry.delta);
    }
    enc.put_u64(state.core.ledger_releases);

    enc.put_u32(state.core.accesses.len() as u32);
    for access in &state.core.accesses {
        enc.put_u64(access.seq);
        enc.put_f64(access.epsilon);
        enc.put_f64(access.sigma);
        enc.put_f64(access.sensitivity);
    }

    enc.put_u32(state.core.synopses.len() as u32);
    for view in &state.core.synopses {
        enc.put_str(&view.view);
        match &view.global {
            Some(g) => {
                enc.put_u8(1);
                enc.put_f64(g.epsilon);
                enc.put_f64(g.variance);
                enc.put_u64(g.epoch);
                enc.put_f64_slice(&g.counts);
            }
            None => enc.put_u8(0),
        }
        enc.put_u32(view.locals.len() as u32);
        for local in &view.locals {
            enc.put_u64(local.analyst as u64);
            enc.put_f64(local.epsilon);
            enc.put_f64(local.variance);
            enc.put_u64(local.epoch);
            enc.put_f64_slice(&local.counts);
        }
    }

    enc.put_u32(state.sessions.len() as u32);
    for session in &state.sessions {
        enc.put_u64(session.session);
        enc.put_u64(session.analyst.0 as u64);
        enc.put_u64(session.rng.draws);
        enc.put_opt_f64(session.rng.spare_normal);
    }
    enc.put_u64(state.next_session_id);

    // Version 2: the dynamic-data update log (pending + sealed history).
    enc.put_u64(state.core.deltas.next_seq);
    enc.put_u64(state.core.deltas.current_epoch);
    put_batches(&mut enc, &state.core.deltas.pending);
    enc.put_u32(state.core.deltas.sealed.len() as u32);
    for epoch in &state.core.deltas.sealed {
        enc.put_u64(epoch.epoch);
        enc.put_u64(epoch.through_seq);
        put_batches(&mut enc, &epoch.batches);
    }
    enc.into_bytes()
}

fn put_batches(enc: &mut Encoder, batches: &[EncodedBatch]) {
    enc.put_u32(batches.len() as u32);
    for batch in batches {
        enc.put_u64(batch.seq);
        enc.put_str(&batch.table);
        enc.put_u32_rows(&batch.inserts);
        enc.put_u32_rows(&batch.deletes);
    }
}

fn take_batches(dec: &mut Decoder<'_>) -> Result<Vec<EncodedBatch>, String> {
    let n = dec.take_u32()? as usize;
    let mut batches = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        batches.push(EncodedBatch {
            seq: dec.take_u64()?,
            table: dec.take_str()?,
            inserts: dec.take_u32_rows()?,
            deletes: dec.take_u32_rows()?,
        });
    }
    Ok(batches)
}

fn decode_body(body: &[u8], version: u32) -> Result<SnapshotState, String> {
    let mut dec = Decoder::new(body);
    let fingerprint = dec.take_u64()?;
    let next_seq = dec.take_u64()?;

    let n = dec.take_u32()? as usize;
    let mut provenance = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        provenance.push(ProvenanceEntryState {
            analyst: AnalystId(dec.take_u64()? as usize),
            view: dec.take_str()?,
            epsilon: dec.take_f64()?,
        });
    }

    let n = dec.take_u32()? as usize;
    let mut ledger = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ledger.push(LedgerEntryState {
            analyst: AnalystId(dec.take_u64()? as usize),
            mechanism: {
                let code = dec.take_u8()?;
                MechanismKind::from_code(code)
                    .ok_or_else(|| format!("unknown mechanism code {code}"))?
            },
            epsilon: dec.take_f64()?,
            delta: dec.take_f64()?,
        });
    }
    let ledger_releases = dec.take_u64()?;

    let n = dec.take_u32()? as usize;
    let mut accesses = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        accesses.push(AccessRecord {
            seq: dec.take_u64()?,
            epsilon: dec.take_f64()?,
            sigma: dec.take_f64()?,
            sensitivity: dec.take_f64()?,
        });
    }

    let n = dec.take_u32()? as usize;
    let mut synopses = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let view = dec.take_str()?;
        let global = match dec.take_u8()? {
            0 => None,
            1 => Some(GlobalSynopsisState {
                epsilon: dec.take_f64()?,
                variance: dec.take_f64()?,
                epoch: if version >= 2 { dec.take_u64()? } else { 0 },
                counts: dec.take_f64_slice()?,
            }),
            t => return Err(format!("invalid global-synopsis tag {t}")),
        };
        let m = dec.take_u32()? as usize;
        let mut locals = Vec::with_capacity(m.min(1 << 16));
        for _ in 0..m {
            locals.push(LocalSynopsisState {
                analyst: dec.take_u64()? as usize,
                epsilon: dec.take_f64()?,
                variance: dec.take_f64()?,
                epoch: if version >= 2 { dec.take_u64()? } else { 0 },
                counts: dec.take_f64_slice()?,
            });
        }
        synopses.push(ViewCacheState {
            view,
            global,
            locals,
        });
    }

    let n = dec.take_u32()? as usize;
    let mut sessions = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        sessions.push(SessionCheckpoint {
            session: dec.take_u64()?,
            analyst: AnalystId(dec.take_u64()? as usize),
            rng: RngCheckpoint {
                draws: dec.take_u64()?,
                spare_normal: dec.take_opt_f64()?,
            },
        });
    }
    let next_session_id = dec.take_u64()?;

    let deltas = if version >= 2 {
        let next_seq = dec.take_u64()?;
        let current_epoch = dec.take_u64()?;
        let pending = take_batches(&mut dec)?;
        let n = dec.take_u32()? as usize;
        let mut sealed = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            sealed.push(SealedEpoch {
                epoch: dec.take_u64()?,
                through_seq: dec.take_u64()?,
                batches: take_batches(&mut dec)?,
            });
        }
        UpdateLog {
            next_seq,
            current_epoch,
            pending,
            sealed,
        }
    } else {
        UpdateLog::default()
    };

    if !dec.is_empty() {
        return Err(format!(
            "{} trailing bytes after snapshot body",
            dec.remaining()
        ));
    }
    Ok(SnapshotState {
        fingerprint,
        core: CoreState {
            next_seq,
            provenance,
            ledger,
            ledger_releases,
            accesses,
            synopses,
            deltas,
        },
        sessions,
        next_session_id,
    })
}

/// Writes a snapshot atomically: temp file, fsync, rename, directory
/// fsync.
pub fn write_snapshot(path: &Path, state: &SnapshotState, fsync: bool) -> Result<(), StorageError> {
    let body = encode_body(state);
    let mut bytes = Vec::with_capacity(body.len() + 24);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());

    let tmp = path.with_extension("tmp");
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err(&e))?;
        file.write_all(&bytes).map_err(|e| io_err(&e))?;
        if fsync {
            file.sync_all().map_err(|e| io_err(&e))?;
        }
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(&e))?;
    if fsync {
        if let Some(dir) = path.parent() {
            if let Ok(handle) = File::open(dir) {
                let _ = handle.sync_all();
            }
        }
    }
    Ok(())
}

/// Reads a snapshot. `Ok(None)` when the file does not exist; a typed
/// [`StorageError`] when the header, version, length or checksum fails
/// verification — never a panic.
pub fn read_snapshot(path: &Path) -> Result<Option<SnapshotState>, StorageError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&e)),
    };
    if bytes.len() < 20 {
        return Err(corrupt(0, "snapshot shorter than its header"));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt(0, "bad snapshot magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let body_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let body_start: usize = 20;
    let expected_total = body_start
        .checked_add(body_len)
        .and_then(|n| n.checked_add(4));
    if expected_total != Some(bytes.len()) {
        return Err(corrupt(
            12,
            format!(
                "snapshot length mismatch: header promises {body_len} body bytes, file holds {}",
                bytes.len()
            ),
        ));
    }
    let body = &bytes[body_start..body_start + body_len];
    let crc = u32::from_le_bytes(bytes[body_start + body_len..].try_into().unwrap());
    if crc32(body) != crc {
        return Err(corrupt(body_start as u64, "snapshot checksum mismatch"));
    }
    decode_body(body, version)
        .map(Some)
        .map_err(|reason| corrupt(body_start as u64, format!("undecodable snapshot: {reason}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;

    fn sample_state() -> SnapshotState {
        SnapshotState {
            fingerprint: 0xFEED_F00D,
            core: CoreState {
                next_seq: 42,
                provenance: vec![ProvenanceEntryState {
                    analyst: AnalystId(1),
                    view: "adult.age".to_owned(),
                    epsilon: 0.625,
                }],
                ledger: vec![LedgerEntryState {
                    analyst: AnalystId(1),
                    mechanism: MechanismKind::AdditiveGaussian,
                    epsilon: 0.625,
                    delta: 1e-9,
                }],
                ledger_releases: 3,
                accesses: vec![AccessRecord {
                    seq: 0,
                    epsilon: 0.625,
                    sigma: 11.0,
                    sensitivity: std::f64::consts::SQRT_2,
                }],
                synopses: vec![ViewCacheState {
                    view: "adult.age".to_owned(),
                    global: Some(GlobalSynopsisState {
                        epsilon: 0.625,
                        variance: 121.0,
                        epoch: 2,
                        counts: vec![1.5, 2.5, -0.25],
                    }),
                    locals: vec![LocalSynopsisState {
                        analyst: 1,
                        epsilon: 0.5,
                        variance: 150.0,
                        epoch: 1,
                        counts: vec![1.0, 2.0, 0.0],
                    }],
                }],
                deltas: UpdateLog {
                    next_seq: 3,
                    current_epoch: 2,
                    pending: vec![EncodedBatch {
                        seq: 2,
                        table: "adult".to_owned(),
                        inserts: vec![vec![1, 2], vec![3, 4]],
                        deletes: Vec::new(),
                    }],
                    sealed: vec![SealedEpoch {
                        epoch: 1,
                        through_seq: 2,
                        batches: vec![EncodedBatch {
                            seq: 0,
                            table: "adult".to_owned(),
                            inserts: vec![vec![5, 6]],
                            deletes: vec![vec![7, 8]],
                        }],
                    }],
                },
            },
            sessions: vec![SessionCheckpoint {
                session: 2,
                analyst: AnalystId(1),
                rng: RngCheckpoint {
                    draws: 987,
                    spare_normal: Some(0.125),
                },
            }],
            next_session_id: 3,
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let dir = scratch_dir("snap-roundtrip");
        let path = dir.join("snapshot.dps");
        assert_eq!(read_snapshot(&path).unwrap(), None);
        let state = sample_state();
        write_snapshot(&path, &state, true).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(state.clone()));
        // Overwrite is atomic and replaces the content.
        let mut newer = state;
        newer.core.next_seq = 99;
        write_snapshot(&path, &newer, false).unwrap();
        assert_eq!(read_snapshot(&path).unwrap().unwrap().core.next_seq, 99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_and_body_damage_is_a_typed_error() {
        let dir = scratch_dir("snap-damage");
        let path = dir.join("snapshot.dps");
        write_snapshot(&path, &sample_state(), false).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Bit-flip the magic.
        let mut bytes = pristine.clone();
        bytes[0] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::Corrupt { ref file, offset: 0, .. }) if file == "snapshot"
        ));

        // Unsupported version.
        let mut bytes = pristine.clone();
        bytes[8] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::UnsupportedVersion { .. })
        ));

        // Bit-flip deep in the body: checksum catches it.
        let mut bytes = pristine.clone();
        let mid = 20 + (bytes.len() - 24) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::Corrupt { .. })
        ));

        // Truncated body: length check catches it.
        std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
