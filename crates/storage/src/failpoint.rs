//! Crash-injection harness: a [`Recorder`] wrapper that kills the durable
//! pipeline after the Nth append.
//!
//! The crash-safety property the storage layer must uphold is *prefix
//! durability*: whatever the moment of death, recovery rebuilds a state
//! that (a) is a prefix of the committed history and (b) never undercounts
//! spend the process acknowledged to an analyst. [`FailpointRecorder`]
//! makes that property testable by deterministically dying at every
//! possible append — either cleanly (the frame never reaches the file, as
//! when the process dies before `write`) or torn (a partial frame reaches
//! the file, as when the kernel cuts a `write` short on power loss).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dprov_core::recorder::{AccessRecord, CommitRecord, Recorder};
use dprov_core::StorageError;

use crate::store::ProvenanceStore;
use crate::wal::WalRecord;

/// How the injected crash manifests on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The dying append writes nothing (death before `write`).
    Clean,
    /// The dying append leaves a torn frame prefix (death mid-`write`);
    /// recovery must detect and discard it via the checksum.
    Torn,
}

/// A [`Recorder`] that forwards to a [`ProvenanceStore`] until the Nth
/// append, then "dies": the Nth append (0-indexed) fails — cleanly or
/// tearing the ledger tail — and every later append fails too, exactly
/// like a process that lost its disk.
#[derive(Debug)]
pub struct FailpointRecorder {
    store: Arc<ProvenanceStore>,
    /// Appends attempted so far.
    attempts: AtomicU64,
    /// The 0-indexed append at which to die; `u64::MAX` = never.
    kill_at: u64,
    mode: CrashMode,
    dead: AtomicBool,
}

impl FailpointRecorder {
    /// Wraps `store`, dying at the `kill_at`-th append (0-indexed) in the
    /// given mode.
    #[must_use]
    pub fn new(store: Arc<ProvenanceStore>, kill_at: u64, mode: CrashMode) -> Self {
        FailpointRecorder {
            store,
            attempts: AtomicU64::new(0),
            kill_at,
            mode,
            dead: AtomicBool::new(false),
        }
    }

    /// True once the failpoint has fired.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Appends attempted so far (including failed ones).
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::SeqCst)
    }

    /// The wrapped store.
    #[must_use]
    pub fn store(&self) -> &Arc<ProvenanceStore> {
        &self.store
    }

    fn gate(&self, record: &WalRecord) -> Result<(), StorageError> {
        let attempt = self.attempts.fetch_add(1, Ordering::SeqCst);
        if self.dead.load(Ordering::SeqCst) {
            return Err(StorageError::Unavailable(
                "failpoint: recorder already dead".to_owned(),
            ));
        }
        if attempt == self.kill_at {
            self.dead.store(true, Ordering::SeqCst);
            if self.mode == CrashMode::Torn {
                // Tear the frame roughly in half — enough bytes for the
                // scanner to see a frame header with a bad body.
                let frame_len = record.encode_frame().len();
                let _ = self.store.append_torn(record, frame_len / 2);
            }
            return Err(StorageError::Unavailable(format!(
                "failpoint: killed at append {attempt}"
            )));
        }
        self.store.append(record)
    }
}

impl Recorder for FailpointRecorder {
    fn record_commit(&self, record: &CommitRecord) -> Result<(), StorageError> {
        self.gate(&WalRecord::Commit(record.clone()))
    }

    fn record_access(&self, record: &AccessRecord) -> Result<(), StorageError> {
        self.gate(&WalRecord::Access(*record))
    }

    fn record_rollback(&self, seq: u64) -> Result<(), StorageError> {
        self.gate(&WalRecord::Rollback { seq })
    }

    fn record_update(&self, batch: &dprov_delta::EncodedBatch) -> Result<(), StorageError> {
        self.gate(&WalRecord::Update(batch.clone()))
    }

    fn record_epoch_seal(&self, epoch: u64, through_seq: u64) -> Result<(), StorageError> {
        self.gate(&WalRecord::EpochSeal { epoch, through_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;
    use crate::store::StoreOptions;
    use dprov_core::analyst::AnalystId;
    use dprov_core::mechanism::MechanismKind;

    fn commit(seq: u64) -> CommitRecord {
        CommitRecord {
            seq,
            analyst: AnalystId(0),
            view: "v".to_owned(),
            mechanism: MechanismKind::Vanilla,
            prev_entry: 0.0,
            new_entry: 0.1,
            charged: 0.1,
        }
    }

    #[test]
    fn clean_kill_stops_all_later_appends() {
        let dir = scratch_dir("failpoint-clean");
        let (store, _) = ProvenanceStore::open_with(&dir, StoreOptions { fsync: false }).unwrap();
        let recorder = FailpointRecorder::new(Arc::new(store), 2, CrashMode::Clean);
        assert!(recorder.record_commit(&commit(0)).is_ok());
        assert!(recorder.record_commit(&commit(1)).is_ok());
        assert!(matches!(
            recorder.record_commit(&commit(2)),
            Err(StorageError::Unavailable(_))
        ));
        assert!(recorder.is_dead());
        assert!(recorder.record_commit(&commit(3)).is_err());
        drop(recorder);
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(recovered.commits.len(), 2);
        assert!(recovered.wal_corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_kill_leaves_a_detectable_discardable_tail() {
        let dir = scratch_dir("failpoint-torn");
        let (store, _) = ProvenanceStore::open_with(&dir, StoreOptions { fsync: false }).unwrap();
        let recorder = FailpointRecorder::new(Arc::new(store), 1, CrashMode::Torn);
        assert!(recorder.record_commit(&commit(0)).is_ok());
        assert!(recorder.record_commit(&commit(1)).is_err());
        drop(recorder);
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(recovered.commits.len(), 1);
        assert!(
            matches!(recovered.wal_corruption, Some(StorageError::Corrupt { .. })),
            "torn tail must be surfaced as a typed corruption"
        );
        // The reopened store truncated the tear: appends work again.
        let (store, _) = ProvenanceStore::open(&dir).unwrap();
        store.record_commit(&commit(1)).unwrap();
        drop(store); // release the directory lock before reopening
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(recovered.commits.len(), 2);
        assert!(recovered.wal_corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
