//! The provenance store: one directory holding a write-ahead ledger plus
//! the latest snapshot, with open/recover/compact lifecycle.
//!
//! ```text
//! <dir>/wal.log       append-only ledger (crate::wal)
//! <dir>/snapshot.dps  latest durable snapshot (crate::snapshot)
//! ```
//!
//! [`ProvenanceStore::open`] performs recovery: read the snapshot (typed
//! error on damage — a snapshot cannot be partially trusted), scan the
//! ledger (torn tails are discarded and surfaced), apply tombstones, merge
//! session checkpoints and hand back a [`RecoveredState`] the caller
//! replays into a freshly built system. The store then serves as the
//! live [`Recorder`] for that system.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dprov_core::recorder::{AccessRecord, CommitRecord, Recorder};
use dprov_core::StorageError;
use dprov_delta::EncodedBatch;

use crate::snapshot::{read_snapshot, write_snapshot, SnapshotState};
use crate::wal::{scan, SessionCheckpoint, WalRecord, WalWriter};

/// Tuning for a store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// `sync_data` after every ledger append (durable commits). Turning
    /// this off trades crash durability for throughput — the
    /// `recovery_throughput` bench quantifies the gap.
    pub fsync: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { fsync: true }
    }
}

/// One dynamic-data replay step, in write-ahead order. Updates and seals
/// must be re-applied in exactly this order: a crash between update
/// frames and their seal recovers the updates as *pending*, at the last
/// sealed epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaReplay {
    /// Re-enqueue one validated update batch as pending.
    Update(EncodedBatch),
    /// Re-apply one epoch seal over the pending batches below the
    /// watermark.
    Seal {
        /// The sealed epoch's number.
        epoch: u64,
        /// The batch-sequence watermark the seal covers.
        through_seq: u64,
    },
}

/// Everything recovery reconstructed from disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// The configuration fingerprint the store is bound to — from the
    /// snapshot, or from the ledger's fingerprint frame when no snapshot
    /// exists yet. `None` only for a brand-new (or empty) store; callers
    /// must then bind their fingerprint via
    /// [`ProvenanceStore::bind_fingerprint`].
    pub fingerprint: Option<u64>,
    /// The snapshot, if one existed.
    pub snapshot: Option<SnapshotState>,
    /// Ledger commits after the snapshot, tombstoned commits removed, in
    /// commit order.
    pub commits: Vec<CommitRecord>,
    /// Ledger data accesses after the snapshot, in record order.
    pub accesses: Vec<AccessRecord>,
    /// Dynamic-data replay steps after the snapshot (update batches and
    /// epoch seals, in write-ahead order, reconciled against the
    /// snapshot's batch-sequence and epoch watermarks).
    pub deltas: Vec<DeltaReplay>,
    /// Live session checkpoints: snapshot sessions overlaid with the
    /// ledger's newer checkpoints, closed sessions removed; sorted by id.
    pub sessions: Vec<SessionCheckpoint>,
    /// The next commit sequence number.
    pub next_seq: u64,
    /// The next session id.
    pub next_session_id: u64,
    /// Damage found at the ledger tail, already discarded from the file —
    /// surfaced so operators can log how much history a crash tore off.
    pub wal_corruption: Option<StorageError>,
}

fn mix(mut acc: u64, word: u64) -> u64 {
    acc ^= word;
    acc = acc.wrapping_add(0x9E37_79B9_7F4A_7C15);
    acc = (acc ^ (acc >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    acc = (acc ^ (acc >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    acc ^ (acc >> 31)
}

/// A stable digest of the analyst roster *in registration order* — name
/// bytes and privilege level per analyst. Registration order matters:
/// `AnalystId`s in the durable records are positional, so swapping two
/// registrations re-attributes every recorded charge and must change the
/// fingerprint.
#[must_use]
pub fn analysts_digest<'a>(analysts: impl IntoIterator<Item = (&'a str, u8)>) -> u64 {
    let mut acc = 0x452A_F10D_0E44_ED13u64;
    for (index, (name, privilege)) in analysts.into_iter().enumerate() {
        acc = mix(acc, index as u64);
        acc = mix(acc, name.len() as u64);
        for chunk in name.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = mix(acc, u64::from_le_bytes(word));
        }
        acc = mix(acc, u64::from(privilege));
    }
    acc
}

/// A stable fingerprint of the system configuration owning a store, mixed
/// via SplitMix64. Recovery refuses snapshots whose fingerprint differs —
/// replaying budgets into a system with a different seed, budget,
/// mechanism or analyst roster would corrupt the privacy accounting
/// silently (the positional `AnalystId`s in the records would resolve to
/// the wrong people). `roster_digest` comes from [`analysts_digest`].
#[must_use]
pub fn config_fingerprint(
    seed: u64,
    total_epsilon: f64,
    delta: f64,
    mechanism_code: u8,
    composition_code: u8,
    roster_digest: u64,
) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi digits, arbitrary non-zero
    for word in [
        seed,
        total_epsilon.to_bits(),
        delta.to_bits(),
        u64::from(mechanism_code),
        u64::from(composition_code),
        roster_digest,
    ] {
        acc = mix(acc, word);
    }
    acc
}

/// State guarded together with the ledger writer: the live view of every
/// session's latest checkpoint. Kept under the *same* lock as the writer
/// so compaction's snapshot is atomic with the ledger truncation — a
/// session append lands either before the truncation (and in the
/// snapshot's map) or after it (and in the fresh ledger), never in a gap.
#[derive(Debug)]
struct StoreInner {
    writer: WalWriter,
    sessions: std::collections::BTreeMap<u64, SessionCheckpoint>,
    next_session_id: u64,
}

/// The durable provenance store; also the live [`Recorder`].
#[derive(Debug)]
pub struct ProvenanceStore {
    dir: PathBuf,
    inner: Mutex<StoreInner>,
    fsync: bool,
    /// OS advisory lock on `<dir>/LOCK`, held for the store's lifetime so
    /// two processes can never append to one ledger concurrently.
    _dir_lock: std::fs::File,
    /// Ledger appends since the last snapshot (compaction trigger).
    appends_since_snapshot: AtomicU64,
    /// Total ledger appends over this handle's lifetime (failpoint
    /// enumeration support).
    total_appends: AtomicU64,
}

impl ProvenanceStore {
    /// Ledger file path under `dir`.
    #[must_use]
    pub fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// Snapshot file path under `dir`.
    #[must_use]
    pub fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("snapshot.dps")
    }

    /// Opens (creating if needed) the store in `dir` with default options
    /// and performs recovery.
    pub fn open(dir: &Path) -> Result<(Self, RecoveredState), StorageError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens the store with explicit options and performs recovery.
    pub fn open_with(
        dir: &Path,
        options: StoreOptions,
    ) -> Result<(Self, RecoveredState), StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::Io(e.to_string()))?;
        // Exclusive advisory lock: a second opener (a concurrent process,
        // or a restart racing a hung predecessor) would interleave frames
        // at independent offsets and silently corrupt the history.
        let dir_lock = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(dir.join("LOCK"))
            .map_err(|e| StorageError::Io(e.to_string()))?;
        if let Err(e) = dir_lock.try_lock() {
            return Err(StorageError::Unavailable(format!(
                "store directory {} is locked by another process: {e}",
                dir.display()
            )));
        }
        // A damaged snapshot is a hard, typed error: unlike a torn ledger
        // tail there is no safe prefix to fall back to.
        let snapshot = read_snapshot(&Self::snapshot_path(dir))?;
        let scanned = scan(&Self::wal_path(dir))?;
        let writer = WalWriter::open(&Self::wal_path(dir), options.fsync, scanned.valid_len)?;

        // Apply tombstones: a rolled-back commit never reaches recovery.
        let mut voided: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for record in &scanned.records {
            if let WalRecord::Rollback { seq } = record {
                voided.insert(*seq);
            }
        }
        let mut commits = Vec::new();
        let mut accesses = Vec::new();
        let mut sessions: std::collections::BTreeMap<u64, SessionCheckpoint> = snapshot
            .iter()
            .flat_map(|s| s.sessions.iter().copied())
            .map(|s| (s.session, s))
            .collect();
        // Everything with seq below the snapshot's watermark is already
        // folded into the snapshot (it was exported under the commit
        // freeze). A crash between compact()'s snapshot rename and its
        // ledger truncation leaves both on disk; replaying the overlap
        // would double-count every pre-snapshot charge, so filter by seq.
        let snapshot_seq = snapshot.as_ref().map_or(0, |s| s.core.next_seq);
        // The dynamic-data watermarks: everything below them is already
        // folded into the snapshot's update log (same crash-overlap
        // reasoning as `snapshot_seq` for commits).
        let snapshot_batch_seq = snapshot.as_ref().map_or(0, |s| s.core.deltas.next_seq);
        let snapshot_epoch = snapshot.as_ref().map_or(0, |s| s.core.deltas.current_epoch);
        let mut next_seq = snapshot_seq;
        let mut next_session_id = snapshot.as_ref().map_or(0, |s| s.next_session_id);
        let mut wal_fingerprint: Option<u64> = None;
        let mut deltas = Vec::new();
        for record in scanned.records {
            match record {
                WalRecord::Commit(c) => {
                    next_seq = next_seq.max(c.seq + 1);
                    if c.seq >= snapshot_seq && !voided.contains(&c.seq) {
                        commits.push(c);
                    }
                }
                WalRecord::Access(a) => {
                    next_seq = next_seq.max(a.seq + 1);
                    if a.seq >= snapshot_seq {
                        accesses.push(a);
                    }
                }
                WalRecord::Rollback { seq } => next_seq = next_seq.max(seq + 1),
                WalRecord::Session(s) => {
                    next_session_id = next_session_id.max(s.session + 1);
                    sessions.insert(s.session, s);
                }
                WalRecord::SessionClosed { session } => {
                    next_session_id = next_session_id.max(session + 1);
                    sessions.remove(&session);
                }
                WalRecord::Fingerprint { fingerprint } => {
                    wal_fingerprint.get_or_insert(fingerprint);
                }
                WalRecord::Update(batch) => {
                    if batch.seq >= snapshot_batch_seq {
                        deltas.push(DeltaReplay::Update(batch));
                    }
                }
                WalRecord::EpochSeal { epoch, through_seq } => {
                    if epoch > snapshot_epoch {
                        deltas.push(DeltaReplay::Seal { epoch, through_seq });
                    }
                }
            }
        }

        // The binding fingerprint: snapshot and ledger must agree when
        // both carry one (they can only diverge through tampering or a
        // mixed-up directory — refuse rather than guess).
        let fingerprint = match (snapshot.as_ref().map(|s| s.fingerprint), wal_fingerprint) {
            (Some(a), Some(b)) if a != b => {
                return Err(StorageError::IncompatibleState(format!(
                    "snapshot fingerprint {a:#x} disagrees with ledger fingerprint {b:#x}"
                )))
            }
            (snap, wal) => snap.or(wal),
        };

        let recovered = RecoveredState {
            fingerprint,
            snapshot,
            commits,
            accesses,
            deltas,
            sessions: sessions.values().copied().collect(),
            next_seq,
            next_session_id,
            wal_corruption: scanned.corruption,
        };
        Ok((
            ProvenanceStore {
                dir: dir.to_owned(),
                inner: Mutex::new(StoreInner {
                    writer,
                    sessions,
                    next_session_id,
                }),
                fsync: options.fsync,
                _dir_lock: dir_lock,
                appends_since_snapshot: AtomicU64::new(0),
                total_appends: AtomicU64::new(0),
            },
            recovered,
        ))
    }

    /// Binds a fresh (never-bound) store to a configuration fingerprint by
    /// writing the ledger's fingerprint frame. Callers do this once, when
    /// [`RecoveredState::fingerprint`] came back `None`.
    pub fn bind_fingerprint(&self, fingerprint: u64) -> Result<(), StorageError> {
        self.append(&WalRecord::Fingerprint { fingerprint })
    }

    /// Attaches an observability registry: subsequent ledger appends
    /// record their write and fsync latency (`wal.append_ns` /
    /// `wal.fsync_ns`) and bump the append/fsync counters. Attach before
    /// sharing the store; recording never changes what is written.
    pub fn set_metrics(&self, metrics: dprov_obs::MetricsRegistry) {
        self.inner
            .lock()
            .expect("store poisoned")
            .writer
            .set_metrics(metrics);
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether appends fsync before returning.
    #[must_use]
    pub fn fsync(&self) -> bool {
        self.fsync
    }

    /// Ledger appends since the last compaction.
    #[must_use]
    pub fn appends_since_snapshot(&self) -> u64 {
        self.appends_since_snapshot.load(Ordering::SeqCst)
    }

    /// Total ledger appends through this handle.
    #[must_use]
    pub fn total_appends(&self) -> u64 {
        self.total_appends.load(Ordering::SeqCst)
    }

    fn append_locked(
        &self,
        inner: &mut StoreInner,
        record: &WalRecord,
    ) -> Result<(), StorageError> {
        inner.writer.append(record)?;
        match record {
            WalRecord::Session(s) => {
                inner.next_session_id = inner.next_session_id.max(s.session + 1);
                inner.sessions.insert(s.session, *s);
            }
            WalRecord::SessionClosed { session } => {
                inner.next_session_id = inner.next_session_id.max(session + 1);
                inner.sessions.remove(session);
            }
            _ => {}
        }
        self.total_appends.fetch_add(1, Ordering::SeqCst);
        self.appends_since_snapshot.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Appends one ledger record (durable on return in fsync mode),
    /// keeping the live session map in step with the ledger content.
    pub fn append(&self, record: &WalRecord) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().expect("store poisoned");
        self.append_locked(&mut inner, record)
    }

    /// Persists a session noise-stream checkpoint. A checkpoint identical
    /// to the session's last persisted one (e.g. after a rejection or a
    /// cache hit, where no noise was drawn) is skipped — the recovered
    /// state would be the same, so the frame (and its fsync) buys nothing.
    pub fn record_session(&self, checkpoint: &SessionCheckpoint) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().expect("store poisoned");
        if inner.sessions.get(&checkpoint.session) == Some(checkpoint) {
            return Ok(());
        }
        self.append_locked(&mut inner, &WalRecord::Session(*checkpoint))
    }

    /// Records that a session closed or expired.
    pub fn record_session_closed(&self, session: u64) -> Result<(), StorageError> {
        self.append(&WalRecord::SessionClosed { session })
    }

    /// Writes a new snapshot from `core` (captured by the caller under the
    /// system's commit freeze, which must still be held) plus the store's
    /// own live session map, then truncates the ledger: the
    /// log-plus-snapshot compaction step. The store lock is held across
    /// snapshot + truncate so no append can land between the snapshot
    /// capturing the world and the ledger being cleared.
    pub fn compact(
        &self,
        fingerprint: u64,
        core: &dprov_core::recorder::CoreState,
    ) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let state = SnapshotState {
            fingerprint,
            core: core.clone(),
            sessions: inner.sessions.values().copied().collect(),
            next_session_id: inner.next_session_id,
        };
        write_snapshot(&Self::snapshot_path(&self.dir), &state, self.fsync)?;
        inner.writer.truncate_to_header()?;
        self.appends_since_snapshot.store(0, Ordering::SeqCst);
        // Re-stamp the fresh ledger with the binding fingerprint so the
        // ledger alone still identifies its configuration.
        inner
            .writer
            .append(&WalRecord::Fingerprint { fingerprint })?;
        Ok(())
    }

    /// Writes only a prefix of a record's frame without sync, simulating a
    /// crash mid-append. Crash-testing support for the failpoint harness.
    pub fn append_torn(&self, record: &WalRecord, keep: usize) -> Result<(), StorageError> {
        self.inner
            .lock()
            .expect("store poisoned")
            .writer
            .append_torn(record, keep)
    }

    /// Bytes currently in the ledger file.
    #[must_use]
    pub fn wal_len(&self) -> u64 {
        self.inner.lock().expect("store poisoned").writer.len()
    }
}

impl Recorder for ProvenanceStore {
    fn record_commit(&self, record: &CommitRecord) -> Result<(), StorageError> {
        self.append(&WalRecord::Commit(record.clone()))
    }

    fn record_access(&self, record: &AccessRecord) -> Result<(), StorageError> {
        self.append(&WalRecord::Access(*record))
    }

    fn record_rollback(&self, seq: u64) -> Result<(), StorageError> {
        self.append(&WalRecord::Rollback { seq })
    }

    fn record_update(&self, batch: &EncodedBatch) -> Result<(), StorageError> {
        self.append(&WalRecord::Update(batch.clone()))
    }

    fn record_epoch_seal(&self, epoch: u64, through_seq: u64) -> Result<(), StorageError> {
        self.append(&WalRecord::EpochSeal { epoch, through_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_dir;
    use dprov_core::analyst::AnalystId;
    use dprov_core::mechanism::MechanismKind;
    use dprov_dp::rng::RngCheckpoint;

    fn commit(seq: u64, charged: f64) -> CommitRecord {
        CommitRecord {
            seq,
            analyst: AnalystId((seq % 2) as usize),
            view: "adult.age".to_owned(),
            mechanism: MechanismKind::AdditiveGaussian,
            prev_entry: 0.0,
            new_entry: charged,
            charged,
        }
    }

    fn session(id: u64, draws: u64) -> SessionCheckpoint {
        SessionCheckpoint {
            session: id,
            analyst: AnalystId(0),
            rng: RngCheckpoint {
                draws,
                spare_normal: None,
            },
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let dir = scratch_dir("store-roundtrip");
        {
            let (store, recovered) = ProvenanceStore::open(&dir).unwrap();
            assert!(recovered.snapshot.is_none());
            assert!(recovered.commits.is_empty());
            store.record_commit(&commit(0, 0.25)).unwrap();
            store.record_commit(&commit(1, 0.5)).unwrap();
            store
                .record_access(&AccessRecord {
                    seq: 1,
                    epsilon: 0.5,
                    sigma: 9.0,
                    sensitivity: 1.0,
                })
                .unwrap();
            store.record_session(&session(0, 77)).unwrap();
            assert_eq!(store.total_appends(), 4);
        }
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(recovered.commits.len(), 2);
        assert_eq!(recovered.accesses.len(), 1);
        assert_eq!(recovered.sessions, vec![session(0, 77)]);
        assert_eq!(recovered.next_seq, 2);
        assert_eq!(recovered.next_session_id, 1);
        assert!(recovered.wal_corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstones_void_their_commit() {
        let dir = scratch_dir("store-tombstone");
        {
            let (store, _) = ProvenanceStore::open(&dir).unwrap();
            store.record_commit(&commit(0, 0.25)).unwrap();
            store.record_commit(&commit(1, 0.5)).unwrap();
            store.record_rollback(1).unwrap();
            store.record_commit(&commit(2, 0.125)).unwrap();
        }
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        let seqs: Vec<u64> = recovered.commits.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
        // The tombstoned seq still advances the counter.
        assert_eq!(recovered.next_seq, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchanged_session_checkpoints_are_not_re_appended() {
        let dir = scratch_dir("store-session-dedupe");
        let (store, _) = ProvenanceStore::open(&dir).unwrap();
        store.record_session(&session(0, 10)).unwrap();
        let appends = store.total_appends();
        // Same position again (rejection / cache hit): no new frame.
        store.record_session(&session(0, 10)).unwrap();
        assert_eq!(store.total_appends(), appends);
        // The stream advanced: a frame is written.
        store.record_session(&session(0, 11)).unwrap();
        assert_eq!(store.total_appends(), appends + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_lifecycle_merges_latest_and_drops_closed() {
        let dir = scratch_dir("store-sessions");
        {
            let (store, _) = ProvenanceStore::open(&dir).unwrap();
            store.record_session(&session(0, 10)).unwrap();
            store.record_session(&session(1, 5)).unwrap();
            store.record_session(&session(0, 99)).unwrap();
            store.record_session_closed(1).unwrap();
        }
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(recovered.sessions, vec![session(0, 99)]);
        assert_eq!(recovered.next_session_id, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_truncates_the_ledger_and_survives_reopen() {
        let dir = scratch_dir("store-compact");
        {
            let (store, _) = ProvenanceStore::open(&dir).unwrap();
            store.record_commit(&commit(0, 0.25)).unwrap();
            store.record_session(&session(3, 42)).unwrap();
            assert_eq!(store.appends_since_snapshot(), 2);
            let core = dprov_core::recorder::CoreState {
                next_seq: 1,
                ..Default::default()
            };
            store.compact(7, &core).unwrap();
            assert_eq!(store.appends_since_snapshot(), 0);
            // Post-compaction commits land in the fresh ledger.
            store.record_commit(&commit(1, 0.5)).unwrap();
        }
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        let snapshot = recovered.snapshot.expect("snapshot must exist");
        assert_eq!(snapshot.fingerprint, 7);
        assert_eq!(snapshot.core.next_seq, 1);
        // The snapshot carried the store's live session map forward.
        assert_eq!(snapshot.sessions, vec![session(3, 42)]);
        assert_eq!(snapshot.next_session_id, 4);
        assert_eq!(recovered.commits.len(), 1);
        assert_eq!(recovered.commits[0].seq, 1);
        assert_eq!(recovered.sessions, vec![session(3, 42)]);
        assert_eq!(recovered.next_seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directory_lock_excludes_concurrent_openers() {
        let dir = scratch_dir("store-lock");
        let (store, _) = ProvenanceStore::open(&dir).unwrap();
        assert!(
            matches!(
                ProvenanceStore::open(&dir),
                Err(StorageError::Unavailable(_))
            ),
            "a second opener must be refused while the store lives"
        );
        drop(store);
        assert!(ProvenanceStore::open(&dir).is_ok(), "lock released on drop");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_binding_survives_wal_only_and_compaction() {
        let dir = scratch_dir("store-bind");
        {
            let (store, recovered) = ProvenanceStore::open(&dir).unwrap();
            assert_eq!(recovered.fingerprint, None, "fresh store is unbound");
            store.bind_fingerprint(0xABCD).unwrap();
            store.record_commit(&commit(0, 0.1)).unwrap();
        }
        {
            // WAL-only recovery (no snapshot yet) still sees the binding.
            let (store, recovered) = ProvenanceStore::open(&dir).unwrap();
            assert_eq!(recovered.fingerprint, Some(0xABCD));
            store
                .compact(0xABCD, &dprov_core::recorder::CoreState::default())
                .unwrap();
        }
        // Post-compaction: carried by the snapshot AND re-stamped into the
        // truncated ledger.
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(recovered.fingerprint, Some(0xABCD));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_separates_configurations() {
        let roster = analysts_digest([("external", 2), ("internal", 4)]);
        let a = config_fingerprint(7, 2.0, 1e-9, 1, 0, roster);
        assert_eq!(a, config_fingerprint(7, 2.0, 1e-9, 1, 0, roster));
        assert_ne!(a, config_fingerprint(8, 2.0, 1e-9, 1, 0, roster));
        assert_ne!(a, config_fingerprint(7, 2.1, 1e-9, 1, 0, roster));
        assert_ne!(a, config_fingerprint(7, 2.0, 1e-8, 1, 0, roster));
        assert_ne!(a, config_fingerprint(7, 2.0, 1e-9, 2, 0, roster));
        assert_ne!(a, config_fingerprint(7, 2.0, 1e-9, 1, 1, roster));
        assert_ne!(a, config_fingerprint(7, 2.0, 1e-9, 1, 0, roster ^ 1));
    }

    #[test]
    fn analysts_digest_is_order_name_and_privilege_sensitive() {
        let base = analysts_digest([("external", 2), ("internal", 4)]);
        // Swapping the registration order re-attributes positional ids.
        assert_ne!(base, analysts_digest([("internal", 4), ("external", 2)]));
        // A privilege change alters every derived constraint.
        assert_ne!(base, analysts_digest([("external", 2), ("internal", 6)]));
        // A renamed analyst is a different person.
        assert_ne!(base, analysts_digest([("external", 2), ("internal2", 4)]));
        // Adding an analyst changes the roster.
        assert_ne!(
            base,
            analysts_digest([("external", 2), ("internal", 4), ("third", 1)])
        );
        assert_eq!(base, analysts_digest([("external", 2), ("internal", 4)]));
    }

    fn update(seq: u64) -> EncodedBatch {
        EncodedBatch {
            seq,
            table: "adult".to_owned(),
            inserts: vec![vec![seq as u32, 1]],
            deletes: Vec::new(),
        }
    }

    #[test]
    fn delta_records_recover_in_wal_order_and_respect_snapshot_watermarks() {
        let dir = scratch_dir("store-delta");
        {
            let (store, _) = ProvenanceStore::open(&dir).unwrap();
            store.record_update(&update(0)).unwrap();
            store.record_update(&update(1)).unwrap();
            store.record_epoch_seal(1, 2).unwrap();
            store.record_update(&update(2)).unwrap();
            // Crash before the second seal: batch 2 must recover pending.
        }
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(
            recovered.deltas,
            vec![
                DeltaReplay::Update(update(0)),
                DeltaReplay::Update(update(1)),
                DeltaReplay::Seal {
                    epoch: 1,
                    through_seq: 2
                },
                DeltaReplay::Update(update(2)),
            ]
        );

        // A snapshot covering batch seqs < 2 and epoch 1 filters the
        // already-folded prefix (the compact-crash overlap window).
        let state = crate::snapshot::SnapshotState {
            fingerprint: 1,
            core: dprov_core::recorder::CoreState {
                deltas: dprov_delta::UpdateLog {
                    next_seq: 2,
                    current_epoch: 1,
                    pending: Vec::new(),
                    sealed: Vec::new(),
                },
                ..Default::default()
            },
            sessions: Vec::new(),
            next_session_id: 0,
        };
        crate::snapshot::write_snapshot(&ProvenanceStore::snapshot_path(&dir), &state, false)
            .unwrap();
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(recovered.deltas, vec![DeltaReplay::Update(update(2))]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_skips_wal_records_already_folded_into_the_snapshot() {
        // Simulates a crash between compact()'s snapshot rename and its
        // ledger truncation: the snapshot covers seqs 0..3 AND the full
        // ledger is still on disk. Replaying the overlap would
        // double-count, so recovery must hand back only seqs >= 3.
        let dir = scratch_dir("store-overlap");
        {
            let (store, _) = ProvenanceStore::open(&dir).unwrap();
            for seq in 0..5 {
                store
                    .record_commit(&commit(seq, 0.1 * (seq + 1) as f64))
                    .unwrap();
                store
                    .record_access(&AccessRecord {
                        seq,
                        epsilon: 0.1,
                        sigma: 9.0,
                        sensitivity: 1.0,
                    })
                    .unwrap();
            }
        }
        // Write the snapshot directly (as compact() would, just before the
        // truncation it never got to perform).
        let state = crate::snapshot::SnapshotState {
            fingerprint: 1,
            core: dprov_core::recorder::CoreState {
                next_seq: 3,
                ..Default::default()
            },
            sessions: Vec::new(),
            next_session_id: 0,
        };
        crate::snapshot::write_snapshot(&ProvenanceStore::snapshot_path(&dir), &state, false)
            .unwrap();

        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        let commit_seqs: Vec<u64> = recovered.commits.iter().map(|c| c.seq).collect();
        let access_seqs: Vec<u64> = recovered.accesses.iter().map(|a| a.seq).collect();
        assert_eq!(
            commit_seqs,
            vec![3, 4],
            "pre-snapshot commits must be skipped"
        );
        assert_eq!(
            access_seqs,
            vec![3, 4],
            "pre-snapshot accesses must be skipped"
        );
        assert_eq!(recovered.next_seq, 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
