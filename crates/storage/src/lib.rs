//! # `dprov-storage` — the durable provenance ledger
//!
//! DProvDB's guarantee that provenance-tracked budget constraints are never
//! exceeded is only meaningful if the spent budget survives the process.
//! This crate persists every committed admission charge in a checksummed,
//! fsync'd **write-ahead ledger** and periodically compacts the full system
//! state — provenance matrix, per-mechanism multi-analyst ledger, tight
//! accountant history, synopsis cache and session noise-stream positions —
//! into a **versioned snapshot**, giving crash-safe recovery with two
//! invariants:
//!
//! 1. **Prefix durability** — recovery rebuilds a state equal to a prefix
//!    of the committed history: each commit is either wholly present or
//!    wholly absent (frames are atomic under their CRC; torn tails are
//!    detected and discarded).
//! 2. **No undercount** — the write-ahead append happens *before* the
//!    in-memory charge becomes visible ([`dprov_core::recorder`]), so every
//!    spend an analyst ever saw acknowledged is on disk: recovered spend ≥
//!    acknowledged spend, and rollback tombstones are best-effort in the
//!    over-counting (safe) direction.
//!
//! Modules:
//!
//! * [`codec`] — little-endian encoding helpers and CRC-32;
//! * [`wal`] — the write-ahead ledger format, scan and torn-tail handling;
//! * [`snapshot`] — versioned, atomically-replaced snapshot files;
//! * [`store`] — the [`store::ProvenanceStore`] directory lifecycle
//!   (open → recover → serve as the live [`dprov_core::recorder::Recorder`]
//!   → compact);
//! * [`failpoint`] — the crash-injection harness killing the recorder at
//!   any chosen append, cleanly or with a torn tail.
//!
//! The `dprov-server` crate wires this into `QueryService::start_durable`;
//! see the repository README's "Durability & recovery" section for the
//! end-to-end walkthrough.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod failpoint;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use failpoint::{CrashMode, FailpointRecorder};
pub use snapshot::{SnapshotState, SNAPSHOT_VERSION};
pub use store::{
    analysts_digest, config_fingerprint, DeltaReplay, ProvenanceStore, RecoveredState, StoreOptions,
};
pub use wal::{SessionCheckpoint, WalRecord};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Creates a unique scratch directory for tests, benches and examples.
/// Rooted at `$DPROV_STORAGE_SCRATCH` when set (CI points this at a
/// workspace path so write-ahead artifacts can be uploaded on failure),
/// else the system temp dir.
#[must_use]
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let root =
        std::env::var_os("DPROV_STORAGE_SCRATCH").map_or_else(std::env::temp_dir, PathBuf::from);
    let dir = root.join(format!(
        "dprov-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("failed to create scratch dir");
    dir
}
