//! Binary encoding primitives shared by the write-ahead ledger and the
//! snapshot files: little-endian scalar put/take helpers and a CRC-32
//! (IEEE 802.3) checksum.
//!
//! The workspace's `serde` is an offline marker shim, so durable formats
//! are encoded by hand. Everything is little-endian; floats are stored as
//! their raw IEEE-754 bits, which makes recovered budget state *bit-exact*
//! rather than merely approximately equal.

/// CRC-32 (IEEE) lookup table, computed at compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 (IEEE 802.3) checksum of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An append-only byte buffer with typed put helpers.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64` (two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an `f64` as its raw IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed opaque byte string (e.g. an embedded,
    /// already-encoded record payload).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends an `Option<f64>` as a presence byte plus the raw bits.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends a list of domain-index-encoded rows (count, then per row a
    /// cell count and the `u32` cells) — the update-batch row layout
    /// shared by the WAL's update frames and the snapshot's update log.
    pub fn put_u32_rows(&mut self, rows: &[Vec<u32>]) {
        self.put_u32(rows.len() as u32);
        for row in rows {
            self.put_u32(row.len() as u32);
            for &v in row {
                self.put_u32(v);
            }
        }
    }
}

/// A cursor over encoded bytes with typed take helpers. Every taker
/// returns `Err(reason)` instead of panicking when the buffer is short or
/// malformed — callers wrap the reason into a typed
/// [`dprov_core::StorageError::Corrupt`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decode failure reason (human-readable; wrapped into
/// [`dprov_core::StorageError`] by callers that know file and offset).
pub type DecodeResult<T> = Result<T, String>;

impl<'a> Decoder<'a> {
    /// A decoder over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the buffer is fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64` (two's complement).
    pub fn take_i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a boolean written by [`Encoder::put_bool`], rejecting any
    /// byte other than `0` or `1`.
    pub fn take_bool(&mut self) -> DecodeResult<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(format!("invalid bool byte {t}")),
        }
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn take_f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> DecodeResult<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }

    /// Reads a length-prefixed opaque byte string written by
    /// [`Encoder::put_bytes`]; the length is bounded by the remaining
    /// payload, so a corrupt prefix cannot drive a giant allocation.
    pub fn take_bytes(&mut self) -> DecodeResult<Vec<u8>> {
        let len = self.take_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn take_f64_slice(&mut self) -> DecodeResult<Vec<f64>> {
        let len = self.take_u32()? as usize;
        if len.saturating_mul(8) > self.remaining() {
            return Err(format!("f64 slice of {len} items exceeds payload"));
        }
        (0..len).map(|_| self.take_f64()).collect()
    }

    /// Reads an `Option<f64>` written by [`Encoder::put_opt_f64`].
    pub fn take_opt_f64(&mut self) -> DecodeResult<Option<f64>> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_f64()?)),
            t => Err(format!("invalid option tag {t}")),
        }
    }

    /// Reads encoded rows written by [`Encoder::put_u32_rows`], bounding
    /// every length prefix by the remaining payload so corrupt counts
    /// cannot drive unbounded allocation.
    pub fn take_u32_rows(&mut self) -> DecodeResult<Vec<Vec<u32>>> {
        let n = self.take_u32()? as usize;
        if n.saturating_mul(4) > self.remaining() {
            return Err(format!("row count {n} exceeds the payload"));
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let len = self.take_u32()? as usize;
            if len.saturating_mul(4) > self.remaining() {
                return Err(format!("row arity {len} exceeds the payload"));
            }
            let mut row = Vec::with_capacity(len);
            for _ in 0..len {
                row.push(self.take_u32()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX - 3);
        enc.put_f64(-0.125);
        enc.put_f64(f64::NAN);
        enc.put_str("adult.age");
        enc.put_f64_slice(&[1.5, -2.5, 1e-300]);
        enc.put_opt_f64(Some(0.75));
        enc.put_opt_f64(None);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert_eq!(dec.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.take_f64().unwrap(), -0.125);
        assert!(dec.take_f64().unwrap().is_nan());
        assert_eq!(dec.take_str().unwrap(), "adult.age");
        assert_eq!(dec.take_f64_slice().unwrap(), vec![1.5, -2.5, 1e-300]);
        assert_eq!(dec.take_opt_f64().unwrap(), Some(0.75));
        assert_eq!(dec.take_opt_f64().unwrap(), None);
        assert!(dec.is_empty());
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let mut enc = Encoder::new();
        enc.put_str("hello");
        let bytes = enc.into_bytes();
        // Cut into the string body.
        let mut dec = Decoder::new(&bytes[..6]);
        assert!(dec.take_str().is_err());
        // Length prefix promising more than the payload holds.
        let mut enc = Encoder::new();
        enc.put_u32(1_000_000);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).take_f64_slice().is_err());
        assert!(Decoder::new(&[]).take_u64().is_err());
    }
}
