//! Crash-injection property suite: for **every** possible crash point of a
//! 64-charge workload — clean and torn — recovery must rebuild a state
//! that is a prefix of the committed history, never undercounts the spend
//! the process acknowledged, and still satisfies every provenance
//! constraint.
//!
//! Run with `cargo test -p dprov-storage -- --test-threads=1`; the
//! scheduled CI job sets `DPROV_CRASH_INJECTION_CASES=<n>` to sweep `n`
//! extra workload seeds on top of the default.

use std::sync::Arc;

use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::{QueryOutcome, QueryRequest};
use dprov_core::system::DProvDb;
use dprov_core::CoreError;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_storage::{scratch_dir, CrashMode, FailpointRecorder, ProvenanceStore, StoreOptions};

const ANALYSTS: usize = 2;
const CHARGES: usize = 64;

fn build_system(mechanism: MechanismKind, seed: u64) -> DProvDb {
    let db = adult_database(300, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    registry.register("external", 2).unwrap();
    registry.register("internal", 4).unwrap();
    // Generous table budget so all 64 charges are admitted; delta must stay
    // below 1/rows.
    let config = SystemConfig::new(400.0).unwrap().with_seed(seed);
    DProvDb::new(db, catalog, registry, config, mechanism).unwrap()
}

/// 64 privacy-oriented requests that each force a fresh charge: per
/// (analyst, view) the requested epsilon strictly increases, so neither
/// the per-analyst cache nor the additive mechanism's `min(ε_global,
/// P + ε_i)` update can absorb a request for free, under either mechanism.
fn workload() -> Vec<(AnalystId, QueryRequest)> {
    let views: [(&str, i64, i64); 2] = [("age", 20, 60), ("hours_per_week", 10, 70)];
    (0..CHARGES)
        .map(|i| {
            let analyst = AnalystId(i % ANALYSTS);
            let (attr, lo, hi) = views[(i / ANALYSTS) % views.len()];
            // Occurrence counter of this (analyst, view) pair, 0..16.
            let occurrence = (i / (ANALYSTS * views.len())) as f64;
            let epsilon = 0.05 * (occurrence + 1.0) + 0.001 * (i % ANALYSTS) as f64;
            (
                analyst,
                QueryRequest::with_privacy(Query::range_count("adult", attr, lo, hi), epsilon),
            )
        })
        .collect()
}

struct RunOutcome {
    /// Spend acknowledged to each analyst (sum of `epsilon_charged` over
    /// outcomes the submitter actually saw succeed).
    acked: Vec<f64>,
    /// Total ledger appends attempted by the workload.
    appends: u64,
}

/// Runs the workload against a system wired to `recorder`; submissions
/// that die on the storage layer are tolerated (the process would log and
/// carry on — or crash — either way nothing further is acknowledged).
fn run_workload(system: &mut DProvDb, recorder: &FailpointRecorder) -> RunOutcome {
    let mut acked = vec![0.0; ANALYSTS];
    for (analyst, request) in workload() {
        match system.submit(analyst, &request) {
            Ok(QueryOutcome::Answered(a)) => acked[analyst.0] += a.epsilon_charged,
            Ok(QueryOutcome::Rejected { .. }) => {}
            Err(CoreError::Storage(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    RunOutcome {
        acked,
        appends: recorder.attempts(),
    }
}

/// Recovers the store in `dir` into a fresh system and checks the three
/// crash-safety properties against the acknowledged spend.
fn assert_recovery_invariants(
    dir: &std::path::Path,
    mechanism: MechanismKind,
    seed: u64,
    acked: &[f64],
    label: &str,
) {
    let (_, recovered) = ProvenanceStore::open(dir).unwrap_or_else(|e| {
        panic!("{label}: recovery must not fail, got {e}");
    });
    assert!(recovered.snapshot.is_none(), "{label}: no compaction ran");

    // Property 1: the recovered history is a contiguous prefix of the
    // committed history (commit seqs 0..K without gaps).
    for (i, commit) in recovered.commits.iter().enumerate() {
        assert_eq!(
            commit.seq, i as u64,
            "{label}: recovered commits are not a contiguous prefix"
        );
    }

    let fresh = build_system(mechanism, seed);
    for commit in &recovered.commits {
        fresh.replay_commit(commit).unwrap();
    }
    for access in &recovered.accesses {
        fresh.replay_access(access);
    }

    // Property 2: recovered spend never undercounts acknowledged spend.
    let provenance = fresh.provenance();
    let ledger = fresh.ledger();
    for analyst in (0..ANALYSTS).map(AnalystId) {
        assert!(
            provenance.row_total(analyst) >= acked[analyst.0] - 1e-9,
            "{label}: analyst {analyst:?} recovered row total {} undercounts acknowledged {}",
            provenance.row_total(analyst),
            acked[analyst.0]
        );
        assert!(
            ledger.loss_to(analyst).epsilon.value() >= acked[analyst.0] - 1e-9,
            "{label}: analyst {analyst:?} recovered ledger undercounts acknowledged spend"
        );
        // Mechanism attribution survives the log round-trip.
        assert_eq!(
            ledger.loss_to(analyst).epsilon.value(),
            ledger.loss_to_via(analyst, mechanism).epsilon.value(),
            "{label}: replayed ledger lost mechanism attribution"
        );
    }

    // Property 3: every provenance constraint still holds post-recovery.
    for analyst in (0..ANALYSTS).map(AnalystId) {
        assert!(
            provenance.row_total(analyst) <= provenance.row_constraint(analyst) + 1e-6,
            "{label}: row constraint exceeded after recovery"
        );
    }
    for view in provenance.view_names() {
        let column = match mechanism {
            MechanismKind::Vanilla => provenance.column_sum(view),
            MechanismKind::AdditiveGaussian => provenance.column_max(view),
        };
        assert!(
            column <= provenance.col_constraint(view) + 1e-6,
            "{label}: column constraint exceeded after recovery"
        );
    }
    let total = match mechanism {
        MechanismKind::Vanilla => provenance.total_sum(),
        MechanismKind::AdditiveGaussian => provenance.total_of_column_maxes(),
    };
    assert!(
        total <= provenance.table_constraint() + 1e-6,
        "{label}: table constraint exceeded after recovery"
    );
}

/// Sweeps every crash point of the workload under one mechanism and seed.
fn sweep(mechanism: MechanismKind, seed: u64) {
    // Baseline run (no failpoint) to learn the total append count and
    // sanity-check the workload really produces 64 charges.
    let total_appends = {
        let dir = scratch_dir("crash-baseline");
        let (store, _) = ProvenanceStore::open_with(&dir, StoreOptions { fsync: false }).unwrap();
        let store = Arc::new(store);
        let recorder = Arc::new(FailpointRecorder::new(
            Arc::clone(&store),
            u64::MAX,
            CrashMode::Clean,
        ));
        let mut system = build_system(mechanism, seed);
        system.set_recorder(Arc::clone(&recorder) as Arc<dyn dprov_core::recorder::Recorder>);
        let outcome = run_workload(&mut system, &recorder);
        // Release every handle on the store (and its directory lock)
        // before recovery reopens it.
        drop(system);
        drop(recorder);
        drop(store);
        let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
        assert_eq!(
            recovered.commits.len(),
            CHARGES,
            "workload must produce exactly {CHARGES} charges, got {}",
            recovered.commits.len()
        );
        std::fs::remove_dir_all(&dir).ok();
        outcome.appends
    };

    for kill_at in 0..total_appends {
        // Alternate clean and torn deaths across the sweep so both file
        // shapes are exercised at every depth over the two mechanisms.
        let mode = if kill_at % 2 == 0 {
            CrashMode::Clean
        } else {
            CrashMode::Torn
        };
        let dir = scratch_dir("crash-sweep");
        let (store, _) = ProvenanceStore::open_with(&dir, StoreOptions { fsync: false }).unwrap();
        let recorder = Arc::new(FailpointRecorder::new(Arc::new(store), kill_at, mode));
        let mut system = build_system(mechanism, seed);
        system.set_recorder(Arc::clone(&recorder) as Arc<dyn dprov_core::recorder::Recorder>);
        let outcome = run_workload(&mut system, &recorder);
        assert!(recorder.is_dead(), "failpoint {kill_at} never fired");
        drop(system);
        drop(recorder);

        assert_recovery_invariants(
            &dir,
            mechanism,
            seed,
            &outcome.acked,
            &format!("{mechanism}/seed={seed}/kill_at={kill_at}/{mode:?}"),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn extra_cases() -> u64 {
    std::env::var("DPROV_CRASH_INJECTION_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn every_crash_point_recovers_safely_additive() {
    sweep(MechanismKind::AdditiveGaussian, 13);
    for case in 0..extra_cases() {
        sweep(MechanismKind::AdditiveGaussian, 1_000 + case);
    }
}

#[test]
fn every_crash_point_recovers_safely_vanilla() {
    sweep(MechanismKind::Vanilla, 13);
    for case in 0..extra_cases() {
        sweep(MechanismKind::Vanilla, 2_000 + case);
    }
}
