//! Torn-write and bit-flip corruption suite: damage the write-ahead
//! ledger's tail and the snapshot header/body, and verify recovery
//! detects it via checksum, discards exactly the torn suffix, and
//! surfaces a typed [`StorageError`] — never a panic, never silent
//! acceptance of damaged accounting.

use std::sync::Arc;

use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::QueryRequest;
use dprov_core::recorder::Recorder;
use dprov_core::system::DProvDb;
use dprov_core::StorageError;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_storage::{config_fingerprint, scratch_dir, ProvenanceStore, StoreOptions};

fn build_system(seed: u64) -> DProvDb {
    let db = adult_database(300, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    registry.register("external", 2).unwrap();
    registry.register("internal", 4).unwrap();
    let config = SystemConfig::new(50.0).unwrap().with_seed(seed);
    DProvDb::new(
        db,
        catalog,
        registry,
        config,
        MechanismKind::AdditiveGaussian,
    )
    .unwrap()
}

/// Runs a short durable workload in `dir`, returning the number of commits
/// it persisted.
fn populate(dir: &std::path::Path, queries: usize) -> usize {
    let (store, _) = ProvenanceStore::open_with(dir, StoreOptions { fsync: false }).unwrap();
    let store = Arc::new(store);
    let mut system = build_system(7);
    system.set_recorder(Arc::clone(&store) as Arc<dyn Recorder>);
    for i in 0..queries {
        let epsilon = 0.1 * (i + 1) as f64;
        let request =
            QueryRequest::with_privacy(Query::range_count("adult", "age", 20, 60), epsilon);
        system
            .submit(AnalystId(i % 2), &request)
            .unwrap()
            .answered()
            .expect("workload query must be answered");
    }
    queries
}

#[test]
fn truncated_wal_tail_recovers_the_intact_prefix() {
    let dir = scratch_dir("corrupt-wal-truncate");
    populate(&dir, 6);
    let wal = ProvenanceStore::wal_path(&dir);
    let full = std::fs::read(&wal).unwrap();
    let (_, intact) = ProvenanceStore::open(&dir).unwrap();
    let full_commits = intact.commits.len();
    let full_records = full_commits + intact.accesses.len();
    drop(intact);

    // Chop mid-way into the final frame.
    std::fs::write(&wal, &full[..full.len() - 9]).unwrap();
    let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
    assert!(
        matches!(recovered.wal_corruption, Some(StorageError::Corrupt { ref file, .. }) if file == "wal"),
        "truncation must surface a typed corruption, got {:?}",
        recovered.wal_corruption
    );
    // Exactly the torn record (a commit or an access) is gone.
    assert_eq!(
        recovered.commits.len() + recovered.accesses.len(),
        full_records - 1
    );
    assert!(recovered.commits.len() >= full_commits - 1);
    // Whatever survived is a contiguous prefix and replays cleanly.
    for (i, c) in recovered.commits.iter().enumerate() {
        assert_eq!(c.seq, i as u64);
    }
    let fresh = build_system(7);
    for c in &recovered.commits {
        fresh.replay_commit(c).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_wal_tail_is_detected_and_discarded() {
    let dir = scratch_dir("corrupt-wal-bitflip");
    populate(&dir, 6);
    let wal = ProvenanceStore::wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip one bit deep inside the last frame's payload.
    let idx = bytes.len() - 5;
    bytes[idx] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();

    let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
    assert!(
        matches!(recovered.wal_corruption, Some(StorageError::Corrupt { ref reason, .. }) if reason.contains("checksum")),
        "bit flip must fail the frame checksum, got {:?}",
        recovered.wal_corruption
    );
    for (i, c) in recovered.commits.iter().enumerate() {
        assert_eq!(c.seq, i as u64, "survivors form a contiguous prefix");
    }
    // The reopened store truncated the damage: appends land cleanly again.
    let (store, recovered) = ProvenanceStore::open(&dir).unwrap();
    assert!(
        recovered.wal_corruption.is_none(),
        "damage already truncated"
    );
    store.record_session_closed(0).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_wal_magic_is_a_hard_typed_error() {
    let dir = scratch_dir("corrupt-wal-magic");
    populate(&dir, 3);
    let wal = ProvenanceStore::wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[2] ^= 0x80;
    std::fs::write(&wal, &bytes).unwrap();
    assert!(matches!(
        ProvenanceStore::open(&dir),
        Err(StorageError::Corrupt { offset: 0, .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Compacts the populated store so a snapshot exists, then damages it.
fn populate_with_snapshot(dir: &std::path::Path) {
    let (store, _) = ProvenanceStore::open_with(dir, StoreOptions { fsync: false }).unwrap();
    let store = Arc::new(store);
    let mut system = build_system(7);
    system.set_recorder(Arc::clone(&store) as Arc<dyn Recorder>);
    for i in 0..4 {
        let request = QueryRequest::with_privacy(
            Query::range_count("adult", "age", 25, 55),
            0.2 * (i + 1) as f64,
        );
        system.submit(AnalystId(i % 2), &request).unwrap();
    }
    let fingerprint = config_fingerprint(
        7,
        50.0,
        1e-9,
        MechanismKind::AdditiveGaussian.code(),
        0,
        dprov_storage::analysts_digest([("external", 2), ("internal", 4)]),
    );
    store
        .compact(fingerprint, &system.export_durable_state())
        .unwrap();
}

#[test]
fn snapshot_header_corruption_is_a_typed_error_not_a_panic() {
    let dir = scratch_dir("corrupt-snap-header");
    populate_with_snapshot(&dir);
    let snap = ProvenanceStore::snapshot_path(&dir);
    let pristine = std::fs::read(&snap).unwrap();

    // Magic damage.
    let mut bytes = pristine.clone();
    bytes[4] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(matches!(
        ProvenanceStore::open(&dir),
        Err(StorageError::Corrupt { ref file, offset: 0, .. }) if file == "snapshot"
    ));

    // Version from the future.
    let mut bytes = pristine.clone();
    bytes[8] = 0x7F;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(matches!(
        ProvenanceStore::open(&dir),
        Err(StorageError::UnsupportedVersion { found: 0x7F, .. })
    ));

    // Declared body length lies about the file size.
    let mut bytes = pristine.clone();
    bytes[13] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(matches!(
        ProvenanceStore::open(&dir),
        Err(StorageError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_body_bit_flip_fails_the_checksum() {
    let dir = scratch_dir("corrupt-snap-body");
    populate_with_snapshot(&dir);
    let snap = ProvenanceStore::snapshot_path(&dir);
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = 20 + (bytes.len() - 24) / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&snap, &bytes).unwrap();
    match ProvenanceStore::open(&dir) {
        Err(StorageError::Corrupt { file, reason, .. }) => {
            assert_eq!(file, "snapshot");
            assert!(reason.contains("checksum"), "unexpected reason: {reason}");
        }
        other => panic!("expected snapshot corruption, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn intact_snapshot_plus_wal_suffix_round_trips_budget_state() {
    // The happy path the corruption cases guard: snapshot + later commits
    // recover into the exact live budget state.
    let dir = scratch_dir("corrupt-happy");
    let (store, _) = ProvenanceStore::open_with(&dir, StoreOptions { fsync: false }).unwrap();
    let store = Arc::new(store);
    let mut system = build_system(7);
    system.set_recorder(Arc::clone(&store) as Arc<dyn Recorder>);
    let request = |e: f64| {
        QueryRequest::with_privacy(Query::range_count("adult", "hours_per_week", 10, 60), e)
    };
    system.submit(AnalystId(0), &request(0.2)).unwrap();
    system.submit(AnalystId(1), &request(0.4)).unwrap();
    store.compact(99, &system.export_durable_state()).unwrap();
    // Two more commits after the snapshot.
    system.submit(AnalystId(0), &request(0.6)).unwrap();
    system.submit(AnalystId(1), &request(0.8)).unwrap();
    let live_provenance = system.provenance();
    let live_tight = system.tight_accounting();
    drop(system);
    drop(store);

    let (_, recovered) = ProvenanceStore::open(&dir).unwrap();
    assert_eq!(recovered.snapshot.as_ref().unwrap().fingerprint, 99);
    assert_eq!(recovered.commits.len(), 2, "only the post-snapshot suffix");
    let fresh = build_system(7);
    fresh
        .import_durable_state(&recovered.snapshot.unwrap().core)
        .unwrap();
    for c in &recovered.commits {
        fresh.replay_commit(c).unwrap();
    }
    for a in &recovered.accesses {
        fresh.replay_access(a);
    }
    for analyst in [AnalystId(0), AnalystId(1)] {
        assert_eq!(
            fresh.provenance().row_total(analyst),
            live_provenance.row_total(analyst),
            "recovered budget state must be bit-exact"
        );
    }
    assert_eq!(
        fresh.tight_accounting().epsilon.value(),
        live_tight.epsilon.value()
    );
    std::fs::remove_dir_all(&dir).ok();
}
