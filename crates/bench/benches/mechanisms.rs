//! Micro-benchmarks of the DP mechanisms: analytic-Gaussian calibration and
//! the additive Gaussian release (Algorithm 3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dprov_dp::budget::Budget;
use dprov_dp::mechanism::{additive_gaussian_release, analytic_gaussian_sigma, AnalyticGaussian};
use dprov_dp::rng::DpRng;
use dprov_dp::sensitivity::Sensitivity;

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_gaussian_calibration");
    for &eps in &[0.1, 1.0, 6.4] {
        group.bench_function(format!("sigma(eps={eps})"), |b| {
            b.iter(|| analytic_gaussian_sigma(black_box(eps), black_box(1e-9), 1.0).unwrap())
        });
    }
    group.finish();
}

fn bench_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_release");
    let budget = Budget::new(1.0, 1e-9).unwrap();
    let mechanism = AnalyticGaussian::calibrate(budget, Sensitivity::COUNT).unwrap();
    let truth = vec![100.0; 128];
    group.bench_function("analytic_vector_128", |b| {
        let mut rng = DpRng::seed_from_u64(1);
        b.iter(|| mechanism.release_vector(black_box(&truth), &mut rng))
    });
    group.finish();
}

fn bench_additive_gm(c: &mut Criterion) {
    let mut group = c.benchmark_group("additive_gaussian");
    let truth = vec![100.0; 128];
    for &n in &[2usize, 6] {
        let budgets: Vec<Budget> = (1..=n)
            .map(|i| Budget::new(0.2 * i as f64, 1e-9).unwrap())
            .collect();
        group.bench_function(format!("release_{n}_analysts_128_bins"), |b| {
            let mut rng = DpRng::seed_from_u64(2);
            b.iter(|| {
                additive_gaussian_release(
                    black_box(&truth),
                    Sensitivity::COUNT,
                    black_box(&budgets),
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_calibration, bench_release, bench_additive_gm);
criterion_main!(benches);
