//! Micro-benchmarks of the accuracy→privacy translation (Definition 9 and
//! the friction-aware Eq. 3 variant). The paper reports the translation
//! overhead is below 2 ms per query; these benches verify we are far below
//! that.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dprov_dp::budget::{Delta, Epsilon};
use dprov_dp::sensitivity::Sensitivity;
use dprov_dp::translation::{translate_variance_to_epsilon, FrictionAwareTranslation};

fn bench_vanilla_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_vanilla");
    let delta = Delta::new(1e-9).unwrap();
    let max_eps = Epsilon::new(10.0).unwrap();
    for &target in &[10.0, 1_000.0, 100_000.0] {
        group.bench_function(format!("variance_{target}"), |b| {
            b.iter(|| {
                translate_variance_to_epsilon(
                    black_box(target),
                    delta,
                    Sensitivity::histogram_bounded(),
                    max_eps,
                    1e-4,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_friction_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_friction_aware");
    let translator =
        FrictionAwareTranslation::new(Delta::new(1e-9).unwrap(), Sensitivity::histogram_bounded());
    let max_eps = Epsilon::new(10.0).unwrap();
    group.bench_function("existing_synopsis", |b| {
        b.iter(|| {
            translator
                .translate(black_box(50.0), Some(black_box(200.0)), max_eps)
                .unwrap()
        })
    });
    group.bench_function("no_existing_synopsis", |b| {
        b.iter(|| {
            translator
                .translate(black_box(50.0), None, max_eps)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vanilla_translation,
    bench_friction_translation
);
criterion_main!(benches);
