//! End-to-end per-query latency per system — the micro view of the
//! "Per Query Perf" column of Tables 1 and 3.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use dprov_bench::setup::{build_system, default_privileges, Dataset, SystemKind};
use dprov_core::analyst::AnalystId;
use dprov_core::config::SystemConfig;
use dprov_core::processor::QueryRequest;
use dprov_engine::query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_request(rng: &mut StdRng) -> QueryRequest {
    let lo = rng.gen_range(17..70i64);
    let hi = (lo + rng.gen_range(1..20i64)).min(90);
    let variance = rng.gen_range(5_000.0..50_000.0);
    QueryRequest::with_accuracy(Query::range_count("adult", "age", lo, hi), variance)
}

fn bench_per_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_query_latency");
    group.sample_size(30);
    let db = Dataset::Adult.build(10_000, 1);
    let config = SystemConfig::new(6.4).unwrap().with_seed(5);

    for kind in [
        SystemKind::DProvDb,
        SystemKind::Vanilla,
        SystemKind::SPrivateSql,
        SystemKind::Chorus,
    ] {
        group.bench_function(format!("submit_10_{}", kind.label()), |b| {
            b.iter_batched(
                || {
                    let system = build_system(kind, &db, &default_privileges(), &config).unwrap();
                    let rng = StdRng::seed_from_u64(9);
                    (system, rng)
                },
                |(mut system, mut rng)| {
                    for _ in 0..10 {
                        let request = random_request(&mut rng);
                        let _ = black_box(system.submit(AnalystId(1), &request).unwrap());
                    }
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_query);
criterion_main!(benches);
