//! Micro-benchmarks of view materialisation and synopsis management: the
//! setup cost (Tables 1/3) and the per-release cost of the global/local
//! synopsis machinery.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use dprov_core::synopsis_manager::SynopsisManager;
use dprov_dp::budget::Delta;
use dprov_dp::rng::DpRng;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::histogram::Histogram;
use dprov_engine::view::ViewDef;

fn bench_materialisation(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_materialisation");
    group.sample_size(20);
    let db = adult_database(20_000, 1);
    let one_way = ViewDef::histogram("adult.age", "adult", &["age"]);
    let two_way = ViewDef::histogram("adult.age_edu", "adult", &["age", "education"]);
    group.bench_function("one_way_20k_rows", |b| {
        b.iter(|| Histogram::materialize(black_box(&db), &one_way).unwrap())
    });
    group.bench_function("two_way_20k_rows", |b| {
        b.iter(|| Histogram::materialize(black_box(&db), &two_way).unwrap())
    });
    group.finish();
}

fn bench_synopsis_management(c: &mut Criterion) {
    let mut group = c.benchmark_group("synopsis_management");
    let db = adult_database(5_000, 1);
    let view = ViewDef::histogram("adult.age", "adult", &["age"]);
    let mut manager = SynopsisManager::new(Delta::new(1e-9).unwrap());
    manager.register_view(&db, &view).unwrap();

    group.bench_function("fresh_synopsis_74_bins", |b| {
        let mut rng = DpRng::seed_from_u64(1);
        b.iter(|| {
            manager
                .fresh_synopsis("adult.age", black_box(1.0), &mut rng)
                .unwrap()
        })
    });

    group.bench_function("ensure_global_growth", |b| {
        b.iter_batched(
            || {
                let mut m = SynopsisManager::new(Delta::new(1e-9).unwrap());
                m.register_view(&db, &view).unwrap();
                let mut rng = DpRng::seed_from_u64(2);
                m.ensure_global("adult.age", 0.5, &mut rng).unwrap();
                (m, rng)
            },
            |(m, mut rng)| {
                m.ensure_global("adult.age", black_box(0.7), &mut rng)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("derive_local", |b| {
        let mut m = SynopsisManager::new(Delta::new(1e-9).unwrap());
        m.register_view(&db, &view).unwrap();
        let mut rng = DpRng::seed_from_u64(3);
        m.ensure_global("adult.age", 2.0, &mut rng).unwrap();
        b.iter(|| {
            m.derive_local(0, "adult.age", black_box(0.5), &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_materialisation, bench_synopsis_management);
criterion_main!(benches);
