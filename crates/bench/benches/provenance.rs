//! Micro-benchmarks of the privacy provenance table: constraint checking
//! and charging for both mechanisms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dprov_core::analyst::AnalystId;
use dprov_core::provenance::ProvenanceTable;

fn build_table(analysts: usize, views: usize) -> ProvenanceTable {
    let mut table = ProvenanceTable::new(100.0);
    for a in 0..analysts {
        table.add_analyst(AnalystId(a), 50.0);
    }
    for v in 0..views {
        table.add_view(&format!("view-{v}"), 100.0);
    }
    // Populate with some existing charges.
    for a in 0..analysts {
        for v in 0..views {
            table.charge(AnalystId(a), &format!("view-{v}"), 0.01 * (a + v) as f64);
        }
    }
    table
}

fn bench_constraint_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_constraint_check");
    for &(analysts, views) in &[(2usize, 13usize), (6, 13), (6, 64)] {
        let table = build_table(analysts, views);
        group.bench_function(format!("vanilla_{analysts}x{views}"), |b| {
            b.iter(|| table.check_vanilla(black_box(AnalystId(1)), black_box("view-3"), 0.05))
        });
        group.bench_function(format!("additive_{analysts}x{views}"), |b| {
            b.iter(|| table.check_additive(black_box(AnalystId(1)), black_box("view-3"), 0.05))
        });
    }
    group.finish();
}

fn bench_charging(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_update");
    group.bench_function("charge_and_compose", |b| {
        let mut table = build_table(6, 13);
        b.iter(|| {
            table.charge(AnalystId(2), "view-5", 1e-6);
            black_box(table.total_of_column_maxes())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_constraint_checks, bench_charging);
criterion_main!(benches);
