//! Sweep helpers used by the experiment binaries.

use dprov_core::config::SystemConfig;
use dprov_core::Result as CoreResult;
use dprov_engine::database::Database;
use dprov_workloads::metrics::{aggregate, AggregatedMetrics, RunMetrics};
use dprov_workloads::rrq::RrqWorkload;
use dprov_workloads::runner::ExperimentRunner;
use dprov_workloads::sequence::Interleaving;

use crate::setup::{build_system, SystemKind};

/// The configuration of one end-to-end comparison cell.
#[derive(Debug, Clone)]
pub struct ComparisonSpec {
    /// Overall budget ψ_P.
    pub epsilon: f64,
    /// Per-query δ.
    pub delta: f64,
    /// Analyst privilege levels.
    pub privileges: Vec<u8>,
    /// Interleaving of analyst submissions.
    pub interleaving: Interleaving,
    /// Seeds to repeat the run with (the paper averages 4 seeds).
    pub seeds: Vec<u64>,
}

impl ComparisonSpec {
    /// A spec with the experiments' defaults (2 analysts, privileges 1 & 4,
    /// round-robin, 2 seeds to keep CI time reasonable).
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        ComparisonSpec {
            epsilon,
            delta: 1e-9,
            privileges: vec![1, 4],
            interleaving: Interleaving::RoundRobin,
            seeds: vec![1, 2],
        }
    }

    fn config(&self, seed: u64) -> CoreResult<SystemConfig> {
        Ok(SystemConfig::new(self.epsilon)?
            .with_delta(self.delta)?
            .with_seed(seed))
    }
}

/// Runs one system over one RRQ workload for every seed in the spec and
/// aggregates the runs.
pub fn run_rrq_comparison_cell(
    kind: SystemKind,
    db: &Database,
    workload: &RrqWorkload,
    spec: &ComparisonSpec,
) -> CoreResult<(AggregatedMetrics, Vec<RunMetrics>)> {
    let runner = ExperimentRunner::new(&spec.privileges).with_ground_truth(db);
    let mut runs = Vec::with_capacity(spec.seeds.len());
    for &seed in &spec.seeds {
        let config = spec.config(seed)?;
        let mut system = build_system(kind, db, &spec.privileges, &config)?;
        runs.push(runner.run_rrq(system.as_mut(), workload, spec.interleaving)?);
    }
    Ok((aggregate(&runs), runs))
}

/// Runs every system of [`SystemKind::ALL`] over the same workload.
pub fn run_rrq_comparison(
    db: &Database,
    workload: &RrqWorkload,
    spec: &ComparisonSpec,
) -> CoreResult<Vec<(SystemKind, AggregatedMetrics)>> {
    let mut out = Vec::new();
    for kind in SystemKind::ALL {
        let (agg, _) = run_rrq_comparison_cell(kind, db, workload, spec)?;
        out.push((kind, agg));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Dataset;
    use dprov_workloads::rrq::{generate, RrqConfig};

    #[test]
    fn comparison_runs_every_system_and_dprovdb_wins() {
        // The cached-view advantage needs a workload that is large relative
        // to the number of views (the paper uses 4,000 queries per analyst);
        // 150 per analyst is enough for the ordering to emerge.
        let db = Dataset::Adult.build(800, 1);
        let workload = generate(&db, &RrqConfig::new("adult", 150, 3), 2).unwrap();
        let mut spec = ComparisonSpec::new(0.8);
        spec.seeds = vec![1];
        let results = run_rrq_comparison(&db, &workload, &spec).unwrap();
        assert_eq!(results.len(), 5);
        let answered = |kind: SystemKind| {
            results
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, a)| a.mean_answered)
                .unwrap()
        };
        // The headline shape of Fig. 3 under a tight budget: DProvDB answers
        // at least as many queries as the vanilla approach, and strictly
        // more than plain Chorus and the static sPrivateSQL split.
        assert!(answered(SystemKind::DProvDb) >= answered(SystemKind::Vanilla));
        assert!(answered(SystemKind::DProvDb) > answered(SystemKind::Chorus));
        assert!(answered(SystemKind::DProvDb) > answered(SystemKind::SPrivateSql));
    }
}
