//! # `dprov-bench` — the benchmark and experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md §3
//! for the experiment index) plus Criterion micro-benchmarks. The shared
//! plumbing lives here:
//!
//! * [`setup`] — dataset and system construction for all five compared
//!   systems (DProvDB, Vanilla, sPrivateSQL, Chorus, ChorusP);
//! * [`harness`] — sweep helpers that run one workload across systems and
//!   collect [`dprov_workloads::metrics::RunMetrics`];
//! * [`report`] — fixed-width table printing and JSON output for the
//!   experiment binaries.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod harness;
pub mod report;
pub mod setup;
