//! Figure 11 — component comparison of the additive GM on TPC-H.
//!
//! The TPC-H counterpart of Fig. 6: #queries answered vs #analysts (ε = 3.2)
//! and vs the overall budget (2 analysts), for DProvDB-l_max, DProvDB-l_sum
//! and Vanilla-l_sum.
//!
//! Scale knobs: `DPROV_ROWS` (default 20000), `DPROV_QUERIES` (default 300).

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{env_usize, registry_with, Dataset};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::database::Database;
use dprov_workloads::rrq::{generate, RrqConfig, RrqWorkload};
use dprov_workloads::runner::ExperimentRunner;
use dprov_workloads::sequence::Interleaving;

#[derive(Clone, Copy)]
enum Series {
    DProvDbLMax,
    DProvDbLSum,
    VanillaLSum,
}

impl Series {
    const ALL: [Series; 3] = [
        Series::DProvDbLMax,
        Series::DProvDbLSum,
        Series::VanillaLSum,
    ];

    fn build(self, db: &Database, table: &str, privileges: &[u8], epsilon: f64) -> DProvDb {
        let (mechanism, spec) = match self {
            Series::DProvDbLMax => (
                MechanismKind::AdditiveGaussian,
                AnalystConstraintSpec::MaxNormalized {
                    system_max_level: None,
                },
            ),
            Series::DProvDbLSum => (
                MechanismKind::AdditiveGaussian,
                AnalystConstraintSpec::ProportionalSum,
            ),
            Series::VanillaLSum => (
                MechanismKind::Vanilla,
                AnalystConstraintSpec::ProportionalSum,
            ),
        };
        let config = SystemConfig::new(epsilon)
            .expect("epsilon")
            .with_seed(5)
            .with_analyst_constraints(spec);
        let catalog = ViewCatalog::one_per_attribute(db, table).expect("catalog");
        DProvDb::new(
            db.clone(),
            catalog,
            registry_with(privileges),
            config,
            mechanism,
        )
        .expect("system setup")
    }
}

fn privileges_for(n: usize) -> Vec<u8> {
    let mut p = vec![1u8; n.saturating_sub(1)];
    p.push(4);
    p
}

fn answered(
    series: Series,
    db: &Database,
    table: &str,
    workload: &RrqWorkload,
    privileges: &[u8],
    epsilon: f64,
) -> f64 {
    let mut system = series.build(db, table, privileges, epsilon);
    let runner = ExperimentRunner::new(privileges);
    runner
        .run_rrq(&mut system, workload, Interleaving::RoundRobin)
        .expect("run")
        .total_answered() as f64
}

fn main() {
    let dataset = Dataset::Tpch;
    let rows = env_usize("DPROV_ROWS", 20_000);
    let queries = env_usize("DPROV_QUERIES", 300);
    let db = dataset.build(rows, 42);
    let table = dataset.table();

    banner("Fig. 11 (left): #queries answered vs #analysts (ε = 3.2, TPC-H, round-robin)");
    let mut left = Table::new(&[
        "#analysts",
        "DProvDB-l_max",
        "DProvDB-l_sum",
        "Vanilla-l_sum",
    ]);
    for n in 2..=6usize {
        let privileges = privileges_for(n);
        let workload = generate(&db, &RrqConfig::new(table, queries, 7), n).expect("workload");
        let mut row = vec![format!("{n}")];
        for series in Series::ALL {
            row.push(fmt_f64(
                answered(series, &db, table, &workload, &privileges, 3.2),
                0,
            ));
        }
        left.add_row(&row);
    }
    left.print();

    banner("Fig. 11 (right): #queries answered vs overall budget (2 analysts, TPC-H)");
    let privileges = privileges_for(2);
    let workload = generate(&db, &RrqConfig::new(table, queries, 7), 2).expect("workload");
    let mut right = Table::new(&["epsilon", "DProvDB-l_max", "DProvDB-l_sum", "Vanilla-l_sum"]);
    for &eps in &[0.4, 0.8, 1.6, 3.2, 6.4] {
        let mut row = vec![format!("{eps}")];
        for series in Series::ALL {
            row.push(fmt_f64(
                answered(series, &db, table, &workload, &privileges, eps),
                0,
            ));
        }
        right.add_row(&row);
    }
    right.print();
}
