//! Figure 10 — end-to-end comparison on the TPC-H dataset (RRQ task).
//!
//! The TPC-H counterpart of Fig. 3: #queries answered and nDCFG vs the
//! overall budget, round-robin and randomized interleavings, five systems.
//!
//! Scale knobs: `DPROV_ROWS` (default 20000), `DPROV_QUERIES` (default 400),
//! `DPROV_SEEDS` (default 2).

use dprov_bench::harness::{run_rrq_comparison, ComparisonSpec};
use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{env_usize, Dataset};
use dprov_workloads::rrq::{generate, RrqConfig};
use dprov_workloads::sequence::Interleaving;

fn main() {
    let rows = env_usize("DPROV_ROWS", 20_000);
    let queries = env_usize("DPROV_QUERIES", 400);
    let seeds = env_usize("DPROV_SEEDS", 2);
    let epsilons = [0.4, 0.8, 1.6, 3.2, 6.4];

    let db = Dataset::Tpch.build(rows, 42);
    let workload = generate(&db, &RrqConfig::new(Dataset::Tpch.table(), queries, 7), 2)
        .expect("workload generation");

    for (interleaving, label) in [
        (Interleaving::RoundRobin, "round-robin"),
        (Interleaving::Random { seed: 99 }, "randomized"),
    ] {
        banner(&format!(
            "Fig. 10 ({label}): #queries answered and nDCFG vs overall budget (TPC-H, {queries} queries/analyst)"
        ));
        let mut answered_table = Table::new(&[
            "epsilon",
            "DProvDB",
            "Vanilla",
            "sPrivateSQL",
            "Chorus",
            "ChorusP",
        ]);
        let mut fairness_table = Table::new(&[
            "epsilon",
            "DProvDB",
            "Vanilla",
            "sPrivateSQL",
            "Chorus",
            "ChorusP",
        ]);

        for &eps in &epsilons {
            let mut spec = ComparisonSpec::new(eps);
            spec.interleaving = interleaving;
            spec.seeds = (1..=seeds as u64).collect();
            let results = run_rrq_comparison(&db, &workload, &spec).expect("comparison run");
            let mut answered_row = vec![format!("{eps}")];
            answered_row.extend(results.iter().map(|(_, agg)| fmt_f64(agg.mean_answered, 1)));
            answered_table.add_row(&answered_row);
            let mut fairness_row = vec![format!("{eps}")];
            fairness_row.extend(results.iter().map(|(_, agg)| fmt_f64(agg.mean_ndcfg, 3)));
            fairness_table.add_row(&fairness_row);
        }

        println!("\n#queries answered:");
        answered_table.print();
        println!("\nnDCFG fairness:");
        fairness_table.print();
    }
}
