//! Figure 9 — (a) accuracy-privacy translation correctness and (b) relative
//! error of the BFS workload (Adult).
//!
//! Panel (a): the cumulative average of `v_q − v_i` (delivered noise
//! variance minus requested accuracy bound) over a BFS workload. The
//! translation is correct when this stays at or below zero.
//!
//! Panel (b): the data-dependent relative error
//! `|true − noisy| / max(true, c)` of the answered BFS queries per
//! mechanism. View-based mechanisms answer many more small-count region
//! queries, so their relative error is *larger* — exactly the effect the
//! paper reports.
//!
//! Scale knobs: `DPROV_ROWS` (default 45222).

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{build_system, default_privileges, env_usize, Dataset, SystemKind};
use dprov_core::config::SystemConfig;
use dprov_workloads::bfs::BfsConfig;
use dprov_workloads::runner::ExperimentRunner;

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::DProvDb,
    SystemKind::Vanilla,
    SystemKind::Chorus,
    SystemKind::ChorusP,
];

fn main() {
    let rows = env_usize("DPROV_ROWS", 45_222);
    let db = Dataset::Adult.build(rows, 42);
    let privileges = default_privileges();
    let config = SystemConfig::new(6.4).expect("epsilon").with_seed(3);
    let runner = ExperimentRunner::new(&privileges).with_ground_truth(&db);
    let bfs_configs = vec![
        BfsConfig::new("adult", "age", 400.0),
        BfsConfig::new("adult", "hours_per_week", 400.0),
    ];

    banner("Fig. 9(a): cumulative average of v_q − v_i over the BFS workload (DProvDB, Adult)");
    let mut system = build_system(SystemKind::DProvDb, &db, &privileges, &config).expect("setup");
    let metrics = runner
        .run_bfs(system.as_mut(), &db, &bfs_configs)
        .expect("run");
    let mut table = Table::new(&["query index", "cumulative avg of v_q − v_i"]);
    let gaps = &metrics.translation_gaps;
    let mut running = 0.0;
    for (i, gap) in gaps.iter().enumerate() {
        running += gap;
        let index = i + 1;
        if index % (gaps.len() / 10).max(1) == 0 || index == gaps.len() {
            table.add_row(&[format!("{index}"), fmt_f64(running / index as f64, 2)]);
        }
    }
    table.print();
    println!(
        "max single-query gap: {:.3} (correct translation keeps this <= 0)",
        metrics.max_translation_gap()
    );

    banner("Fig. 9(b): relative error of the BFS workload per mechanism (Adult)");
    let mut table = Table::new(&["System", "#answered", "mean relative error"]);
    for kind in SYSTEMS {
        let mut system = build_system(kind, &db, &privileges, &config).expect("setup");
        let metrics = runner
            .run_bfs(system.as_mut(), &db, &bfs_configs)
            .expect("run");
        table.add_row(&[
            kind.label().to_owned(),
            format!("{}", metrics.total_answered()),
            fmt_f64(metrics.mean_relative_error(), 3),
        ]);
    }
    table.print();
}
