//! Figure 6 — component comparison: additive GM vs vanilla and the analyst
//! constraint specifications (Adult dataset).
//!
//! Left panel: utility vs the number of analysts (2..6) at ε = 3.2.
//! Right panel: utility vs the overall budget with 2 analysts.
//! Series: DProvDB-l_max (additive GM + Def. 11), DProvDB-l_sum (additive GM
//! + Def. 10) and Vanilla-l_sum (vanilla + Def. 10).
//!
//! Scale knobs: `DPROV_ROWS`, `DPROV_QUERIES` (default 300).

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{env_usize, registry_with, Dataset};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::database::Database;
use dprov_workloads::rrq::{generate, RrqConfig, RrqWorkload};
use dprov_workloads::runner::ExperimentRunner;
use dprov_workloads::sequence::Interleaving;

/// The three series of Fig. 6 / Fig. 11.
#[derive(Clone, Copy)]
enum Series {
    DProvDbLMax,
    DProvDbLSum,
    VanillaLSum,
}

impl Series {
    const ALL: [Series; 3] = [
        Series::DProvDbLMax,
        Series::DProvDbLSum,
        Series::VanillaLSum,
    ];

    fn build(self, db: &Database, table: &str, privileges: &[u8], epsilon: f64) -> DProvDb {
        let (mechanism, spec) = match self {
            Series::DProvDbLMax => (
                MechanismKind::AdditiveGaussian,
                AnalystConstraintSpec::MaxNormalized {
                    system_max_level: None,
                },
            ),
            Series::DProvDbLSum => (
                MechanismKind::AdditiveGaussian,
                AnalystConstraintSpec::ProportionalSum,
            ),
            Series::VanillaLSum => (
                MechanismKind::Vanilla,
                AnalystConstraintSpec::ProportionalSum,
            ),
        };
        let config = SystemConfig::new(epsilon)
            .expect("epsilon")
            .with_seed(5)
            .with_analyst_constraints(spec);
        let catalog = ViewCatalog::one_per_attribute(db, table).expect("catalog");
        DProvDb::new(
            db.clone(),
            catalog,
            registry_with(privileges),
            config,
            mechanism,
        )
        .expect("system setup")
    }
}

/// Privileges for `n` analysts: one high-privilege (4) analyst plus
/// low-privilege (1) analysts, mirroring the default two-analyst setting.
fn privileges_for(n: usize) -> Vec<u8> {
    let mut p = vec![1u8; n.saturating_sub(1)];
    p.push(4);
    p
}

fn run_series(
    series: Series,
    db: &Database,
    table: &str,
    workload: &RrqWorkload,
    privileges: &[u8],
    epsilon: f64,
) -> f64 {
    let mut system = series.build(db, table, privileges, epsilon);
    let runner = ExperimentRunner::new(privileges);
    let metrics = runner
        .run_rrq(&mut system, workload, Interleaving::RoundRobin)
        .expect("run");
    metrics.total_answered() as f64
}

/// Shared implementation for Fig. 6 (Adult) and Fig. 11 (TPC-H).
pub fn run_figure(dataset: Dataset, rows: usize, queries: usize, figure: &str) {
    let db = dataset.build(rows, 42);
    let table = dataset.table();

    // Left panel: vary the number of analysts at ε = 3.2.
    banner(&format!(
        "{figure} (left): #queries answered vs #analysts (ε = 3.2, {}, round-robin)",
        dataset.label()
    ));
    let mut left = Table::new(&[
        "#analysts",
        "DProvDB-l_max",
        "DProvDB-l_sum",
        "Vanilla-l_sum",
    ]);
    for n in 2..=6usize {
        let privileges = privileges_for(n);
        let workload = generate(&db, &RrqConfig::new(table, queries, 7), n).expect("workload");
        let mut row = vec![format!("{n}")];
        for series in Series::ALL {
            row.push(fmt_f64(
                run_series(series, &db, table, &workload, &privileges, 3.2),
                0,
            ));
        }
        left.add_row(&row);
    }
    left.print();

    // Right panel: vary the overall budget with 2 analysts.
    banner(&format!(
        "{figure} (right): #queries answered vs overall budget (2 analysts, {})",
        dataset.label()
    ));
    let privileges = privileges_for(2);
    let workload = generate(&db, &RrqConfig::new(table, queries, 7), 2).expect("workload");
    let mut right = Table::new(&["epsilon", "DProvDB-l_max", "DProvDB-l_sum", "Vanilla-l_sum"]);
    for &eps in &[0.8, 1.6, 3.2, 6.4] {
        let mut row = vec![format!("{eps}")];
        for series in Series::ALL {
            row.push(fmt_f64(
                run_series(series, &db, table, &workload, &privileges, eps),
                0,
            ));
        }
        right.add_row(&row);
    }
    right.print();
}

fn main() {
    run_figure(
        Dataset::Adult,
        env_usize("DPROV_ROWS", 45_222),
        env_usize("DPROV_QUERIES", 300),
        "Fig. 6",
    );
}
