//! Figure 4 — BFS task: cumulative privacy budget vs workload index.
//!
//! Each analyst explores attribute domains with the adaptive BFS task; the
//! plot tracks the system's cumulative privacy consumption after every
//! submitted query. View-based systems (DProvDB, Vanilla) flatten out —
//! repeated region counts hit the cached synopses — while Chorus/ChorusP
//! grow linearly with the workload.
//!
//! Scale knobs: `DPROV_ROWS` (Adult default 45222, TPC-H default 20000).

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{build_system, default_privileges, env_usize, Dataset, SystemKind};
use dprov_core::config::SystemConfig;
use dprov_workloads::bfs::BfsConfig;
use dprov_workloads::runner::ExperimentRunner;

/// The systems compared in Fig. 4 (sPrivateSQL has no meaningful cumulative
/// trace: it spends everything at setup).
const SYSTEMS: [SystemKind; 4] = [
    SystemKind::ChorusP,
    SystemKind::Chorus,
    SystemKind::Vanilla,
    SystemKind::DProvDb,
];

fn bfs_configs(dataset: Dataset) -> Vec<BfsConfig> {
    match dataset {
        Dataset::Adult => vec![
            BfsConfig::new("adult", "age", 400.0),
            BfsConfig::new("adult", "hours_per_week", 400.0),
        ],
        Dataset::Tpch => vec![
            BfsConfig::new("lineitem", "quantity", 400.0),
            BfsConfig::new("lineitem", "shipdate_month", 400.0),
        ],
    }
}

fn run_dataset(dataset: Dataset, rows: usize, epsilon: f64) {
    banner(&format!(
        "Fig. 4: cumulative budget vs workload index ({}, ε = {epsilon})",
        dataset.label()
    ));
    let db = dataset.build(rows, 42);
    let config = SystemConfig::new(epsilon)
        .expect("valid epsilon")
        .with_seed(1);
    let runner = ExperimentRunner::new(&default_privileges());

    let mut traces: Vec<(SystemKind, Vec<f64>)> = Vec::new();
    for kind in SYSTEMS {
        let mut system =
            build_system(kind, &db, &default_privileges(), &config).expect("system setup");
        let metrics = runner
            .run_bfs(system.as_mut(), &db, &bfs_configs(dataset))
            .expect("bfs run");
        traces.push((kind, metrics.budget_trace));
    }

    let max_len = traces.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
    let mut table = Table::new(&["workload index", "ChorusP", "Chorus", "Vanilla", "DProvDB"]);
    let checkpoints: Vec<usize> = (0..=10).map(|i| i * max_len.max(1) / 10).collect();
    for &idx in &checkpoints {
        let mut row = vec![format!("{idx}")];
        for (_, trace) in &traces {
            let value = if trace.is_empty() {
                0.0
            } else {
                trace[idx.min(trace.len() - 1)]
            };
            row.push(fmt_f64(value, 4));
        }
        table.add_row(&row);
    }
    table.print();
    for (kind, trace) in &traces {
        println!(
            "{:<10} issued {} queries, final cumulative ε = {:.4}",
            kind.label(),
            trace.len(),
            trace.last().copied().unwrap_or(0.0)
        );
    }
}

fn main() {
    let adult_rows = env_usize("DPROV_ROWS", 45_222);
    let tpch_rows = env_usize("DPROV_TPCH_ROWS", 20_000);
    run_dataset(Dataset::Adult, adult_rows, 3.2);
    run_dataset(Dataset::Tpch, tpch_rows, 0.8);
}
