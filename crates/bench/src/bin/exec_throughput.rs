//! Throughput of the batched columnar execution subsystem (`dprov-exec`):
//! row-at-a-time vs columnar single-query vs columnar batched evaluation,
//! with the **scans-per-query** amortisation at batch sizes 1/4/16/64.
//!
//! The workload is the skewed multi-analyst scenario (`dprov-workloads`'s
//! Zipfian generator in its batch-friendly setting): range counts
//! concentrated on the most popular attribute of one shared relation —
//! exactly the traffic shape the multi-analyst service produces. All three
//! execution modes compute bit-identical answers (verified inline); only
//! the number of passes over the data changes:
//!
//! * **row-at-a-time** (`dprov_engine::exec::execute`): one full
//!   row-by-row pass per query — N queries, N scans;
//! * **columnar ×1**: one vectorised shard pass per query — still N
//!   scans, but each pass is kernel-compiled and zone-map pruned;
//! * **columnar batched ×B**: one shard pass per *batch* — N/B scans,
//!   every query folding each shard while it is cache-hot. This is the
//!   amortisation the server's per-view micro-batches feed.
//!
//! Latency percentiles are per evaluation call: one query for the row and
//! columnar ×1 modes, one whole batch for the batched modes (the unit a
//! waiting micro-batch experiences).
//!
//! Even on 1 vCPU the batched mode wins: amortisation needs no
//! parallelism, it just stops re-reading the same columns.
//!
//! ```text
//! cargo run --release --bin exec_throughput [-- total_queries [rows]]
//! ```

use std::time::Instant;

use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport, Latencies};
use dprov_engine::database::Database;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::exec::execute;
use dprov_engine::query::Query;
use dprov_exec::{ColumnEncoding, ColumnarExecutor, ExecConfig};
use dprov_workloads::skew::{generate, SkewConfig};

const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];
const ENCODINGS: [(ColumnEncoding, &str); 4] = [
    (ColumnEncoding::Plain, "plain"),
    (ColumnEncoding::BitPacked, "bit-packed"),
    (ColumnEncoding::Dictionary, "dictionary"),
    (ColumnEncoding::Auto, "auto"),
];
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn workload(db: &Database, total_queries: usize) -> Vec<Query> {
    let config = SkewConfig::batch_friendly("adult", 1, total_queries).with_seed(11);
    generate(db, &config)
        .unwrap()
        .per_analyst
        .into_iter()
        .flatten()
        .map(|request| request.query)
        .collect()
}

/// One table/JSON row shared by all three modes.
#[allow(clippy::too_many_arguments)]
fn mode_row(
    report: &mut BenchReport,
    mode: &str,
    batch: usize,
    elapsed: f64,
    qps: f64,
    speedup: f64,
    scans_per_query: f64,
    latencies: &Latencies,
) {
    let mut row = vec![
        cell("mode", mode),
        cell("batch", batch),
        cell_fmt("elapsed_s", elapsed, fmt_f64(elapsed, 3)),
        cell_fmt("qps", qps, fmt_f64(qps, 0)),
        cell_fmt("speedup", speedup, format!("{speedup:.2}x")),
        cell_fmt(
            "scans_per_query",
            scans_per_query,
            fmt_f64(scans_per_query, 3),
        ),
    ];
    row.extend(latencies.percentile_cells());
    report.row(&row);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let total_queries: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let rows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);

    println!(
        "exec_throughput: {total_queries} skewed range counts over the {rows}-row adult table \
         (shared relation, Zipfian view popularity)"
    );
    let db = adult_database(rows, 1);
    let queries = workload(&db, total_queries);
    let exec = ColumnarExecutor::ingest(&db, &ExecConfig::default());

    let mut report = BenchReport::new("exec_throughput");
    report.arg("total_queries", total_queries).arg("rows", rows);
    report.section(
        "row-at-a-time vs columnar vs batched",
        &[
            "mode",
            "batch",
            "elapsed_s",
            "qps",
            "speedup",
            "scans/query",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
        ],
    );

    // Reference: the engine's row-at-a-time path, one scan per query.
    let row_latencies = Latencies::new();
    let row_start = Instant::now();
    let reference: Vec<f64> = queries
        .iter()
        .map(|q| row_latencies.time(|| execute(&db, q).unwrap().scalar().unwrap()))
        .collect();
    let row_elapsed = row_start.elapsed().as_secs_f64();
    let row_qps = total_queries as f64 / row_elapsed;
    mode_row(
        &mut report,
        "row-at-a-time",
        1,
        row_elapsed,
        row_qps,
        1.0,
        1.0,
        &row_latencies,
    );

    for batch in BATCH_SIZES {
        exec.reset_stats();
        let latencies = Latencies::new();
        let start = Instant::now();
        let mut results = Vec::with_capacity(total_queries);
        for chunk in queries.chunks(batch) {
            results.extend(latencies.time(|| exec.execute_batch(chunk).unwrap()));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let stats = exec.stats();

        // Every mode must agree with the row path bit for bit.
        for ((q, got), want) in queries.iter().zip(&results).zip(&reference) {
            assert!(
                got.to_bits() == want.to_bits(),
                "columnar batch={batch} diverged on {}: {got} vs {want}",
                q.describe()
            );
        }

        let qps = total_queries as f64 / elapsed;
        let mode = if batch == 1 {
            "columnar"
        } else {
            "columnar batched"
        };
        mode_row(
            &mut report,
            mode,
            batch,
            elapsed,
            qps,
            qps / row_qps,
            stats.scans_per_query(),
            &latencies,
        );
    }
    // The tentpole sweep: encoding × scan-thread fan-out at batch 64.
    // Every cell is bit-identical to the row-at-a-time reference (the
    // kernels decode to the same domain indices and the parallel merge
    // is shard-ordered + reassociation-exact), so the only things that
    // move are bytes and speed.
    report.section(
        "encoding x scan-thread sweep (batch 64)",
        &[
            "encoding",
            "threads",
            "compression_ratio",
            "elapsed_s",
            "qps",
            "speedup",
        ],
    );
    for (encoding, label) in ENCODINGS {
        let exec = ColumnarExecutor::ingest(
            &db,
            &ExecConfig {
                encoding,
                ..ExecConfig::default()
            },
        );
        let ratio = exec.compression_ratio();
        for threads in THREADS {
            exec.set_scan_threads(threads);
            let start = Instant::now();
            let mut results = Vec::with_capacity(total_queries);
            for chunk in queries.chunks(64) {
                results.extend(exec.execute_batch(chunk).unwrap());
            }
            let elapsed = start.elapsed().as_secs_f64();
            for ((q, got), want) in queries.iter().zip(&results).zip(&reference) {
                assert!(
                    got.to_bits() == want.to_bits(),
                    "{label}/{threads}t diverged on {}: {got} vs {want}",
                    q.describe()
                );
            }
            let qps = total_queries as f64 / elapsed;
            report.row(&[
                cell("encoding", label),
                cell("threads", threads),
                cell_fmt("compression_ratio", ratio, format!("{ratio:.2}x")),
                cell_fmt("elapsed_s", elapsed, fmt_f64(elapsed, 3)),
                cell_fmt("qps", qps, fmt_f64(qps, 0)),
                cell_fmt("speedup", qps / row_qps, format!("{:.2}x", qps / row_qps)),
            ]);
        }
    }
    report.finish();

    // The acceptance gate for batching: amortisation below 1 scan/query
    // for every batch size ≥ 4 over the shared relation.
    for batch in BATCH_SIZES.iter().filter(|&&b| b >= 4) {
        exec.reset_stats();
        for chunk in queries.chunks(*batch) {
            exec.execute_batch(chunk).unwrap();
        }
        let spq = exec.stats().scans_per_query();
        assert!(
            spq < 1.0,
            "batch size {batch} must amortise below one scan per query, got {spq}"
        );
    }
    println!("\nanswers bit-identical across all modes; scans-per-query < 1 for every batch >= 4");
}
