//! C10k frontend throughput: RPC round trips per second as a function of
//! **concurrent connections × per-connection in-flight depth**, for both
//! frontends.
//!
//! The load generator is itself a single-threaded non-blocking event loop
//! (the same `epoll` shim the server uses), so thousands of client
//! connections cost the bench one thread — process thread counts printed
//! per row therefore isolate the *server's* threading behaviour:
//!
//! * **event-loop** rows must show a *flat* thread count as connections
//!   grow (the C10k invariant; the bench asserts it);
//! * the **thread-per-conn** oracle rows show the 3-threads-per-connection
//!   cost of the blocking frontend at small connection counts.
//!
//! Two RPC mixes: `heartbeat` (session-scoped, served inline on the loop
//! threads — prices the transport + protocol path) and `query` (full DP
//! query through the worker pool — the end-to-end path).
//!
//! ```text
//! cargo run --release --bin frontend_throughput [-- max_connections]
//! ```
//!
//! `max_connections` defaults to 5000; the soft fd limit is raised to the
//! hard limit at startup (each connection costs two fds on loopback).
//! Pass a small value (e.g. 64) on fd-constrained hosts such as CI
//! runners.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Instant;

use dprov_api::frame::{frame, FrameDecoder};
use dprov_api::protocol::{decode_response, encode_request, Request, Response, PROTOCOL_VERSION};
use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport};
use dprov_core::analyst::AnalystRegistry;
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::QueryRequest;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_net::listen;
use dprov_server::{FrontendMode, QueryService, ServiceConfig};
use epoll::{Event, Interest, Poller};

const ANALYSTS: usize = 8;
const WORKERS: usize = 2;

/// Raises the soft `RLIMIT_NOFILE` to the hard limit; returns the
/// resulting soft limit.
#[cfg(target_os = "linux")]
fn raise_fd_limit() -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.cur < lim.max {
            let want = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                lim.cur = lim.max;
            }
        }
        lim.cur
    }
}

#[cfg(not(target_os = "linux"))]
fn raise_fd_limit() -> u64 {
    1024
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
}

fn build_service(mode: FrontendMode) -> Arc<QueryService> {
    let db = adult_database(2_000, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 8) + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(25.6)
        .unwrap()
        .with_seed(7)
        .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
    let system = Arc::new(
        DProvDb::new(
            db,
            catalog,
            registry,
            config,
            MechanismKind::AdditiveGaussian,
        )
        .unwrap(),
    );
    Arc::new(QueryService::start(
        system,
        ServiceConfig::builder()
            .workers(WORKERS)
            .queue_capacity(1024)
            .frontend_mode(mode)
            .build()
            .unwrap(),
    ))
}

#[derive(Clone, Copy, PartialEq)]
enum Rpc {
    Heartbeat,
    Query,
}

impl Rpc {
    fn name(self) -> &'static str {
        match self {
            Rpc::Heartbeat => "heartbeat",
            Rpc::Query => "query",
        }
    }
}

enum Phase {
    AwaitHello,
    AwaitRegister,
    Run,
    Done,
}

/// One load-generator connection (client side, non-blocking).
struct ClientConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_head: usize,
    phase: Phase,
    inflight: usize,
    sent: u64,
    recv: u64,
    next_id: u64,
    analyst: usize,
}

impl ClientConn {
    fn queue(&mut self, id: u64, request: &Request) {
        self.out
            .extend_from_slice(&frame(&encode_request(id, request)));
    }

    fn queue_rpc(&mut self, rpc: Rpc) {
        let id = self.next_id;
        self.next_id += 1;
        match rpc {
            Rpc::Heartbeat => self.queue(id, &Request::Heartbeat),
            Rpc::Query => {
                let lo = 18 + (id % 30) as i64;
                self.queue(
                    id,
                    &Request::SubmitQuery(QueryRequest::with_accuracy(
                        Query::range_count("adult", "age", lo, lo + 20),
                        2_000.0 + (id % 7) as f64 * 500.0,
                    )),
                );
            }
        }
        self.sent += 1;
        self.inflight += 1;
    }

    /// Flushes pending output; returns false on a dead socket.
    fn flush(&mut self) -> io::Result<()> {
        while self.out_head < self.out.len() {
            match self.stream.write(&self.out[self.out_head..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_head += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_head = 0;
        Ok(())
    }
}

/// Drives `conns` concurrent connections, each keeping up to `depth` RPCs
/// in flight until it has completed `per_conn` of them. Returns (elapsed
/// seconds of the run phase, completed RPCs).
fn run_load(
    addr: std::net::SocketAddr,
    conns: usize,
    depth: usize,
    per_conn: u64,
    rpc: Rpc,
) -> (f64, u64, usize) {
    let mut poller = Poller::new().unwrap();
    let mut clients: HashMap<u64, ClientConn> = HashMap::new();
    for i in 0..conns {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nonblocking(true).unwrap();
        stream.set_nodelay(true).unwrap();
        poller
            .register(stream.as_raw_fd(), i as u64, Interest::READ_WRITE)
            .unwrap();
        let mut conn = ClientConn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_head: 0,
            phase: Phase::AwaitHello,
            inflight: 0,
            sent: 0,
            recv: 0,
            next_id: 1_000,
            analyst: i % ANALYSTS,
        };
        conn.queue(
            0,
            &Request::Hello {
                max_version: PROTOCOL_VERSION,
                client_name: "frontend-throughput".to_owned(),
            },
        );
        clients.insert(i as u64, conn);
    }

    let mut events: Vec<Event> = Vec::new();
    let mut running = 0usize; // connections past the handshake
    let mut done = 0usize;
    let mut completed = 0u64;
    let mut started: Option<Instant> = None;
    let mut all_registered = false;
    let mut threads_running = 0usize;
    while done < conns {
        let n = poller.wait(&mut events, None).unwrap();
        for &ev in events.iter().take(n) {
            let Some(conn) = clients.get_mut(&ev.token) else {
                continue;
            };
            if ev.writable {
                conn.flush().unwrap();
            }
            if !ev.readable {
                continue;
            }
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => panic!("server closed connection {}", ev.token),
                    Ok(n) => {
                        conn.decoder.feed(&buf[..n]);
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("read error on connection {}: {e}", ev.token),
                }
            }
            while let Some(payload) = conn.decoder.next_frame().unwrap() {
                let (_, response) = decode_response(&payload).unwrap();
                match conn.phase {
                    Phase::AwaitHello => {
                        assert!(matches!(response, Response::HelloAck { .. }));
                        let analyst = conn.analyst;
                        conn.queue(
                            1,
                            &Request::RegisterSession {
                                analyst_name: format!("analyst-{analyst}"),
                                resume: None,
                            },
                        );
                        conn.phase = Phase::AwaitRegister;
                    }
                    Phase::AwaitRegister => {
                        assert!(matches!(response, Response::SessionRegistered { .. }));
                        conn.phase = Phase::Run;
                        running += 1;
                        if running == conns {
                            all_registered = true;
                            break;
                        }
                    }
                    Phase::Run => {
                        // Budget-exhaustion rejections arrive as answered
                        // frames and still count as completed round trips;
                        // protocol errors don't happen in this workload.
                        if let Response::Error(e) = &response {
                            panic!("unexpected protocol error: {e:?}");
                        }
                        conn.inflight -= 1;
                        conn.recv += 1;
                        completed += 1;
                        if conn.sent < per_conn {
                            conn.queue_rpc(rpc);
                        } else if conn.recv == per_conn {
                            conn.phase = Phase::Done;
                            done += 1;
                            break;
                        }
                    }
                    Phase::Done => unreachable!("reply after completion"),
                }
            }
            if let Some(conn) = clients.get_mut(&ev.token) {
                conn.flush().unwrap();
            }
            if all_registered {
                // Everyone is registered: the timed run phase begins and
                // every pipeline fills to its in-flight depth.
                all_registered = false;
                // Every connection is live and registered: this is the
                // moment to sample the process thread count.
                threads_running = thread_count();
                started = Some(Instant::now());
                for c in clients.values_mut() {
                    while c.inflight < depth && c.sent < per_conn {
                        c.queue_rpc(rpc);
                    }
                    c.flush().unwrap();
                }
            }
        }
    }
    let elapsed = started.map_or(0.0, |t| t.elapsed().as_secs_f64());
    for conn in clients.values() {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
    (elapsed, completed, threads_running)
}

struct Row {
    mode: FrontendMode,
    rpc: Rpc,
    conns: usize,
    depth: usize,
}

fn mode_name(mode: FrontendMode) -> &'static str {
    match mode {
        FrontendMode::ThreadPerConnection => "thread-per-conn",
        FrontendMode::EventLoop => "event-loop",
    }
}

fn main() {
    let max_conns: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let fd_limit = raise_fd_limit();
    // Two fds per loopback connection plus service/listener overhead.
    let fd_cap = ((fd_limit.saturating_sub(64)) / 2) as usize;
    let max_conns = max_conns.min(fd_cap).max(1);

    let mut sweep: Vec<usize> = [256usize, 1_000, max_conns]
        .into_iter()
        .filter(|&c| c <= max_conns)
        .collect();
    sweep.dedup();

    let mut rows = Vec::new();
    // Event loop: heartbeat sweep over connections × depth, plus one
    // end-to-end query row at the smallest sweep point.
    for &conns in &sweep {
        for depth in [1usize, 8] {
            rows.push(Row {
                mode: FrontendMode::EventLoop,
                rpc: Rpc::Heartbeat,
                conns,
                depth,
            });
        }
    }
    rows.push(Row {
        mode: FrontendMode::EventLoop,
        rpc: Rpc::Query,
        conns: sweep[0],
        depth: 8,
    });
    // Thread-per-connection oracle at the smallest sweep point only (it
    // spends 3 OS threads per connection).
    rows.push(Row {
        mode: FrontendMode::ThreadPerConnection,
        rpc: Rpc::Heartbeat,
        conns: sweep[0],
        depth: 8,
    });
    rows.push(Row {
        mode: FrontendMode::ThreadPerConnection,
        rpc: Rpc::Query,
        conns: sweep[0],
        depth: 8,
    });

    let mut report = BenchReport::new("frontend_throughput");
    report
        .arg("max_connections", max_conns)
        .arg("fd_limit", fd_limit)
        .arg("workers", WORKERS);
    report.section(
        &format!(
            "frontend_throughput — up to {max_conns} connections (fd limit {fd_limit}, host \
             parallelism {})",
            std::thread::available_parallelism().map_or(1, usize::from)
        ),
        &[
            "frontend",
            "rpc",
            "connections",
            "depth",
            "rpcs",
            "elapsed_s",
            "rps",
            "threads_listen",
            "threads_running",
            "threads_flat",
        ],
    );

    for row in rows {
        let per_conn = match row.rpc {
            Rpc::Heartbeat => (40_000 / row.conns as u64).clamp(4, 200),
            Rpc::Query => (4_000 / row.conns as u64).clamp(2, 50),
        };
        let service = build_service(row.mode);
        let listener = listen(&service, "127.0.0.1:0").unwrap();
        let threads_listen = thread_count();
        let (elapsed, completed, threads_running) = run_load(
            listener.local_addr(),
            row.conns,
            row.depth,
            per_conn,
            row.rpc,
        );
        assert!(
            listener.take_fatal_error().is_none(),
            "fatal listener error"
        );
        let flat = threads_running <= threads_listen;
        if matches!(row.mode, FrontendMode::EventLoop) {
            assert!(
                flat,
                "event-loop thread count grew with connections: {threads_listen} -> \
                 {threads_running} at {} connections",
                row.conns
            );
        }
        let rps = completed as f64 / elapsed.max(1e-9);
        report.row(&[
            cell("frontend", mode_name(row.mode)),
            cell("rpc", row.rpc.name()),
            cell("connections", row.conns),
            cell("depth", row.depth),
            cell("rpcs", completed),
            cell_fmt("elapsed_s", elapsed, fmt_f64(elapsed, 3)),
            cell_fmt("rps", rps, fmt_f64(rps, 0)),
            cell("threads_listen", threads_listen),
            cell("threads_running", threads_running),
            cell("threads_flat", flat),
        ]);
        listener.shutdown();
    }
    report.finish();
    println!(
        "\nevent-loop rows hold thread count flat as connections grow; thread-per-conn rows \
         spend 3 threads per connection."
    );
}
