//! Ablation — design choices called out in DESIGN.md:
//!
//! 1. **View-combination friction** (§5.2.2, Theorem 5.4): growing a global
//!    synopsis incrementally (ε₁ then Δε) and combining with the UMVUE
//!    weight is optimal among linear combinations, but still worse than
//!    spending the whole budget at once. The table reports the per-bin
//!    variance of the combined synopsis vs the one-shot synopsis for a sweep
//!    of split points.
//! 2. **Additive GM vs independent releases** (Theorem 5.2): the worst-case
//!    collusion cost of serving the same view to k analysts is `max εᵢ`
//!    under the additive mechanism vs `Σ εᵢ` for independent releases,
//!    while each analyst's own accuracy is identical.

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_dp::budget::Budget;
use dprov_dp::mechanism::{additive_gaussian_release, analytic_gaussian_sigma};
use dprov_dp::rng::DpRng;
use dprov_dp::sensitivity::Sensitivity;

fn main() {
    let delta = 1e-9;
    let sens = std::f64::consts::SQRT_2;

    banner("Ablation 1: friction of incremental view combination (total ε = 1.0)");
    let total_eps = 1.0;
    let sigma_one_shot = analytic_gaussian_sigma(total_eps, delta, sens).unwrap();
    let v_one_shot = sigma_one_shot * sigma_one_shot;
    let mut table = Table::new(&[
        "first release ε₁",
        "one-shot variance",
        "combined variance",
        "friction (combined / one-shot)",
    ]);
    for &first in &[0.1, 0.25, 0.5, 0.75, 0.9] {
        let second = total_eps - first;
        let v1 = analytic_gaussian_sigma(first, delta, sens).unwrap().powi(2);
        let v2 = analytic_gaussian_sigma(second, delta, sens)
            .unwrap()
            .powi(2);
        // UMVUE combination of two independent synopses.
        let v_combined = v1 * v2 / (v1 + v2);
        table.add_row(&[
            format!("{first}"),
            fmt_f64(v_one_shot, 2),
            fmt_f64(v_combined, 2),
            fmt_f64(v_combined / v_one_shot, 3),
        ]);
    }
    table.print();
    println!("friction > 1 everywhere: spending the budget at once is always better,");
    println!("which is why the accuracy-privacy translation accounts for it (Eq. 3).");

    banner("Ablation 2: additive GM vs independent releases (same view, k analysts)");
    let mut table = Table::new(&[
        "#analysts",
        "per-analyst ε",
        "collusion ε (additive GM)",
        "collusion ε (independent)",
        "per-analyst empirical sd (additive)",
        "calibrated sd",
    ]);
    let truth = vec![1_000.0f64; 4096];
    for &k in &[2usize, 4, 6] {
        let per_analyst_eps = 0.5;
        let budgets: Vec<Budget> = (0..k)
            .map(|_| Budget::new(per_analyst_eps, delta).unwrap())
            .collect();
        let mut rng = DpRng::seed_from_u64(k as u64);
        let releases =
            additive_gaussian_release(&truth, Sensitivity::unchecked(sens), &budgets, &mut rng)
                .unwrap();
        let empirical_sd = {
            let r = &releases[0];
            let var: f64 = r
                .answer
                .iter()
                .zip(&truth)
                .map(|(a, t)| (a - t) * (a - t))
                .sum::<f64>()
                / truth.len() as f64;
            var.sqrt()
        };
        let calibrated_sd = analytic_gaussian_sigma(per_analyst_eps, delta, sens).unwrap();
        table.add_row(&[
            format!("{k}"),
            format!("{per_analyst_eps}"),
            fmt_f64(per_analyst_eps, 2),
            fmt_f64(per_analyst_eps * k as f64, 2),
            fmt_f64(empirical_sd, 2),
            fmt_f64(calibrated_sd, 2),
        ]);
    }
    table.print();
    println!("the additive mechanism's collusion cost stays flat as analysts are added,");
    println!("while independent releases grow linearly — the core of Theorem 5.2.");
}
