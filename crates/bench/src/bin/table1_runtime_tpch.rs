//! Table 1 — runtime performance comparison on the TPC-H dataset.
//!
//! Reports, per system: setup time (view materialisation + static synopsis
//! generation), running time for the workload, the number of queries
//! answered, and the per-query processing time. Absolute numbers differ from
//! the paper (in-memory engine vs PostgreSQL); the reproduction target is
//! the *ordering*: view-based systems pay a setup cost but answer queries
//! orders of magnitude faster than the per-query Chorus baselines.
//!
//! Scale knobs: `DPROV_ROWS` (default 20000), `DPROV_QUERIES` (default 200).

use std::time::Instant;

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{build_system, default_privileges, env_usize, Dataset, SystemKind};
use dprov_core::config::SystemConfig;
use dprov_workloads::rrq::{generate, RrqConfig};
use dprov_workloads::runner::ExperimentRunner;
use dprov_workloads::sequence::Interleaving;

fn main() {
    run_runtime_table(
        Dataset::Tpch,
        env_usize("DPROV_ROWS", 20_000),
        env_usize("DPROV_QUERIES", 200),
        "Table 1",
    );
}

/// Shared implementation also used by the Table 3 binary through copy of the
/// same shape (kept here so each table has its own binary entry point).
pub fn run_runtime_table(dataset: Dataset, rows: usize, queries: usize, title: &str) {
    banner(&format!(
        "{title}: runtime performance on {} ({rows} rows, {queries} queries/analyst, ε = 6.4)",
        dataset.label()
    ));
    let db = dataset.build(rows, 42);
    let workload = generate(&db, &RrqConfig::new(dataset.table(), queries, 7), 2)
        .expect("workload generation");
    let config = SystemConfig::new(6.4).expect("epsilon").with_seed(3);
    let runner = ExperimentRunner::new(&default_privileges());

    let mut table = Table::new(&[
        "System",
        "Setup Time (ms)",
        "Running Time (ms)",
        "No. of Queries",
        "Per Query (ms)",
    ]);

    for kind in SystemKind::ALL {
        let setup_start = Instant::now();
        let mut system =
            build_system(kind, &db, &default_privileges(), &config).expect("system setup");
        let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

        let metrics = runner
            .run_rrq(system.as_mut(), &workload, Interleaving::RoundRobin)
            .expect("run");
        let running_ms = metrics.elapsed.as_secs_f64() * 1e3;
        let answered = metrics.total_answered();

        let setup_cell = match kind {
            SystemKind::Chorus | SystemKind::ChorusP => "N/A".to_owned(),
            _ => fmt_f64(setup_ms, 2),
        };
        table.add_row(&[
            kind.label().to_owned(),
            setup_cell,
            fmt_f64(running_ms, 2),
            format!("{answered}"),
            fmt_f64(metrics.per_query_ms(), 3),
        ]);
    }
    table.print();
}
