//! Table 3 — runtime performance comparison on the Adult dataset.
//!
//! Same measurement as Table 1 but over the Adult dataset. See
//! `table1_runtime_tpch.rs` for the column definitions.
//!
//! Scale knobs: `DPROV_ROWS` (default 45222), `DPROV_QUERIES` (default 200).

use std::time::Instant;

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{build_system, default_privileges, env_usize, Dataset, SystemKind};
use dprov_core::config::SystemConfig;
use dprov_workloads::rrq::{generate, RrqConfig};
use dprov_workloads::runner::ExperimentRunner;
use dprov_workloads::sequence::Interleaving;

fn main() {
    let dataset = Dataset::Adult;
    let rows = env_usize("DPROV_ROWS", 45_222);
    let queries = env_usize("DPROV_QUERIES", 200);

    banner(&format!(
        "Table 3: runtime performance on {} ({rows} rows, {queries} queries/analyst, ε = 6.4)",
        dataset.label()
    ));
    let db = dataset.build(rows, 42);
    let workload = generate(&db, &RrqConfig::new(dataset.table(), queries, 7), 2)
        .expect("workload generation");
    let config = SystemConfig::new(6.4).expect("epsilon").with_seed(3);
    let runner = ExperimentRunner::new(&default_privileges());

    let mut table = Table::new(&[
        "System",
        "Setup Time (ms)",
        "Running Time (ms)",
        "No. of Queries",
        "Per Query (ms)",
    ]);

    for kind in SystemKind::ALL {
        let setup_start = Instant::now();
        let mut system =
            build_system(kind, &db, &default_privileges(), &config).expect("system setup");
        let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

        let metrics = runner
            .run_rrq(system.as_mut(), &workload, Interleaving::RoundRobin)
            .expect("run");
        let running_ms = metrics.elapsed.as_secs_f64() * 1e3;

        let setup_cell = match kind {
            SystemKind::Chorus | SystemKind::ChorusP => "N/A".to_owned(),
            _ => fmt_f64(setup_ms, 2),
        };
        table.add_row(&[
            kind.label().to_owned(),
            setup_cell,
            fmt_f64(running_ms, 2),
            format!("{}", metrics.total_answered()),
            fmt_f64(metrics.per_query_ms(), 3),
        ]);
    }
    table.print();
}
