//! Throughput of the concurrent query service (`dprov-server`): queries/sec
//! on the multi-analyst RRQ workload as the worker pool grows 1 → 2 → 4 → 8.
//!
//! Every worker count runs the *same* workload against a fresh system, so
//! the numbers isolate the service's scheduling/locking behaviour:
//!
//! * **Vanilla** releases are embarrassingly parallel — translation and
//!   noise generation happen outside every shared lock, so queries/sec
//!   scales with the worker count up to the machine's core count;
//! * **DProvDB (additive Gaussian)** serialises cache *misses* per view
//!   (the read-translate-grow critical section that keeps the delivered
//!   accuracy consistent), so its scaling comes from cross-view
//!   parallelism and the lock-free cache-hit fast path.
//!
//! On a single-core host the worker sweep degenerates to a scheduling-
//! overhead measurement (no physical parallelism exists); the binary
//! prints the detected parallelism so the numbers can be read in context.
//!
//! ```text
//! cargo run --release --bin service_throughput [-- total_queries]
//! ```

use std::sync::Arc;
use std::time::Instant;

use dprov_bench::report::{banner, BenchJson, Table};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_server::{QueryService, ServiceConfig};
use dprov_workloads::rrq::{generate, RrqConfig, RrqWorkload};

const ANALYSTS: usize = 8;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_system(mechanism: MechanismKind) -> Arc<DProvDb> {
    let db = adult_database(10_000, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 8) + 1) as u8)
            .unwrap();
    }
    // A roomy budget and proportional row constraints keep the run in the
    // translate-and-release hot path instead of the cheap rejection path.
    let config = SystemConfig::new(25.6)
        .unwrap()
        .with_seed(5)
        .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
    Arc::new(DProvDb::new(db, catalog, registry, config, mechanism).unwrap())
}

/// The multi-analyst RRQ workload, spread uniformly over the table's
/// integer attributes (so both mechanisms get cross-view parallelism) with
/// accuracy demands tight enough that most submissions miss the cache and
/// do real translation + release work.
fn workload(per_analyst: usize) -> RrqWorkload {
    let db = adult_database(10_000, 1);
    let mut config = RrqConfig::new("adult", per_analyst, 3);
    config.attribute_bias = 1.0;
    config.accuracy_range = (1_000.0, 10_000.0);
    generate(&db, &config, ANALYSTS).unwrap()
}

/// Drives the full workload through a service with `workers` threads and
/// returns (elapsed seconds, answered, rejected, cache hits).
fn run_once(
    workload: &RrqWorkload,
    mechanism: MechanismKind,
    workers: usize,
) -> (f64, usize, usize, usize) {
    let system = build_system(mechanism);
    let service = Arc::new(QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder().workers(workers).build().unwrap(),
    ));
    let sessions: Vec<_> = (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect();

    let start = Instant::now();
    let submitters: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(a, session)| {
            let service = Arc::clone(&service);
            let batch = workload.per_analyst[a].clone();
            std::thread::spawn(move || {
                // One blocking round trip per query — the supported
                // embedding path. Session lanes execute a session's jobs
                // serially anyway, so per-analyst threads still exercise
                // cross-session parallelism; the pipelined protocol paths
                // are compared in the `client_throughput` bench.
                for request in batch {
                    service.submit_wait(session, request).unwrap();
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();

    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    let stats = service.shutdown();
    (
        elapsed,
        stats.system.answered,
        stats.system.rejected,
        stats.system.cache_hits,
    )
}

fn sweep(workload: &RrqWorkload, mechanism: MechanismKind, json: &mut BenchJson) {
    banner(&format!("{} — worker sweep", mechanism));
    let mut table = Table::new(&[
        "workers",
        "elapsed_s",
        "qps",
        "speedup",
        "answered",
        "rejected",
        "cache_hits",
    ]);
    let mut baseline_qps = None;
    for workers in WORKER_COUNTS {
        let (elapsed, answered, rejected, cache_hits) = run_once(workload, mechanism, workers);
        let qps = workload.total_queries() as f64 / elapsed;
        let baseline = *baseline_qps.get_or_insert(qps);
        table.add_row(&[
            workers.to_string(),
            format!("{elapsed:.3}"),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / baseline),
            answered.to_string(),
            rejected.to_string(),
            cache_hits.to_string(),
        ]);
        json.row(&[
            ("mechanism", mechanism.to_string().into()),
            ("workers", workers.into()),
            ("elapsed_s", elapsed.into()),
            ("qps", qps.into()),
            ("speedup", (qps / baseline).into()),
            ("answered", answered.into()),
            ("rejected", rejected.into()),
            ("cache_hits", cache_hits.into()),
        ]);
    }
    table.print();
}

fn main() {
    let total_queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_600);
    let per_analyst = (total_queries / ANALYSTS).max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "service_throughput: {ANALYSTS} analysts x {per_analyst} queries over the adult views \
         ({cores} hardware threads available{})",
        if cores == 1 {
            "; single core — the sweep measures scheduling overhead, not parallel speedup"
        } else {
            ""
        }
    );
    let mut json = BenchJson::new("service_throughput");
    json.arg("analysts", ANALYSTS)
        .arg("per_analyst", per_analyst)
        .arg("hardware_threads", cores);
    let workload = workload(per_analyst);
    sweep(&workload, MechanismKind::Vanilla, &mut json);
    sweep(&workload, MechanismKind::AdditiveGaussian, &mut json);
    json.emit();
}
