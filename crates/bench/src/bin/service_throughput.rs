//! Throughput of the concurrent query service (`dprov-server`): queries/sec
//! on the multi-analyst RRQ workload as the worker pool grows 1 → 2 → 4 → 8.
//!
//! Every worker count runs the *same* workload against a fresh system, so
//! the numbers isolate the service's scheduling/locking behaviour:
//!
//! * **Vanilla** releases are embarrassingly parallel — translation and
//!   noise generation happen outside every shared lock, so queries/sec
//!   scales with the worker count up to the machine's core count;
//! * **DProvDB (additive Gaussian)** serialises cache *misses* per view
//!   (the read-translate-grow critical section that keeps the delivered
//!   accuracy consistent), so its scaling comes from cross-view
//!   parallelism and the lock-free cache-hit fast path.
//!
//! A final section measures the observability overhead: the same workload
//! with the default (enabled) metrics registry versus a no-op registry,
//! which must stay within a few percent (see `BENCH.md`).
//!
//! On a single-core host the worker sweep degenerates to a scheduling-
//! overhead measurement (no physical parallelism exists); the binary
//! prints the detected parallelism so the numbers can be read in context.
//!
//! ```text
//! cargo run --release --bin service_throughput [-- total_queries]
//! ```

use std::sync::Arc;
use std::time::Instant;

use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport, Latencies};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_obs::MetricsRegistry;
use dprov_server::{QueryService, ServiceConfig};
use dprov_workloads::rrq::{generate, RrqConfig, RrqWorkload};

const ANALYSTS: usize = 8;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Worker count for the metrics-overhead comparison and runs per arm
/// (best-of-N damps scheduler noise so the comparison measures the
/// instrumentation, not the OS).
const OVERHEAD_WORKERS: usize = 4;
const OVERHEAD_RUNS: usize = 3;

fn build_system(mechanism: MechanismKind, metrics_on: bool) -> Arc<DProvDb> {
    let db = adult_database(10_000, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 8) + 1) as u8)
            .unwrap();
    }
    // A roomy budget and proportional row constraints keep the run in the
    // translate-and-release hot path instead of the cheap rejection path.
    let config = SystemConfig::new(25.6)
        .unwrap()
        .with_seed(5)
        .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
    let mut system = DProvDb::new(db, catalog, registry, config, mechanism).unwrap();
    if !metrics_on {
        system.set_metrics(MetricsRegistry::disabled());
    }
    Arc::new(system)
}

/// The multi-analyst RRQ workload, spread uniformly over the table's
/// integer attributes (so both mechanisms get cross-view parallelism) with
/// accuracy demands tight enough that most submissions miss the cache and
/// do real translation + release work.
fn workload(per_analyst: usize) -> RrqWorkload {
    let db = adult_database(10_000, 1);
    let mut config = RrqConfig::new("adult", per_analyst, 3);
    config.attribute_bias = 1.0;
    config.accuracy_range = (1_000.0, 10_000.0);
    generate(&db, &config, ANALYSTS).unwrap()
}

/// Drives the full workload through a service with `workers` threads and
/// returns (elapsed seconds, answered, rejected, cache hits, per-query
/// round-trip latencies as seen by the submitters).
fn run_once(
    workload: &RrqWorkload,
    mechanism: MechanismKind,
    workers: usize,
    metrics_on: bool,
) -> (f64, usize, usize, usize, Latencies) {
    let system = build_system(mechanism, metrics_on);
    let service = Arc::new(QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder().workers(workers).build().unwrap(),
    ));
    let sessions: Vec<_> = (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect();
    let latencies = Arc::new(Latencies::new());

    let start = Instant::now();
    let submitters: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(a, session)| {
            let service = Arc::clone(&service);
            let latencies = Arc::clone(&latencies);
            let batch = workload.per_analyst[a].clone();
            std::thread::spawn(move || {
                // One blocking round trip per query — the supported
                // embedding path. Session lanes execute a session's jobs
                // serially anyway, so per-analyst threads still exercise
                // cross-session parallelism; the pipelined protocol paths
                // are compared in the `client_throughput` bench.
                for request in batch {
                    latencies
                        .time(|| service.submit_wait(session, request))
                        .unwrap();
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();

    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    let stats = service.shutdown();
    let latencies = Arc::try_unwrap(latencies).expect("latencies still shared");
    (
        elapsed,
        stats.system.answered,
        stats.system.rejected,
        stats.system.cache_hits,
        latencies,
    )
}

fn sweep(workload: &RrqWorkload, mechanism: MechanismKind, report: &mut BenchReport) {
    report.section(
        &format!("{mechanism} — worker sweep"),
        &[
            "mechanism",
            "workers",
            "elapsed_s",
            "qps",
            "speedup",
            "answered",
            "rejected",
            "cache_hits",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
        ],
    );
    let mut baseline_qps = None;
    for workers in WORKER_COUNTS {
        let (elapsed, answered, rejected, cache_hits, latencies) =
            run_once(workload, mechanism, workers, true);
        let qps = workload.total_queries() as f64 / elapsed;
        let baseline = *baseline_qps.get_or_insert(qps);
        let speedup = qps / baseline;
        let mut row = vec![
            cell("mechanism", mechanism.to_string()),
            cell("workers", workers),
            cell_fmt("elapsed_s", elapsed, fmt_f64(elapsed, 3)),
            cell_fmt("qps", qps, fmt_f64(qps, 0)),
            cell_fmt("speedup", speedup, format!("{speedup:.2}x")),
            cell("answered", answered),
            cell("rejected", rejected),
            cell("cache_hits", cache_hits),
        ];
        row.extend(latencies.percentile_cells());
        report.row(&row);
    }
}

/// The same fixed-width run with the default (enabled) registry and with
/// `MetricsRegistry::disabled()`: the instrumentation is designed to be
/// inert, so the enabled arm must track the no-op arm closely.
fn metrics_overhead(workload: &RrqWorkload, report: &mut BenchReport) {
    report.section(
        &format!("metrics overhead — additive-gaussian, {OVERHEAD_WORKERS} workers"),
        &[
            "mechanism",
            "metrics",
            "qps",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
        ],
    );
    let mechanism = MechanismKind::AdditiveGaussian;
    let mut best = [0.0f64; 2];
    for (idx, metrics_on) in [(0, false), (1, true)] {
        let mut best_cells = None;
        for _ in 0..OVERHEAD_RUNS {
            let (elapsed, _, _, _, latencies) =
                run_once(workload, mechanism, OVERHEAD_WORKERS, metrics_on);
            let qps = workload.total_queries() as f64 / elapsed;
            if qps > best[idx] {
                best[idx] = qps;
                best_cells = Some(latencies.percentile_cells());
            }
        }
        let mut row = vec![
            cell("mechanism", mechanism.to_string()),
            cell("metrics", if metrics_on { "on" } else { "off" }),
            cell_fmt("qps", best[idx], fmt_f64(best[idx], 0)),
        ];
        row.extend(best_cells.expect("at least one overhead run"));
        report.row(&row);
    }
    // Positive = the enabled registry costs throughput; small negatives are
    // run-to-run noise.
    let overhead_pct = (best[0] / best[1] - 1.0) * 100.0;
    println!("metrics overhead: {overhead_pct:.2}% (best of {OVERHEAD_RUNS} runs per arm)");
    report.section("metrics overhead summary", &["metrics", "overhead_pct"]);
    report.row(&[
        cell("metrics", "overhead"),
        cell_fmt("overhead_pct", overhead_pct, fmt_f64(overhead_pct, 2)),
    ]);
}

fn main() {
    let total_queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_600);
    let per_analyst = (total_queries / ANALYSTS).max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "service_throughput: {ANALYSTS} analysts x {per_analyst} queries over the adult views \
         ({cores} hardware threads available{})",
        if cores == 1 {
            "; single core — the sweep measures scheduling overhead, not parallel speedup"
        } else {
            ""
        }
    );
    let mut report = BenchReport::new("service_throughput");
    report
        .arg("analysts", ANALYSTS)
        .arg("per_analyst", per_analyst)
        .arg("hardware_threads", cores);
    let workload = workload(per_analyst);
    sweep(&workload, MechanismKind::Vanilla, &mut report);
    sweep(&workload, MechanismKind::AdditiveGaussian, &mut report);
    metrics_overhead(&workload, &mut report);
    report.finish();
}
