//! Commit overhead of the durable provenance ledger (`dprov-storage`):
//! queries/sec of a charge-heavy workload in three durability modes, plus
//! the cost of recovery itself.
//!
//! * **volatile** — no recorder attached (the pre-durability baseline);
//! * **wal** — every commit appended to the write-ahead ledger, no fsync
//!   (durability against process death, not power loss);
//! * **wal+fsync** — `sync_data` on every append (full durability; the
//!   fsync dominates, so this measures the disk, not the code).
//!
//! Latency percentiles are per committing query, so the tail shows what a
//! single analyst-visible answer pays for durability in each mode.
//!
//! The recovery phase then reopens each durable store and measures
//! replay-into-a-fresh-system time, the cost a restart actually pays.
//!
//! ```text
//! cargo run --release --bin recovery_throughput [-- total_queries]
//! ```

use std::sync::Arc;
use std::time::Instant;

use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport, Latencies};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::QueryRequest;
use dprov_core::recorder::Recorder;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_storage::{scratch_dir, ProvenanceStore, StoreOptions};

const ANALYSTS: usize = 4;

fn build_system() -> DProvDb {
    let db = adult_database(5_000, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 4) + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(1e6).unwrap().with_seed(5);
    DProvDb::new(
        db,
        catalog,
        registry,
        config,
        MechanismKind::AdditiveGaussian,
    )
    .unwrap()
}

/// A workload where every query commits a fresh charge (privacy-oriented,
/// strictly growing epsilon per (analyst, view)) — the worst case for the
/// write-ahead path, since nothing is absorbed by the cache.
fn workload(total: usize) -> Vec<(AnalystId, QueryRequest)> {
    let attrs = ["age", "hours_per_week", "capital_gain"];
    (0..total)
        .map(|i| {
            let analyst = AnalystId(i % ANALYSTS);
            let attr = attrs[(i / ANALYSTS) % attrs.len()];
            let occurrence = (i / (ANALYSTS * attrs.len())) as f64;
            let epsilon = 0.01 * (occurrence + 1.0) + 1e-4 * (i % ANALYSTS) as f64;
            (
                analyst,
                QueryRequest::with_privacy(Query::range_count("adult", attr, 20, 60), epsilon),
            )
        })
        .collect()
}

enum Mode {
    Volatile,
    Wal { fsync: bool },
}

fn run_mode(
    mode: &Mode,
    queries: &[(AnalystId, QueryRequest)],
) -> (f64, usize, Latencies, Option<std::path::PathBuf>) {
    let mut system = build_system();
    let dir = match mode {
        Mode::Volatile => None,
        Mode::Wal { fsync } => {
            let dir = scratch_dir("recovery-bench");
            let (store, _) =
                ProvenanceStore::open_with(&dir, StoreOptions { fsync: *fsync }).unwrap();
            system.set_recorder(Arc::new(store) as Arc<dyn Recorder>);
            Some(dir)
        }
    };
    let latencies = Latencies::new();
    let start = Instant::now();
    let mut answered = 0usize;
    for (analyst, request) in queries {
        if latencies
            .time(|| system.submit(*analyst, request))
            .unwrap()
            .is_answered()
        {
            answered += 1;
        }
    }
    (start.elapsed().as_secs_f64(), answered, latencies, dir)
}

fn measure_recovery(dir: &std::path::Path) -> (f64, usize) {
    let start = Instant::now();
    let (_, recovered) = ProvenanceStore::open(dir).unwrap();
    let system = build_system();
    for commit in &recovered.commits {
        system.replay_commit(commit).unwrap();
    }
    for access in &recovered.accesses {
        system.replay_access(access);
    }
    (start.elapsed().as_secs_f64(), recovered.commits.len())
}

fn main() {
    let total: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let queries = workload(total);

    let mut report = BenchReport::new("recovery_throughput");
    report.arg("total_queries", total).arg("analysts", ANALYSTS);

    report.section(
        "durable commit overhead — additive Gaussian, all-miss workload",
        &[
            "phase",
            "mode",
            "elapsed_s",
            "qps",
            "overhead",
            "answered",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
        ],
    );
    println!("{total} charge-committing queries, {ANALYSTS} analysts, 3 views");
    let mut dirs: Vec<(String, std::path::PathBuf)> = Vec::new();
    let mut baseline_qps = None;
    for (label, mode) in [
        ("volatile", Mode::Volatile),
        ("wal", Mode::Wal { fsync: false }),
        ("wal+fsync", Mode::Wal { fsync: true }),
    ] {
        let (elapsed, answered, latencies, dir) = run_mode(&mode, &queries);
        let qps = total as f64 / elapsed;
        let baseline = *baseline_qps.get_or_insert(qps);
        let overhead_pct = (baseline / qps - 1.0) * 100.0;
        let mut row = vec![
            cell("phase", "commit"),
            cell("mode", label),
            cell_fmt("elapsed_s", elapsed, fmt_f64(elapsed, 3)),
            cell_fmt("qps", qps, fmt_f64(qps, 0)),
            cell_fmt("overhead_pct", overhead_pct, format!("{overhead_pct:.1}%")),
            cell("answered", answered),
        ];
        row.extend(latencies.percentile_cells());
        report.row(&row);
        if let Some(dir) = dir {
            dirs.push((label.to_string(), dir));
        }
    }

    report.section(
        "recovery replay",
        &[
            "phase",
            "store",
            "replayed_commits",
            "recover_s",
            "commits_per_s",
        ],
    );
    for (label, dir) in &dirs {
        let (elapsed, commits) = measure_recovery(dir);
        let commits_per_s = commits as f64 / elapsed.max(1e-9);
        report.row(&[
            cell("phase", "recovery"),
            cell("mode", label.as_str()),
            cell("replayed_commits", commits),
            cell_fmt("elapsed_s", elapsed, fmt_f64(elapsed, 3)),
            cell_fmt("commits_per_s", commits_per_s, fmt_f64(commits_per_s, 0)),
        ]);
        std::fs::remove_dir_all(dir).ok();
    }
    report.finish();
}
