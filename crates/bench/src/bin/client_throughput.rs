//! Throughput of the analyst-facing access paths: queries/sec on the
//! multi-analyst RRQ workload through
//!
//! * **direct** — same-process embedding, one blocking
//!   `QueryService::submit_wait` round trip per query (no protocol);
//! * **in-process** — `DProvClient` over the zero-copy channel transport:
//!   full protocol encode/decode, no syscalls, pipelined submit/poll;
//! * **tcp** — `DProvClient` over real TCP loopback: protocol + framing +
//!   CRC + socket round trips, pipelined submit/poll.
//!
//! The spread between the rows prices the protocol layers: `in-process −
//! direct` is the message codec, `tcp − in-process` is framing plus the
//! kernel's loopback path. Pipelining matters: clients enqueue a whole
//! script before polling, so TCP latency is overlapped, not summed — the
//! per-query percentiles therefore measure submit→poll completion *under
//! pipelining* (they include queue residency, which is why the pipelined
//! paths show higher tail latency at higher throughput).
//!
//! ```text
//! cargo run --release --bin client_throughput [-- total_queries]
//! ```

use std::sync::Arc;
use std::time::Instant;

use dprov_api::DProvClient;
use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport, Latencies};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_server::{Frontend, QueryService, ServiceConfig};
use dprov_workloads::rrq::{generate, RrqConfig, RrqWorkload};

const ANALYSTS: usize = 4;
const WORKERS: usize = 4;

fn build_service() -> Arc<QueryService> {
    let db = adult_database(10_000, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 8) + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(25.6)
        .unwrap()
        .with_seed(5)
        .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
    let system = Arc::new(
        DProvDb::new(
            db,
            catalog,
            registry,
            config,
            MechanismKind::AdditiveGaussian,
        )
        .unwrap(),
    );
    Arc::new(QueryService::start(
        system,
        ServiceConfig::builder().workers(WORKERS).build().unwrap(),
    ))
}

fn workload(per_analyst: usize) -> RrqWorkload {
    let db = adult_database(10_000, 1);
    let mut config = RrqConfig::new("adult", per_analyst, 3);
    config.attribute_bias = 1.0;
    config.accuracy_range = (1_000.0, 10_000.0);
    generate(&db, &config, ANALYSTS).unwrap()
}

/// Direct embedding: one thread per analyst, blocking round trips.
fn run_direct(workload: &RrqWorkload) -> (f64, Latencies) {
    let service = build_service();
    let sessions: Vec<_> = (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect();
    let latencies = Arc::new(Latencies::new());
    let start = Instant::now();
    let handles: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(a, session)| {
            let service = Arc::clone(&service);
            let latencies = Arc::clone(&latencies);
            let batch = workload.per_analyst[a].clone();
            std::thread::spawn(move || {
                for request in batch {
                    latencies
                        .time(|| service.submit_wait(session, request))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let latencies = Arc::try_unwrap(latencies).expect("latencies still shared");
    (elapsed, latencies)
}

/// Protocol clients (pipelined): `connect` yields one pre-registered
/// client per analyst; each client enqueues its whole script, then polls.
/// A query's latency is its submit instant → its poll returning, i.e. the
/// analyst-visible completion time under pipelining.
fn run_clients(workload: &RrqWorkload, clients: Vec<DProvClient>) -> (f64, Latencies) {
    let latencies = Arc::new(Latencies::new());
    let start = Instant::now();
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(a, mut client)| {
            let latencies = Arc::clone(&latencies);
            let batch = workload.per_analyst[a].clone();
            std::thread::spawn(move || {
                let ids: Vec<_> = batch
                    .iter()
                    .map(|request| (client.submit(request).unwrap(), Instant::now()))
                    .collect();
                for (id, submitted) in ids {
                    client.poll(id).unwrap();
                    latencies.record(submitted.elapsed());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let latencies = Arc::try_unwrap(latencies).expect("latencies still shared");
    (elapsed, latencies)
}

fn main() {
    let total: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let per_analyst = total / ANALYSTS;
    let workload = workload(per_analyst);
    let queries = per_analyst * ANALYSTS;

    let mut report = BenchReport::new("client_throughput");
    report
        .arg("total_queries", queries)
        .arg("analysts", ANALYSTS)
        .arg("workers", WORKERS);
    report.section(
        &format!(
            "client_throughput — {queries} queries, {ANALYSTS} analysts, {WORKERS} workers \
             (host parallelism: {})",
            std::thread::available_parallelism().map_or(1, usize::from)
        ),
        &[
            "path",
            "elapsed_s",
            "qps",
            "vs_direct",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
        ],
    );

    let (direct, direct_lat) = run_direct(&workload);

    let (in_process, in_process_lat) = {
        let service = build_service();
        let frontend = Frontend::new(&service);
        let clients = (0..ANALYSTS)
            .map(|a| {
                let mut client = DProvClient::connect(frontend.connect(), "bench").unwrap();
                client.register(&format!("analyst-{a}")).unwrap();
                client
            })
            .collect();
        run_clients(&workload, clients)
    };

    let (tcp, tcp_lat) = {
        let service = build_service();
        let frontend = Frontend::new(&service);
        let listener = frontend.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let clients = (0..ANALYSTS)
            .map(|a| {
                let mut client = DProvClient::connect_tcp(addr, "bench").unwrap();
                client.register(&format!("analyst-{a}")).unwrap();
                client
            })
            .collect();
        let out = run_clients(&workload, clients);
        listener.shutdown();
        out
    };

    for (path, elapsed, latencies) in [
        ("direct", direct, direct_lat),
        ("in-process", in_process, in_process_lat),
        ("tcp-loopback", tcp, tcp_lat),
    ] {
        let qps = queries as f64 / elapsed;
        let vs_direct = direct / elapsed;
        let mut row = vec![
            cell("path", path),
            cell_fmt("elapsed_s", elapsed, fmt_f64(elapsed, 3)),
            cell_fmt("qps", qps, fmt_f64(qps, 0)),
            cell_fmt("vs_direct", vs_direct, fmt_f64(vs_direct, 2)),
        ];
        row.extend(latencies.percentile_cells());
        report.row(&row);
    }
    report.finish();
    println!(
        "\nin-process − direct prices the message codec; tcp − in-process prices framing + loopback."
    );
}
