//! Throughput of the analyst-facing access paths: queries/sec on the
//! multi-analyst RRQ workload through
//!
//! * **direct** — same-process embedding, one blocking
//!   `QueryService::submit_wait` round trip per query (no protocol);
//! * **in-process** — `DProvClient` over the zero-copy channel transport:
//!   full protocol encode/decode, no syscalls, pipelined submit/poll;
//! * **tcp** — `DProvClient` over real TCP loopback: protocol + framing +
//!   CRC + socket round trips, pipelined submit/poll.
//!
//! The spread between the rows prices the protocol layers: `in-process −
//! direct` is the message codec, `tcp − in-process` is framing plus the
//! kernel's loopback path. Pipelining matters: clients enqueue a whole
//! script before polling, so TCP latency is overlapped, not summed.
//!
//! ```text
//! cargo run --release --bin client_throughput [-- total_queries]
//! ```

use std::sync::Arc;
use std::time::Instant;

use dprov_api::DProvClient;
use dprov_bench::report::{banner, fmt_f64, BenchJson, Table};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_server::{Frontend, QueryService, ServiceConfig};
use dprov_workloads::rrq::{generate, RrqConfig, RrqWorkload};

const ANALYSTS: usize = 4;
const WORKERS: usize = 4;

fn build_service() -> Arc<QueryService> {
    let db = adult_database(10_000, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 8) + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(25.6)
        .unwrap()
        .with_seed(5)
        .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
    let system = Arc::new(
        DProvDb::new(
            db,
            catalog,
            registry,
            config,
            MechanismKind::AdditiveGaussian,
        )
        .unwrap(),
    );
    Arc::new(QueryService::start(
        system,
        ServiceConfig::builder().workers(WORKERS).build().unwrap(),
    ))
}

fn workload(per_analyst: usize) -> RrqWorkload {
    let db = adult_database(10_000, 1);
    let mut config = RrqConfig::new("adult", per_analyst, 3);
    config.attribute_bias = 1.0;
    config.accuracy_range = (1_000.0, 10_000.0);
    generate(&db, &config, ANALYSTS).unwrap()
}

/// Direct embedding: one thread per analyst, blocking round trips.
fn run_direct(workload: &RrqWorkload) -> f64 {
    let service = build_service();
    let sessions: Vec<_> = (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(a, session)| {
            let service = Arc::clone(&service);
            let batch = workload.per_analyst[a].clone();
            std::thread::spawn(move || {
                for request in batch {
                    service.submit_wait(session, request).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    start.elapsed().as_secs_f64()
}

/// Protocol clients (pipelined): `connect` yields one pre-registered
/// client per analyst; each client enqueues its whole script, then polls.
fn run_clients(workload: &RrqWorkload, clients: Vec<DProvClient>) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(a, mut client)| {
            let batch = workload.per_analyst[a].clone();
            std::thread::spawn(move || {
                let ids: Vec<_> = batch
                    .iter()
                    .map(|request| client.submit(request).unwrap())
                    .collect();
                for id in ids {
                    client.poll(id).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let total: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let per_analyst = total / ANALYSTS;
    let workload = workload(per_analyst);
    let queries = per_analyst * ANALYSTS;

    banner(&format!(
        "client_throughput — {queries} queries, {ANALYSTS} analysts, {WORKERS} workers \
         (host parallelism: {})",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));

    let mut table = Table::new(&["path", "elapsed_s", "qps", "vs_direct"]);
    let direct = run_direct(&workload);

    let in_process = {
        let service = build_service();
        let frontend = Frontend::new(&service);
        let clients = (0..ANALYSTS)
            .map(|a| {
                let mut client = DProvClient::connect(frontend.connect(), "bench").unwrap();
                client.register(&format!("analyst-{a}")).unwrap();
                client
            })
            .collect();
        run_clients(&workload, clients)
    };

    let tcp = {
        let service = build_service();
        let frontend = Frontend::new(&service);
        let listener = frontend.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let clients = (0..ANALYSTS)
            .map(|a| {
                let mut client = DProvClient::connect_tcp(addr, "bench").unwrap();
                client.register(&format!("analyst-{a}")).unwrap();
                client
            })
            .collect();
        let elapsed = run_clients(&workload, clients);
        listener.shutdown();
        elapsed
    };

    let mut json = BenchJson::new("client_throughput");
    json.arg("total_queries", queries)
        .arg("analysts", ANALYSTS)
        .arg("workers", WORKERS);
    for (path, elapsed) in [
        ("direct", direct),
        ("in-process", in_process),
        ("tcp-loopback", tcp),
    ] {
        table.add_row(&[
            path.to_owned(),
            fmt_f64(elapsed, 3),
            fmt_f64(queries as f64 / elapsed, 0),
            fmt_f64(direct / elapsed, 2),
        ]);
        json.row(&[
            ("path", path.into()),
            ("elapsed_s", elapsed.into()),
            ("qps", (queries as f64 / elapsed).into()),
            ("vs_direct", (direct / elapsed).into()),
        ]);
    }
    table.print();
    json.emit();
    println!(
        "\nin-process − direct prices the message codec; tcp − in-process prices framing + loopback."
    );
}
