//! Replicated-ledger throughput: quorum-acknowledged commits/sec and
//! quorum-ack latency when every budget charge must reach a majority of
//! budget-ledger replicas before the analyst sees an answer
//! (`dprov-cluster`'s `ReplicatedRecorder` gate).
//!
//! Two sections:
//!
//! * **Replica sweep** — synthetic admission charges driven straight
//!   through the replication gate against 1 / 3 / 5 in-process
//!   replicas, one quorum ack per charge. The single-replica arm is the
//!   degenerate quorum (majority of one), so the 3- and 5-replica rows
//!   isolate what consensus itself costs on top of the local append.
//! * **End-to-end** — the nemesis harness's real analyst workload (the
//!   tightening-accuracy schedule where every submission charges)
//!   through a quorum-gated `DProvDb`, fault-free and with the leader
//!   crashed mid-run. The group re-elects during the next proposal's
//!   pump loop, so the faulted run keeps answering; its row includes
//!   the failover stall.
//!
//! Quorum-ack percentiles are exact nearest-rank percentiles over the
//! per-commit gate latency (replication + majority ack), measured by a
//! timing shim around the recorder — not the log-bucketed runtime
//! histogram (`cluster.quorum_ack_ns`), which trades resolution for
//! lock-freedom.
//!
//! The replica group is the deterministic in-process `SimCluster` (the
//! same one the nemesis harness drives), so the numbers measure the
//! consensus protocol and the commit-path gating, not kernel sockets;
//! on a 1-vCPU host they are scheduling-free and highly repeatable.
//!
//! ```text
//! cargo run --release --bin cluster_throughput [-- commits]
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport, Latencies};
use dprov_cluster::{ReplicatedRecorder, SimCluster};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::error::StorageError;
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::QueryRequest;
use dprov_core::recorder::{AccessRecord, CommitRecord, Recorder};
use dprov_core::system::DProvDb;
use dprov_dp::rng::DpRng;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_obs::MetricsRegistry;

const ANALYSTS: usize = 3;
const SEED: u64 = 7;
const REPLICA_SWEEP: [u64; 3] = [1, 3, 5];
/// End-to-end rounds per analyst — the nemesis schedule length, where
/// the 10%-per-round variance tightening provably charges every round.
const ROUNDS: usize = 8;

/// Times the quorum gate: delegates everything to the
/// [`ReplicatedRecorder`] and records how long each commit
/// acknowledgement takes (the replication-critical path the analyst
/// waits on).
struct AckTimer {
    inner: ReplicatedRecorder,
    acks: Arc<Latencies>,
}

impl Recorder for AckTimer {
    fn record_commit(&self, record: &CommitRecord) -> Result<(), StorageError> {
        self.acks.time(|| self.inner.record_commit(record))
    }
    fn record_access(&self, record: &AccessRecord) -> Result<(), StorageError> {
        self.inner.record_access(record)
    }
    fn record_rollback(&self, seq: u64) -> Result<(), StorageError> {
        self.inner.record_rollback(seq)
    }
}

fn gated(replicas: u64, acks: &Arc<Latencies>) -> (AckTimer, Arc<Mutex<SimCluster>>) {
    let cluster = Arc::new(Mutex::new(SimCluster::new(replicas, SEED)));
    let timer = AckTimer {
        inner: ReplicatedRecorder::new(Arc::clone(&cluster))
            .with_metrics(MetricsRegistry::disabled()),
        acks: Arc::clone(acks),
    };
    (timer, cluster)
}

/// One synthetic admission charge — the same record shape the provenance
/// critical section emits, so the gate does exactly its production work.
fn charge(seq: u64) -> CommitRecord {
    CommitRecord {
        seq,
        analyst: AnalystId((seq % ANALYSTS as u64) as usize),
        view: format!("adult.attr{}", seq % 4),
        mechanism: MechanismKind::Vanilla,
        prev_entry: 0.01 * seq as f64,
        new_entry: 0.01 * (seq + 1) as f64,
        charged: 0.01,
    }
}

/// Pushes `commits` charges through the gate on a fresh `replicas`-node
/// group and returns (elapsed seconds, per-ack latencies).
fn sweep_once(replicas: u64, commits: usize) -> (f64, Arc<Latencies>) {
    let acks = Arc::new(Latencies::new());
    let (gate, _cluster) = gated(replicas, &acks);
    let start = Instant::now();
    for seq in 0..commits as u64 {
        gate.record_commit(&charge(seq))
            .expect("healthy majority: every charge must be acknowledged");
    }
    (start.elapsed().as_secs_f64(), acks)
}

fn build_system(seed: u64) -> DProvDb {
    let db = adult_database(5_000, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 8) + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(50.0).unwrap().with_seed(seed);
    DProvDb::new(db, catalog, registry, config, MechanismKind::Vanilla).unwrap()
}

/// Disjoint per-analyst views with the nemesis tightening schedule: the
/// variance bound drops 10% of its starting value every round, so each
/// submission misses the synopsis cache and commits a fresh charge
/// through the quorum gate (a static or loosening bound is answered from
/// the cache after round 0 and never reaches the recorder).
fn request(analyst: usize, round: usize) -> QueryRequest {
    let i = round as i64;
    let query = match analyst % 3 {
        0 => Query::range_count("adult", "age", 20 + i, 45 + i),
        1 => Query::range_count("adult", "hours_per_week", 10 + i, 35 + i),
        _ => Query::range_count("adult", "education_num", 1 + (i % 8), 8 + (i % 8)),
    };
    QueryRequest::with_accuracy(query, 1_500.0 - 150.0 * round as f64)
}

struct EndToEnd {
    elapsed_s: f64,
    answered: usize,
    acks: Arc<Latencies>,
}

/// Drives the end-to-end workload through a quorum-gated system;
/// `executors` additionally fans eligible scans over that many
/// gateway-registered executor nodes, and `crash_leader_at` (a round
/// index) injects a mid-run leader crash.
fn end_to_end(replicas: u64, executors: usize, crash_leader_at: Option<usize>) -> EndToEnd {
    let mut system = build_system(SEED);
    let acks = Arc::new(Latencies::new());
    let (gate, cluster) = gated(replicas, &acks);
    if executors > 0 {
        let mut gateway = dprov_cluster::Gateway::new(replicas, SEED, MetricsRegistry::disabled());
        let db = adult_database(5_000, 1);
        for e in 0..executors {
            let node = Arc::new(dprov_cluster::ExecutorNode::new(
                100 + e as u64,
                &format!("exec-{e}"),
                &db,
                1,
            ));
            gateway.add_executor(&node, node.clone());
        }
        // The gateway installs the distributed scan; the timing shim then
        // replaces its recorder so the quorum gate is measured the same
        // way in every arm (same shared cluster handle semantics).
        gateway.attach(&mut system);
    }
    system.set_recorder(Arc::new(gate));

    let mut rngs: Vec<DpRng> = (0..ANALYSTS)
        .map(|a| DpRng::for_stream(SEED, a as u64))
        .collect();
    let mut answered = 0usize;
    let start = Instant::now();
    for round in 0..ROUNDS {
        if crash_leader_at == Some(round) {
            let mut sim = cluster.lock().unwrap();
            if let Some(leader) = sim.leader() {
                sim.crash(leader);
            }
        }
        for (a, rng) in rngs.iter_mut().enumerate() {
            let outcome = system
                .submit_with_rng(AnalystId(a), &request(a, round), rng)
                .expect("healthy majority: submissions must not fail");
            if outcome.answered().is_some() {
                answered += 1;
            }
        }
    }
    EndToEnd {
        elapsed_s: start.elapsed().as_secs_f64(),
        answered,
        acks,
    }
}

const COLUMNS: [&str; 10] = [
    "phase",
    "replicas",
    "elapsed_s",
    "qps",
    "answered",
    "acks",
    "p50_us",
    "p95_us",
    "p99_us",
    "max_us",
];

#[allow(clippy::too_many_arguments)]
fn emit_row(
    report: &mut BenchReport,
    phase: &str,
    replicas: u64,
    elapsed_s: f64,
    ops: usize,
    answered: usize,
    acks: &Latencies,
) {
    let qps = ops as f64 / elapsed_s;
    let mut row = vec![
        cell("phase", phase),
        cell("replicas", replicas),
        cell_fmt("elapsed_s", elapsed_s, fmt_f64(elapsed_s, 3)),
        cell_fmt("qps", qps, fmt_f64(qps, 0)),
        cell("answered", answered),
        cell("acks", acks.len()),
    ];
    row.extend(acks.percentile_cells());
    report.row(&row);
}

fn main() {
    let commits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);

    println!(
        "cluster_throughput: {commits} gate commits per replica count, then \
         {ANALYSTS} analysts x {ROUNDS} charging queries end-to-end \
         (every charge quorum-acknowledged before the answer is released)"
    );
    let mut report = BenchReport::new("cluster_throughput");
    report
        .arg("commits", commits)
        .arg("analysts", ANALYSTS)
        .arg("rounds", ROUNDS);

    report.section("replica sweep — quorum-acknowledged commits/sec", &COLUMNS);
    for replicas in REPLICA_SWEEP {
        let (elapsed_s, acks) = sweep_once(replicas, commits);
        assert_eq!(acks.len(), commits, "one quorum ack per charge");
        emit_row(&mut report, "gate", replicas, elapsed_s, commits, 0, &acks);
    }

    report.section("end-to-end analyst workload", &COLUMNS);
    let total = ANALYSTS * ROUNDS;
    let single = end_to_end(1, 0, None);
    emit_row(
        &mut report,
        "single_node",
        1,
        single.elapsed_s,
        total,
        single.answered,
        &single.acks,
    );
    let healthy = end_to_end(3, 0, None);
    assert!(
        healthy.acks.len() >= total,
        "every submission must cross the replication gate \
         ({} acks for {total} queries)",
        healthy.acks.len()
    );
    emit_row(
        &mut report,
        "fault_free",
        3,
        healthy.elapsed_s,
        total,
        healthy.answered,
        &healthy.acks,
    );
    let fanout = end_to_end(3, 2, None);
    assert_eq!(
        fanout.answered, healthy.answered,
        "the distributed scan must not change an outcome"
    );
    emit_row(
        &mut report,
        "exec_fanout",
        3,
        fanout.elapsed_s,
        total,
        fanout.answered,
        &fanout.acks,
    );
    let faulted = end_to_end(3, 0, Some(ROUNDS / 2));
    emit_row(
        &mut report,
        "leader_crash",
        3,
        faulted.elapsed_s,
        total,
        faulted.answered,
        &faulted.acks,
    );

    report.finish();
}
