//! Workload-aware planning vs the materialise-everything baseline.
//!
//! Both strategies face the same declared workload (the star-schema probe:
//! skewed grouped templates plus a rare tail) and the same deterministic
//! query stream expanded from it. The baseline buys one dedicated view per
//! distinct template attribute set; the planner's greedy cover shares
//! views across templates. Because each distinct view charges its own
//! synopsis epsilon on first touch, the baseline burns more budget for the
//! identical stream — the planner answers the same queries with fewer
//! synopses, less up-front materialisation work and more budget headroom.
//! Both catalogs are produced by the same estimators
//! ([`Planner::materialise_everything`] vs [`Planner::plan`]), so the
//! comparison is apples to apples.
//!
//! ```text
//! cargo run --release --bin plan_throughput [-- queries [fact_rows]]
//! ```

use std::time::Instant;

use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport, Latencies};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::{GroupedRequest, QueryOutcome, QueryRequest};
use dprov_core::system::DProvDb;
use dprov_core::workload::DeclaredWorkload;
use dprov_plan::cost::CostModel;
use dprov_plan::planner::{Plan, Planner};
use dprov_workloads::star;

const VARIANCE: f64 = 900.0;
const TOTAL_EPSILON: f64 = 30.0;

/// Expands the declared workload into a deterministic stream of template
/// indices whose frequencies match the declared shares (stratified: slot
/// `i` takes the template owning point `(i + 0.5)/n` of the cumulative
/// share mass), then interleaves nothing further — the stream is already
/// share-proportional at every prefix.
fn stream(workload: &DeclaredWorkload, queries: usize) -> Vec<usize> {
    let shares: Vec<f64> = (0..workload.templates.len())
        .map(|i| workload.share(i))
        .collect();
    (0..queries)
        .map(|i| {
            let point = (i as f64 + 0.5) / queries as f64;
            let mut mass = 0.0;
            for (t, share) in shares.iter().enumerate() {
                mass += share;
                if point < mass {
                    return t;
                }
            }
            shares.len() - 1
        })
        .collect()
}

fn build(plan: &Plan, fact_rows: usize) -> DProvDb {
    let db = star::folded_star_database(fact_rows, 7);
    let mut registry = AnalystRegistry::new();
    registry.register("analyst", 4).unwrap();
    plan.build(
        db,
        registry,
        SystemConfig::new(TOTAL_EPSILON).unwrap().with_seed(7),
        MechanismKind::Vanilla,
    )
    .unwrap()
}

/// Drives the expanded stream through a system built from `plan`. Returns
/// (per-query latencies, cells released, answered queries, epsilon spent).
fn run(
    plan: &Plan,
    workload: &DeclaredWorkload,
    order: &[usize],
    fact_rows: usize,
) -> (Latencies, usize, usize, f64) {
    let system = build(plan, fact_rows);
    let latencies = Latencies::new();
    let mut cells = 0usize;
    let mut answered = 0usize;
    for &t in order {
        let template = &workload.templates[t];
        if let Some(gq) = template.grouped() {
            let request = GroupedRequest::with_accuracy(gq, VARIANCE);
            let outcome = latencies
                .time(|| system.answer_group_by(AnalystId(0), &request))
                .unwrap();
            cells += outcome.outcomes.len();
            if outcome.outcomes.iter().all(QueryOutcome::is_answered) {
                answered += 1;
            }
        } else {
            let request = QueryRequest::with_accuracy(template.query.clone(), VARIANCE);
            let outcome = latencies
                .time(|| system.submit_shared(AnalystId(0), &request))
                .unwrap();
            cells += 1;
            if outcome.is_answered() {
                answered += 1;
            }
        }
    }
    let spent = system.provenance().row_total(AnalystId(0));
    (latencies, cells, answered, spent)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let queries: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let fact_rows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40_000);

    let workload = star::planner_probe();
    println!(
        "plan_throughput: {queries}-query stream expanded from the {}-template star probe over \
         {fact_rows} fact rows (vanilla mechanism, ψ_P = {TOTAL_EPSILON})",
        workload.templates.len()
    );

    let mut report = BenchReport::new("plan_throughput");
    report.arg("queries", queries).arg("fact_rows", fact_rows);
    report.section(
        "same stream, planned catalog vs materialise-everything",
        &[
            "strategy",
            "plan_us",
            "views",
            "est_cells",
            "qps",
            "cells_per_s",
            "answered_pct",
            "spent_eps",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
        ],
    );

    let db = star::folded_star_database(fact_rows, 7);
    let planner = Planner::new(CostModel::new(1e-9, TOTAL_EPSILON));
    let order = stream(&workload, queries);

    let mut baseline_spent = None;
    let mut baseline_views = None;
    for label in ["materialise-everything", "planned"] {
        let plan_start = Instant::now();
        let plan = if label == "planned" {
            planner.plan(&db, &workload).unwrap()
        } else {
            planner.materialise_everything(&db, &workload).unwrap()
        };
        let plan_us = plan_start.elapsed().as_secs_f64() * 1e6;
        if label == "planned" {
            println!("\n{}", plan.report());
        }

        let (latencies, cells, answered, spent) = run(&plan, &workload, &order, fact_rows);
        let total_s = latencies.total_seconds();
        let qps = queries as f64 / total_s;
        let cells_per_s = cells as f64 / total_s;
        let answered_pct = 100.0 * answered as f64 / queries as f64;

        // The planner must strictly beat the baseline where it claims to:
        // fewer views and less budget burned on the identical stream.
        let ref_views = *baseline_views.get_or_insert(plan.views.len());
        let ref_spent = *baseline_spent.get_or_insert(spent);
        if label == "planned" {
            assert!(
                plan.views.len() < ref_views,
                "planner bought {} views, baseline {}",
                plan.views.len(),
                ref_views
            );
            assert!(
                spent <= ref_spent,
                "planner spent {spent} eps, baseline {ref_spent}"
            );
        }

        let mut row = vec![
            cell("strategy", label),
            cell_fmt("plan_us", plan_us, fmt_f64(plan_us, 0)),
            cell("views", plan.views.len()),
            cell_fmt(
                "est_cells",
                plan.est_materialise_cells,
                fmt_f64(plan.est_materialise_cells, 0),
            ),
            cell_fmt("qps", qps, fmt_f64(qps, 0)),
            cell_fmt("cells_per_s", cells_per_s, fmt_f64(cells_per_s, 0)),
            cell_fmt("answered_pct", answered_pct, fmt_f64(answered_pct, 1)),
            cell_fmt("spent_eps", spent, fmt_f64(spent, 4)),
        ];
        row.extend(latencies.percentile_cells());
        report.row(&row);
    }
    report.finish();
    println!(
        "\nplanner asserted strictly fewer views and no more budget than the baseline on the \
         identical stream"
    );
}
