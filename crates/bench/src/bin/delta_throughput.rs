//! Throughput of the dynamic-data subsystem (`dprov-delta`): update
//! ingest rate, epoch-seal latency, and incremental patching vs full
//! rebuild at growing table sizes.
//!
//! The point of incremental maintenance is that a seal's cost scales with
//! the **delta**, not with the table: patching a view's histogram from
//! `k` delta rows is `O(k)`, while a full rebuild re-scans all `N` rows
//! of every affected view. This bin seals the same update stream under
//! both maintenance modes (answers are bit-identical — asserted inline)
//! and reports the widening gap as the base table grows. Latency
//! percentiles are per seal (the pause an updater experiences at each
//! epoch boundary).
//!
//! ```text
//! cargo run --release --bin delta_throughput [-- epochs [rows_per_batch]]
//! ```

use dprov_bench::report::{cell, cell_fmt, fmt_f64, BenchReport, Latencies};
use dprov_core::analyst::AnalystRegistry;
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_delta::{MaintenanceMode, UpdateBatch};
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_engine::value::Value;

const TABLE_SIZES: [usize; 3] = [10_000, 100_000, 400_000];

fn build_system(rows: usize, mode: MaintenanceMode) -> DProvDb {
    let db = adult_database(rows, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    registry.register("analyst", 4).unwrap();
    let config = SystemConfig::new(8.0)
        .unwrap()
        .with_seed(7)
        .with_maintenance(mode);
    DProvDb::new(
        db,
        catalog,
        registry,
        config,
        MechanismKind::AdditiveGaussian,
    )
    .unwrap()
}

fn adult_row(age: i64, hours: i64) -> Vec<Value> {
    vec![
        Value::Int(age),
        Value::text("Private"),
        Value::text("HS-grad"),
        Value::Int(9),
        Value::text("Never-married"),
        Value::text("Sales"),
        Value::text("Not-in-family"),
        Value::text("White"),
        Value::text("Male"),
        Value::Int(0),
        Value::Int(0),
        Value::Int(hours),
        Value::text("<=50K"),
    ]
}

fn batch(epoch: usize, rows_per_batch: usize) -> UpdateBatch {
    UpdateBatch::insert(
        "adult",
        (0..rows_per_batch)
            .map(|i| adult_row(17 + ((epoch * 7 + i) % 74) as i64, 1 + (i % 99) as i64))
            .collect(),
    )
}

/// Runs `epochs` seals of `rows_per_batch`-row batches; returns the
/// per-seal latencies (their sum is the total seal time) and the final
/// audit answer.
fn run(system: &DProvDb, epochs: usize, rows_per_batch: usize) -> (Latencies, f64) {
    let latencies = Latencies::new();
    for epoch in 0..epochs {
        system.apply_update(&batch(epoch, rows_per_batch)).unwrap();
        latencies.time(|| system.seal_epoch()).unwrap();
    }
    let audit = system
        .true_answer(&Query::range_count("adult", "age", 25, 45))
        .unwrap();
    (latencies, audit)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let epochs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let rows_per_batch: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    println!(
        "delta_throughput: {epochs} epochs x {rows_per_batch}-row insert batches over the adult \
         table (13 one-way views patched per seal)"
    );
    let mut report = BenchReport::new("delta_throughput");
    report
        .arg("epochs", epochs)
        .arg("rows_per_batch", rows_per_batch);

    report.section(
        "epoch seal cost — incremental patch vs full rebuild",
        &[
            "base_rows",
            "mode",
            "seal_ms_avg",
            "seals_per_s",
            "delta_rows_per_s",
            "speedup",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
        ],
    );
    for rows in TABLE_SIZES {
        let mut rebuild_avg = None;
        let mut rebuild_audit = None;
        for (label, mode) in [
            ("full-rebuild", MaintenanceMode::FullRebuild),
            ("incremental", MaintenanceMode::Incremental),
        ] {
            let system = build_system(rows, mode);
            let (latencies, audit) = run(&system, epochs, rows_per_batch);
            // Both modes must land on the identical exact state (the
            // full-rebuild run, first in the loop, is the reference).
            let reference = *rebuild_audit.get_or_insert(audit);
            assert_eq!(
                audit.to_bits(),
                reference.to_bits(),
                "maintenance modes diverged at {rows} rows"
            );
            let seal_s = latencies.total_seconds();
            let avg_ms = seal_s * 1e3 / epochs as f64;
            let baseline = *rebuild_avg.get_or_insert(avg_ms);
            let seals_per_s = epochs as f64 / seal_s;
            let delta_rows_per_s = (epochs * rows_per_batch) as f64 / seal_s;
            let speedup = baseline / avg_ms;
            let mut row = vec![
                cell("base_rows", rows),
                cell("mode", label),
                cell_fmt("seal_ms_avg", avg_ms, fmt_f64(avg_ms, 3)),
                cell_fmt("seals_per_s", seals_per_s, fmt_f64(seals_per_s, 0)),
                cell_fmt(
                    "delta_rows_per_s",
                    delta_rows_per_s,
                    fmt_f64(delta_rows_per_s, 0),
                ),
                cell_fmt("speedup_vs_rebuild", speedup, format!("{speedup:.2}x")),
            ];
            row.extend(latencies.percentile_cells());
            report.row(&row);
        }
    }
    report.finish();
    println!(
        "\nincremental seal cost tracks the delta (rows_per_batch), not the base table; \
         audit answers asserted bit-identical across modes"
    );
}
