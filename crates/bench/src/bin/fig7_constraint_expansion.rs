//! Figure 7 — component comparison: constraint configuration (expansion τ).
//!
//! With 2 analysts, the per-analyst constraints are multiplied by an
//! expansion factor τ ∈ {1, 1.3, 1.6, 1.9} (capped at ψ_P). Utility (top
//! row) increases with τ while the nDCFG fairness score (bottom row)
//! decreases — the fairness/utility trade-off of §6.2.2. The "static τ = 1"
//! column is the unexpanded Def. 11 configuration.
//!
//! Scale knobs: `DPROV_ROWS`, `DPROV_QUERIES` (default 300).

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{default_privileges, env_usize, registry_with, Dataset};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_workloads::metrics::RunMetrics;
use dprov_workloads::rrq::{generate, RrqConfig, RrqWorkload};
use dprov_workloads::runner::ExperimentRunner;
use dprov_workloads::sequence::Interleaving;

fn run_with_tau(
    db: &dprov_engine::database::Database,
    workload: &RrqWorkload,
    epsilon: f64,
    tau: f64,
    interleaving: Interleaving,
) -> RunMetrics {
    let privileges = default_privileges();
    let config = SystemConfig::new(epsilon)
        .expect("epsilon")
        .with_seed(5)
        .with_expansion(tau)
        .expect("tau >= 1");
    let catalog =
        dprov_engine::catalog::ViewCatalog::one_per_attribute(db, "adult").expect("catalog");
    let mut system = DProvDb::new(
        db.clone(),
        catalog,
        registry_with(&privileges),
        config,
        MechanismKind::AdditiveGaussian,
    )
    .expect("system setup");
    ExperimentRunner::new(&privileges)
        .run_rrq(&mut system, workload, interleaving)
        .expect("run")
}

fn main() {
    let rows = env_usize("DPROV_ROWS", 45_222);
    let queries = env_usize("DPROV_QUERIES", 300);
    let taus = [1.0, 1.3, 1.6, 1.9];
    let epsilons = [0.4, 0.8, 1.6, 3.2];

    let db = Dataset::Adult.build(rows, 42);
    let workload =
        generate(&db, &RrqConfig::new("adult", queries, 7), 2).expect("workload generation");

    for (interleaving, label) in [
        (Interleaving::RoundRobin, "round-robin"),
        (Interleaving::Random { seed: 31 }, "randomized"),
    ] {
        banner(&format!(
            "Fig. 7 ({label}): utility and fairness vs constraint expansion τ (Adult, DProvDB)"
        ));
        let mut utility = Table::new(&["epsilon", "static τ=1", "τ=1.3", "τ=1.6", "τ=1.9"]);
        let mut fairness = Table::new(&["epsilon", "static τ=1", "τ=1.3", "τ=1.6", "τ=1.9"]);
        for &eps in &epsilons {
            let mut urow = vec![format!("{eps}")];
            let mut frow = vec![format!("{eps}")];
            for &tau in &taus {
                let metrics = run_with_tau(&db, &workload, eps, tau, interleaving);
                urow.push(fmt_f64(metrics.total_answered() as f64, 0));
                frow.push(fmt_f64(metrics.ndcfg, 3));
            }
            utility.add_row(&urow);
            fairness.add_row(&frow);
        }
        println!("\n#queries answered:");
        utility.print();
        println!("\nnDCFG fairness:");
        fairness.print();
    }
}
