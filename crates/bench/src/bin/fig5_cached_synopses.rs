//! Figure 5 — component comparison: cached synopses.
//!
//! Utility (#queries answered) vs the size of the query workload, for each
//! overall budget ε ∈ {0.4, 0.8, 1.6, 3.2, 6.4}, round-robin interleaving.
//! Mechanisms with cached synopses (DProvDB, Vanilla) keep answering as the
//! workload grows — later queries hit the cache — while the Chorus variants
//! plateau once the budget is gone.
//!
//! Scale knobs: `DPROV_ROWS` (default 45222), `DPROV_MAX_QUERIES` (default
//! 1400 per analyst — the paper sweeps up to 14000), `DPROV_SEEDS`.

use dprov_bench::harness::{run_rrq_comparison_cell, ComparisonSpec};
use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{env_usize, Dataset, SystemKind};
use dprov_workloads::rrq::{generate, RrqConfig};

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::DProvDb,
    SystemKind::Vanilla,
    SystemKind::Chorus,
    SystemKind::ChorusP,
];

fn main() {
    let rows = env_usize("DPROV_ROWS", 45_222);
    let max_queries = env_usize("DPROV_MAX_QUERIES", 1_400);
    let seeds = env_usize("DPROV_SEEDS", 1);
    // The paper's sweep {100, 800, 2000, 4000, 8000, 14000}, scaled to the
    // configured maximum.
    let fractions = [
        100.0 / 14_000.0,
        800.0 / 14_000.0,
        2_000.0 / 14_000.0,
        4_000.0 / 14_000.0,
        8_000.0 / 14_000.0,
        1.0,
    ];
    let sizes: Vec<usize> = fractions
        .iter()
        .map(|f| ((f * max_queries as f64).round() as usize).max(10))
        .collect();

    let db = Dataset::Adult.build(rows, 42);
    let full_workload = generate(
        &db,
        &RrqConfig::new(Dataset::Adult.table(), max_queries, 7),
        2,
    )
    .expect("workload generation");

    for &eps in &[0.4, 0.8, 1.6, 3.2, 6.4] {
        banner(&format!(
            "Fig. 5 (ε = {eps}): #queries answered vs workload size (round-robin, Adult)"
        ));
        let mut table = Table::new(&["workload size", "DProvDB", "Vanilla", "Chorus", "ChorusP"]);
        for &size in &sizes {
            let workload = full_workload.truncated(size);
            let mut spec = ComparisonSpec::new(eps);
            spec.seeds = (1..=seeds as u64).collect();
            let mut row = vec![format!("{}", workload.total_queries())];
            for kind in SYSTEMS {
                let (agg, _) =
                    run_rrq_comparison_cell(kind, &db, &workload, &spec).expect("run cell");
                row.push(fmt_f64(agg.mean_answered, 1));
            }
            table.add_row(&row);
        }
        table.print();
    }
}
