//! Figure 3 — end-to-end comparison on the Adult dataset (RRQ task).
//!
//! Reproduces all four panels: number of queries answered vs. the overall
//! budget ε for the round-robin (a) and randomized (b) interleavings, and
//! the nDCFG fairness score for both interleavings (c, d), across the five
//! systems.
//!
//! Scale knobs (environment variables):
//! * `DPROV_ROWS`    — dataset rows (default 45222, the Adult size)
//! * `DPROV_QUERIES` — RRQ queries per analyst (default 400; the paper uses 4000)
//! * `DPROV_SEEDS`   — number of repetitions (default 2; the paper uses 4)

use dprov_bench::harness::{run_rrq_comparison, ComparisonSpec};
use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{env_usize, Dataset};
use dprov_workloads::rrq::{generate, RrqConfig};
use dprov_workloads::sequence::Interleaving;

fn main() {
    let rows = env_usize("DPROV_ROWS", 45_222);
    let queries = env_usize("DPROV_QUERIES", 400);
    let seeds = env_usize("DPROV_SEEDS", 2);
    let epsilons = [0.4, 0.8, 1.6, 3.2, 6.4];

    let db = Dataset::Adult.build(rows, 42);
    let workload = generate(&db, &RrqConfig::new(Dataset::Adult.table(), queries, 7), 2)
        .expect("workload generation");

    for (interleaving, label) in [
        (Interleaving::RoundRobin, "round-robin"),
        (Interleaving::Random { seed: 99 }, "randomized"),
    ] {
        banner(&format!(
            "Fig. 3 ({label}): #queries answered and nDCFG vs overall budget (Adult, {queries} queries/analyst)"
        ));
        let mut answered_table = Table::new(&[
            "epsilon",
            "DProvDB",
            "Vanilla",
            "sPrivateSQL",
            "Chorus",
            "ChorusP",
        ]);
        let mut fairness_table = Table::new(&[
            "epsilon",
            "DProvDB",
            "Vanilla",
            "sPrivateSQL",
            "Chorus",
            "ChorusP",
        ]);

        for &eps in &epsilons {
            let mut spec = ComparisonSpec::new(eps);
            spec.interleaving = interleaving;
            spec.seeds = (1..=seeds as u64).collect();
            let results = run_rrq_comparison(&db, &workload, &spec).expect("comparison run");

            let answered: Vec<String> = results
                .iter()
                .map(|(_, agg)| fmt_f64(agg.mean_answered, 1))
                .collect();
            let fairness: Vec<String> = results
                .iter()
                .map(|(_, agg)| fmt_f64(agg.mean_ndcfg, 3))
                .collect();

            let mut answered_row = vec![format!("{eps}")];
            answered_row.extend(answered);
            answered_table.add_row(&answered_row);
            let mut fairness_row = vec![format!("{eps}")];
            fairness_row.extend(fairness);
            fairness_table.add_row(&fairness_row);
        }

        println!("\n#queries answered:");
        answered_table.print();
        println!("\nnDCFG fairness:");
        fairness_table.print();
    }
}
