//! Figure 8 — #queries answered vs the per-query δ parameter (BFS task,
//! Adult).
//!
//! With the overall ε fixed at 6.4 the per-query δ is varied from 1e-13 to
//! 1e-9. A larger δ lets the accuracy→privacy translation pick a smaller ε
//! per query, so slightly more queries are answered. Both DProvDB (additive
//! GM) and Vanilla are reported, round-robin and randomized orders.
//!
//! Scale knobs: `DPROV_ROWS` (default 45222).

use dprov_bench::report::{banner, fmt_f64, Table};
use dprov_bench::setup::{default_privileges, env_usize, registry_with, Dataset};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_workloads::bfs::BfsConfig;
use dprov_workloads::rrq::{generate, RrqConfig};
use dprov_workloads::runner::ExperimentRunner;
use dprov_workloads::sequence::Interleaving;

fn build(db: &dprov_engine::database::Database, mechanism: MechanismKind, delta: f64) -> DProvDb {
    let spec = match mechanism {
        MechanismKind::AdditiveGaussian => AnalystConstraintSpec::MaxNormalized {
            system_max_level: None,
        },
        MechanismKind::Vanilla => AnalystConstraintSpec::ProportionalSum,
    };
    let config = SystemConfig::new(6.4)
        .expect("epsilon")
        .with_delta(delta)
        .expect("delta")
        .with_seed(3)
        .with_analyst_constraints(spec);
    let catalog =
        dprov_engine::catalog::ViewCatalog::one_per_attribute(db, "adult").expect("catalog");
    DProvDb::new(
        db.clone(),
        catalog,
        registry_with(&default_privileges()),
        config,
        mechanism,
    )
    .expect("system setup")
}

fn main() {
    let rows = env_usize("DPROV_ROWS", 45_222);
    let deltas = [1e-13, 1e-12, 1e-11, 1e-10, 1e-9];
    let db = Dataset::Adult.build(rows, 42);
    let privileges = default_privileges();
    let runner = ExperimentRunner::new(&privileges);

    // BFS workload (as in the end-to-end experiment) plus an RRQ workload
    // for the randomized-order panel.
    let bfs_configs = vec![
        BfsConfig::new("adult", "age", 400.0),
        BfsConfig::new("adult", "hours_per_week", 400.0),
    ];
    let rrq = generate(&db, &RrqConfig::new("adult", 300, 7), 2).expect("workload");

    banner("Fig. 8 (left, BFS round-robin): #queries answered vs per-query δ (ε = 6.4, Adult)");
    let mut left = Table::new(&["delta", "DProvDB", "Vanilla"]);
    for &delta in &deltas {
        let mut row = vec![format!("{delta:.0e}")];
        for mechanism in [MechanismKind::AdditiveGaussian, MechanismKind::Vanilla] {
            let mut system = build(&db, mechanism, delta);
            let metrics = runner.run_bfs(&mut system, &db, &bfs_configs).expect("run");
            row.push(fmt_f64(metrics.total_answered() as f64, 0));
        }
        left.add_row(&row);
    }
    left.print();

    banner("Fig. 8 (right, RRQ randomized): #queries answered vs per-query δ (ε = 6.4, Adult)");
    let mut right = Table::new(&["delta", "DProvDB", "Vanilla"]);
    for &delta in &deltas {
        let mut row = vec![format!("{delta:.0e}")];
        for mechanism in [MechanismKind::AdditiveGaussian, MechanismKind::Vanilla] {
            let mut system = build(&db, mechanism, delta);
            let metrics = runner
                .run_rrq(&mut system, &rrq, Interleaving::Random { seed: 17 })
                .expect("run");
            row.push(fmt_f64(metrics.total_answered() as f64, 0));
        }
        right.add_row(&row);
    }
    right.print();
}
