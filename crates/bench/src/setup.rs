//! Dataset and system construction shared by every experiment binary.

use dprov_core::analyst::AnalystRegistry;
use dprov_core::baselines::{ChorusBaseline, ChorusPBaseline, SPrivateSqlBaseline};
use dprov_core::config::{AnalystConstraintSpec, SystemConfig};
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::QueryProcessor;
use dprov_core::system::DProvDb;
use dprov_core::Result as CoreResult;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::database::Database;
use dprov_engine::datagen::adult::{adult_database, ADULT_TABLE};
use dprov_engine::datagen::tpch::{tpch_database, TPCH_TABLE};

/// Which dataset an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The synthetic Adult census stand-in.
    Adult,
    /// The synthetic TPC-H lineitem stand-in.
    Tpch,
}

impl Dataset {
    /// The table name queried by the workloads.
    #[must_use]
    pub fn table(self) -> &'static str {
        match self {
            Dataset::Adult => ADULT_TABLE,
            Dataset::Tpch => TPCH_TABLE,
        }
    }

    /// Builds the dataset at the given number of rows.
    #[must_use]
    pub fn build(self, rows: usize, seed: u64) -> Database {
        match self {
            Dataset::Adult => adult_database(rows, seed),
            Dataset::Tpch => tpch_database(rows, seed),
        }
    }

    /// A human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Dataset::Adult => "Adult",
            Dataset::Tpch => "TPC-H",
        }
    }
}

/// The five systems compared throughout Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// DProvDB with the additive Gaussian mechanism (Def. 11 constraints).
    DProvDb,
    /// DProvDB with the vanilla mechanism (Def. 10 constraints).
    Vanilla,
    /// The simulated PrivateSQL baseline.
    SPrivateSql,
    /// Plain Chorus.
    Chorus,
    /// Chorus with provenance (per-analyst constraints), no cached views.
    ChorusP,
}

impl SystemKind {
    /// All five systems, in the order the paper's figures list them.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::DProvDb,
        SystemKind::Vanilla,
        SystemKind::SPrivateSql,
        SystemKind::Chorus,
        SystemKind::ChorusP,
    ];

    /// Display label matching the figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::DProvDb => "DProvDB",
            SystemKind::Vanilla => "Vanilla",
            SystemKind::SPrivateSql => "sPrivateSQL",
            SystemKind::Chorus => "Chorus",
            SystemKind::ChorusP => "ChorusP",
        }
    }
}

/// Registers `privileges.len()` analysts with the given privilege levels.
#[must_use]
pub fn registry_with(privileges: &[u8]) -> AnalystRegistry {
    let mut registry = AnalystRegistry::new();
    for (i, &p) in privileges.iter().enumerate() {
        registry
            .register(&format!("analyst-{i}"), p)
            .expect("privilege in range");
    }
    registry
}

/// The default two-analyst setting of the experiments: privileges 1 and 4.
#[must_use]
pub fn default_privileges() -> Vec<u8> {
    vec![1, 4]
}

/// Builds one of the five systems over the given database.
///
/// DProvDB uses the Definition 11 (l_max) analyst constraints; Vanilla and
/// ChorusP use Definition 10 (l_sum), matching §6.2.1's configuration.
pub fn build_system(
    kind: SystemKind,
    db: &Database,
    privileges: &[u8],
    config: &SystemConfig,
) -> CoreResult<Box<dyn QueryProcessor>> {
    let registry = registry_with(privileges);
    let table = db
        .table_names()
        .first()
        .copied()
        .unwrap_or(ADULT_TABLE)
        .to_owned();
    let catalog = ViewCatalog::one_per_attribute(db, &table)?;

    let processor: Box<dyn QueryProcessor> = match kind {
        SystemKind::DProvDb => {
            let config =
                config
                    .clone()
                    .with_analyst_constraints(AnalystConstraintSpec::MaxNormalized {
                        system_max_level: None,
                    });
            Box::new(DProvDb::new(
                db.clone(),
                catalog,
                registry,
                config,
                MechanismKind::AdditiveGaussian,
            )?)
        }
        SystemKind::Vanilla => {
            let config = config
                .clone()
                .with_analyst_constraints(AnalystConstraintSpec::ProportionalSum);
            Box::new(DProvDb::new(
                db.clone(),
                catalog,
                registry,
                config,
                MechanismKind::Vanilla,
            )?)
        }
        SystemKind::SPrivateSql => Box::new(SPrivateSqlBaseline::new(
            db.clone(),
            catalog,
            registry,
            config.clone(),
        )?),
        SystemKind::Chorus => Box::new(ChorusBaseline::new(db.clone(), registry, config.clone())),
        SystemKind::ChorusP => {
            Box::new(ChorusPBaseline::new(db.clone(), registry, config.clone())?)
        }
    };
    Ok(processor)
}

/// Reads an environment variable as a usize with a default (lets the
/// experiment binaries scale up to paper-sized runs without recompiling,
/// e.g. `DPROV_QUERIES=4000`).
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an environment variable as an f64 with a default.
#[must_use]
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprov_core::analyst::AnalystId;
    use dprov_core::processor::QueryRequest;
    use dprov_engine::query::Query;

    #[test]
    fn every_system_can_be_built_and_answers_or_rejects() {
        let db = Dataset::Adult.build(500, 1);
        let config = SystemConfig::new(3.2).unwrap().with_seed(1);
        let request =
            QueryRequest::with_accuracy(Query::range_count("adult", "age", 25, 44), 20_000.0);
        for kind in SystemKind::ALL {
            let mut system = build_system(kind, &db, &default_privileges(), &config).unwrap();
            assert_eq!(system.name(), kind.label());
            assert_eq!(system.num_analysts(), 2);
            let outcome = system.submit(AnalystId(1), &request).unwrap();
            // Whatever the decision, it must be a decision, not an error.
            let _ = outcome.is_answered();
        }
    }

    #[test]
    fn dataset_helpers() {
        assert_eq!(Dataset::Adult.table(), "adult");
        assert_eq!(Dataset::Tpch.table(), "lineitem");
        assert_eq!(Dataset::Tpch.build(100, 1).total_rows(), 100);
        assert_eq!(Dataset::Adult.label(), "Adult");
    }

    #[test]
    fn env_parsing_falls_back_to_defaults() {
        assert_eq!(env_usize("DPROV_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_f64("DPROV_DOES_NOT_EXIST", 1.5), 1.5);
    }
}
