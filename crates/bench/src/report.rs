//! Fixed-width table printing and machine-readable JSON output for
//! experiment binaries.
//!
//! Every bench bin prints its human-readable tables to stdout **and**
//! writes a `BENCH_<name>.json` file (schema documented in `BENCH.md`):
//!
//! ```json
//! {
//!   "bench": "<name>",
//!   "args": { "<knob>": <value>, ... },
//!   "rows": [ { "<column>": <value>, ... }, ... ]
//! }
//! ```
//!
//! Values are JSON numbers, strings or booleans; non-finite floats render
//! as `null`. The file lands in the current working directory unless
//! `BENCH_JSON_DIR` points elsewhere — CI's bench smoke step greps these
//! files for sanity.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    #[must_use]
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        Table {
            header: header.iter().map(|s| s.as_ref().to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn add_row<S: AsRef<str>>(&mut self, row: &[S]) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(row.iter().map(|s| s.as_ref().to_owned()).collect());
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, "| {cell:<w$} ");
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.header);
        for w in &widths {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One JSON scalar in a bench report.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON number from a float (non-finite renders as `null`).
    Num(f64),
    /// A JSON integer.
    Int(i64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_value(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Num(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        JsonValue::Num(_) => out.push_str("null"),
        JsonValue::Int(v) => {
            let _ = write!(out, "{v}");
        }
        JsonValue::Str(s) => escape_json(s, out),
        JsonValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn render_object(fields: &[(String, JsonValue)], out: &mut String) {
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        escape_json(key, out);
        out.push_str(": ");
        render_value(value, out);
    }
    out.push('}');
}

/// A machine-readable bench report, written alongside the stdout tables
/// as `BENCH_<name>.json` (see the module docs for the schema).
#[derive(Debug, Clone, Default)]
pub struct BenchJson {
    bench: String,
    args: Vec<(String, JsonValue)>,
    rows: Vec<Vec<(String, JsonValue)>>,
}

impl BenchJson {
    /// A report for the named bench bin.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        BenchJson {
            bench: bench.to_owned(),
            args: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Records one invocation knob (dataset size, query count, ...).
    pub fn arg(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.args.push((key.to_owned(), value.into()));
        self
    }

    /// Appends one result row of `(column, value)` pairs.
    pub fn row(&mut self, fields: &[(&str, JsonValue)]) -> &mut Self {
        self.rows.push(
            fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        );
        self
    }

    /// Renders the whole report as a JSON document.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"bench\": ");
        escape_json(&self.bench, &mut out);
        out.push_str(", \"args\": ");
        render_object(&self.args, &mut out);
        out.push_str(", \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("\n  ");
            render_object(row, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `BENCH_JSON_DIR` (or the current
    /// directory) and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("BENCH_JSON_DIR").map_or_else(PathBuf::new, PathBuf::from);
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Writes the report, printing where it landed (or the error — a
    /// bench never fails its run because the report could not be saved).
    pub fn emit(&self) {
        match self.write() {
            Ok(path) => println!("\nmachine-readable report: {}", path.display()),
            Err(e) => eprintln!("\nWARNING: could not write bench JSON: {e}"),
        }
    }
}

/// One report cell: the JSON key and value, plus how the value renders
/// in the stdout table. Built with [`cell`] (derived rendering) or
/// [`cell_fmt`] (explicit rendering, e.g. `"1.25x"`).
#[derive(Debug, Clone)]
pub struct Cell {
    key: String,
    value: JsonValue,
    display: String,
}

/// A cell whose table rendering is derived from its JSON value (floats
/// with three decimals, everything else verbatim).
pub fn cell(key: &str, value: impl Into<JsonValue>) -> Cell {
    let value = value.into();
    let display = match &value {
        JsonValue::Num(v) => fmt_f64(*v, 3),
        JsonValue::Int(v) => v.to_string(),
        JsonValue::Str(s) => s.clone(),
        JsonValue::Bool(b) => b.to_string(),
    };
    Cell {
        key: key.to_owned(),
        value,
        display,
    }
}

/// A cell with an explicit table rendering decoupled from its raw JSON
/// value (`cell_fmt("speedup", 1.2534, "1.25x")`).
pub fn cell_fmt(key: &str, value: impl Into<JsonValue>, display: impl Into<String>) -> Cell {
    Cell {
        key: key.to_owned(),
        value: value.into(),
        display: display.into(),
    }
}

/// The combined stdout-table + `BENCH_<name>.json` emitter shared by the
/// throughput bins: one [`BenchReport::row`] call feeds both outputs, so
/// the table and the machine-readable report cannot drift apart (they
/// used to be maintained as copy-pasted parallel literals in every bin).
///
/// A report is a sequence of [`BenchReport::section`]s — each prints a
/// banner and renders its own table — over one shared JSON document;
/// multi-section bins keep their rows distinguishable with a
/// discriminator cell (`mechanism`, `phase`, ...).
#[derive(Debug)]
pub struct BenchReport {
    json: BenchJson,
    table: Option<Table>,
}

impl BenchReport {
    /// A report for the named bench bin.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        BenchReport {
            json: BenchJson::new(bench),
            table: None,
        }
    }

    /// Records one invocation knob (forwarded to the JSON `args` object).
    pub fn arg(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.json.arg(key, value);
        self
    }

    /// Flushes the previous section's table (if any), prints a banner and
    /// starts a new table whose header is `columns`. Rows added next must
    /// match that arity.
    pub fn section<S: AsRef<str>>(&mut self, title: &str, columns: &[S]) {
        self.flush_table();
        banner(title);
        self.table = Some(Table::new(columns));
    }

    /// Appends one row to both the current section's table (display
    /// strings, arity-checked against the section header) and the JSON
    /// report (keys + raw values).
    pub fn row(&mut self, cells: &[Cell]) {
        let table = self
            .table
            .as_mut()
            .expect("BenchReport::row called before BenchReport::section");
        let display: Vec<&str> = cells.iter().map(|c| c.display.as_str()).collect();
        table.add_row(&display);
        let fields: Vec<(&str, JsonValue)> = cells
            .iter()
            .map(|c| (c.key.as_str(), c.value.clone()))
            .collect();
        self.json.row(&fields);
    }

    /// Flushes the last table and writes `BENCH_<name>.json` (see
    /// [`BenchJson::emit`]).
    pub fn finish(&mut self) {
        self.flush_table();
        self.json.emit();
    }

    fn flush_table(&mut self) {
        if let Some(table) = self.table.take() {
            table.print();
        }
    }
}

/// A shared per-event latency collector for bench submitter threads:
/// records exact nanosecond samples (a `Mutex<Vec>` — one short lock per
/// event is noise at bench rates) and summarises them as exact
/// nearest-rank percentiles, unlike the service's log-bucketed runtime
/// histograms which trade resolution for lock-freedom.
#[derive(Debug, Default)]
pub struct Latencies {
    samples: Mutex<Vec<u64>>,
}

impl Latencies {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Latencies::default()
    }

    /// Records one latency sample.
    pub fn record(&self, dur: Duration) {
        let nanos = dur.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.samples.lock().expect("latencies poisoned").push(nanos);
    }

    /// Times a closure and records its duration, passing the result
    /// through.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.lock().expect("latencies poisoned").len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of every recorded sample, in seconds (total time spent in the
    /// timed operation).
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        let samples = self.samples.lock().expect("latencies poisoned");
        samples.iter().map(|&nanos| nanos as f64).sum::<f64>() / 1e9
    }

    /// The standard latency columns every throughput bin emits —
    /// `p50_us`/`p95_us`/`p99_us`/`max_us`, exact nearest-rank
    /// percentiles in microseconds (documented in `BENCH.md`). All zero
    /// when nothing was recorded.
    #[must_use]
    pub fn percentile_cells(&self) -> Vec<Cell> {
        let mut samples = self.samples.lock().expect("latencies poisoned").clone();
        samples.sort_unstable();
        let us = |nanos: u64| nanos as f64 / 1_000.0;
        let pct = |q: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            us(samples[rank - 1])
        };
        vec![
            cell_fmt("p50_us", pct(0.50), fmt_f64(pct(0.50), 1)),
            cell_fmt("p95_us", pct(0.95), fmt_f64(pct(0.95), 1)),
            cell_fmt("p99_us", pct(0.99), fmt_f64(pct(0.99), 1)),
            cell_fmt(
                "max_us",
                us(samples.last().copied().unwrap_or(0)),
                fmt_f64(us(samples.last().copied().unwrap_or(0)), 1),
            ),
        ]
    }
}

/// Formats a float with a fixed number of decimals (helper for table
/// cells).
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Prints a section banner so the output of a multi-part experiment binary
/// is easy to scan.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["system", "answered"]);
        t.add_row(&["DProvDB", "4231"]);
        t.add_row(&["Chorus", "62"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("system"));
        assert!(lines[2].contains("DProvDB"));
        // Every row has the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(&["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }

    #[test]
    fn bench_json_renders_the_documented_schema() {
        let mut report = BenchJson::new("exec_throughput");
        report.arg("queries", 2_000usize).arg("rows", 50_000usize);
        report.row(&[
            ("mode", "row-at-a-time".into()),
            ("qps", 1671.5.into()),
            ("ok", true.into()),
        ]);
        report.row(&[("mode", "columnar".into()), ("nan", f64::NAN.into())]);
        let out = report.render();
        assert!(out.contains("\"bench\": \"exec_throughput\""));
        assert!(out.contains("\"args\": {\"queries\": 2000, \"rows\": 50000}"));
        assert!(out.contains("{\"mode\": \"row-at-a-time\", \"qps\": 1671.5, \"ok\": true}"));
        assert!(out.contains("\"nan\": null"), "{out}");
        // Strings escape cleanly.
        let mut tricky = BenchJson::new("x");
        tricky.row(&[("s", "a\"b\\c\nd".into())]);
        assert!(tricky.render().contains(r#""s": "a\"b\\c\nd""#));
    }

    #[test]
    fn cells_derive_or_override_their_display() {
        let c = cell("qps", 1234.5678);
        assert_eq!(c.display, "1234.568");
        assert_eq!(cell("workers", 4usize).display, "4");
        assert_eq!(cell("mode", "columnar").display, "columnar");
        let c = cell_fmt("speedup", 1.2534, "1.25x");
        assert_eq!(c.display, "1.25x");
        match c.value {
            JsonValue::Num(v) => assert!((v - 1.2534).abs() < 1e-12),
            other => panic!("unexpected value {other:?}"),
        }
    }

    #[test]
    fn bench_report_feeds_table_and_json_from_one_row() {
        let mut report = BenchReport::new("unit_test_report");
        report.arg("rows", 10usize);
        report.section("first", &["mode", "qps"]);
        report.row(&[cell("mode", "a"), cell("qps", 10.0)]);
        // A new section may change arity without disturbing the JSON rows.
        report.section("second", &["phase", "n", "ok"]);
        report.row(&[cell("phase", "b"), cell("n", 3usize), cell("ok", true)]);
        let out = report.json.render();
        assert!(out.contains("\"bench\": \"unit_test_report\""));
        assert!(out.contains("\"args\": {\"rows\": 10}"));
        assert!(out.contains("{\"mode\": \"a\", \"qps\": 10}"));
        assert!(out.contains("{\"phase\": \"b\", \"n\": 3, \"ok\": true}"));
    }

    #[test]
    #[should_panic(expected = "before BenchReport::section")]
    fn bench_report_row_requires_a_section() {
        BenchReport::new("x").row(&[cell("a", 1usize)]);
    }

    #[test]
    fn latencies_report_exact_nearest_rank_percentiles() {
        let lat = Latencies::new();
        assert!(lat.is_empty());
        // 1..=100 microseconds.
        for us in 1..=100u64 {
            lat.record(Duration::from_micros(us));
        }
        assert_eq!(lat.len(), 100);
        let cells = lat.percentile_cells();
        let by_key: Vec<(&str, f64)> = cells
            .iter()
            .map(|c| match c.value {
                JsonValue::Num(v) => (c.key.as_str(), v),
                _ => panic!("percentiles must be numeric"),
            })
            .collect();
        assert_eq!(
            by_key,
            vec![
                ("p50_us", 50.0),
                ("p95_us", 95.0),
                ("p99_us", 99.0),
                ("max_us", 100.0),
            ]
        );
        // Empty collector yields zeros, not a panic.
        let empty = Latencies::new().percentile_cells();
        for c in empty {
            assert!(matches!(c.value, JsonValue::Num(v) if v == 0.0));
        }
        // `time` passes the closure result through and records a sample.
        let lat = Latencies::new();
        assert_eq!(lat.time(|| 7), 7);
        assert_eq!(lat.len(), 1);
    }
}
