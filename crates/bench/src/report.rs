//! Fixed-width table printing and JSON output for experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    #[must_use]
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        Table {
            header: header.iter().map(|s| s.as_ref().to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn add_row<S: AsRef<str>>(&mut self, row: &[S]) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(row.iter().map(|s| s.as_ref().to_owned()).collect());
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, "| {cell:<w$} ");
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.header);
        for w in &widths {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with a fixed number of decimals (helper for table
/// cells).
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Prints a section banner so the output of a multi-part experiment binary
/// is easy to scan.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["system", "answered"]);
        t.add_row(&["DProvDB", "4231"]);
        t.add_row(&["Chorus", "62"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("system"));
        assert!(lines[2].contains("DProvDB"));
        // Every row has the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(&["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }
}
