//! Fixed-width table printing and machine-readable JSON output for
//! experiment binaries.
//!
//! Every bench bin prints its human-readable tables to stdout **and**
//! writes a `BENCH_<name>.json` file (schema documented in `BENCH.md`):
//!
//! ```json
//! {
//!   "bench": "<name>",
//!   "args": { "<knob>": <value>, ... },
//!   "rows": [ { "<column>": <value>, ... }, ... ]
//! }
//! ```
//!
//! Values are JSON numbers, strings or booleans; non-finite floats render
//! as `null`. The file lands in the current working directory unless
//! `BENCH_JSON_DIR` points elsewhere — CI's bench smoke step greps these
//! files for sanity.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    #[must_use]
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        Table {
            header: header.iter().map(|s| s.as_ref().to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn add_row<S: AsRef<str>>(&mut self, row: &[S]) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(row.iter().map(|s| s.as_ref().to_owned()).collect());
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, "| {cell:<w$} ");
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.header);
        for w in &widths {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One JSON scalar in a bench report.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON number from a float (non-finite renders as `null`).
    Num(f64),
    /// A JSON integer.
    Int(i64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_value(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Num(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        JsonValue::Num(_) => out.push_str("null"),
        JsonValue::Int(v) => {
            let _ = write!(out, "{v}");
        }
        JsonValue::Str(s) => escape_json(s, out),
        JsonValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn render_object(fields: &[(String, JsonValue)], out: &mut String) {
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        escape_json(key, out);
        out.push_str(": ");
        render_value(value, out);
    }
    out.push('}');
}

/// A machine-readable bench report, written alongside the stdout tables
/// as `BENCH_<name>.json` (see the module docs for the schema).
#[derive(Debug, Clone, Default)]
pub struct BenchJson {
    bench: String,
    args: Vec<(String, JsonValue)>,
    rows: Vec<Vec<(String, JsonValue)>>,
}

impl BenchJson {
    /// A report for the named bench bin.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        BenchJson {
            bench: bench.to_owned(),
            args: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Records one invocation knob (dataset size, query count, ...).
    pub fn arg(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.args.push((key.to_owned(), value.into()));
        self
    }

    /// Appends one result row of `(column, value)` pairs.
    pub fn row(&mut self, fields: &[(&str, JsonValue)]) -> &mut Self {
        self.rows.push(
            fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        );
        self
    }

    /// Renders the whole report as a JSON document.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"bench\": ");
        escape_json(&self.bench, &mut out);
        out.push_str(", \"args\": ");
        render_object(&self.args, &mut out);
        out.push_str(", \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("\n  ");
            render_object(row, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `BENCH_JSON_DIR` (or the current
    /// directory) and returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("BENCH_JSON_DIR").map_or_else(PathBuf::new, PathBuf::from);
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Writes the report, printing where it landed (or the error — a
    /// bench never fails its run because the report could not be saved).
    pub fn emit(&self) {
        match self.write() {
            Ok(path) => println!("\nmachine-readable report: {}", path.display()),
            Err(e) => eprintln!("\nWARNING: could not write bench JSON: {e}"),
        }
    }
}

/// Formats a float with a fixed number of decimals (helper for table
/// cells).
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Prints a section banner so the output of a multi-part experiment binary
/// is easy to scan.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["system", "answered"]);
        t.add_row(&["DProvDB", "4231"]);
        t.add_row(&["Chorus", "62"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("system"));
        assert!(lines[2].contains("DProvDB"));
        // Every row has the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(&["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }

    #[test]
    fn bench_json_renders_the_documented_schema() {
        let mut report = BenchJson::new("exec_throughput");
        report.arg("queries", 2_000usize).arg("rows", 50_000usize);
        report.row(&[
            ("mode", "row-at-a-time".into()),
            ("qps", 1671.5.into()),
            ("ok", true.into()),
        ]);
        report.row(&[("mode", "columnar".into()), ("nan", f64::NAN.into())]);
        let out = report.render();
        assert!(out.contains("\"bench\": \"exec_throughput\""));
        assert!(out.contains("\"args\": {\"queries\": 2000, \"rows\": 50000}"));
        assert!(out.contains("{\"mode\": \"row-at-a-time\", \"qps\": 1671.5, \"ok\": true}"));
        assert!(out.contains("\"nan\": null"), "{out}");
        // Strings escape cleanly.
        let mut tricky = BenchJson::new("x");
        tricky.row(&[("s", "a\"b\\c\nd".into())]);
        assert!(tricky.render().contains(r#""s": "a\"b\\c\nd""#));
    }
}
