//! Corruption suite for the analyst protocol, mirroring
//! `crates/storage/tests/corruption.rs`: damage frames and payloads every
//! way a hostile network or torn stream can, and assert the decoders
//! surface **typed errors** — never a panic, never silent acceptance.

use std::io::Cursor;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dprov_api::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
    PROTOCOL_VERSION,
};
use dprov_api::{codes, frame};
use dprov_core::processor::QueryRequest;
use dprov_engine::expr::Predicate;
use dprov_engine::query::Query;

fn sample_request_payload() -> Vec<u8> {
    let query =
        Query::range_count("adult", "age", 20, 39).filter(Predicate::equals("sex", "Female"));
    encode_request(
        7,
        &Request::SubmitQuery(QueryRequest::with_accuracy(query, 450.0)),
    )
}

#[test]
fn every_truncation_of_a_request_is_a_typed_error() {
    let payload = sample_request_payload();
    for cut in 0..payload.len() {
        let err = decode_request(&payload[..cut]).expect_err("a truncated payload must not decode");
        assert!(
            err.code == codes::MALFORMED_FRAME || err.code == codes::UNSUPPORTED_VERSION,
            "cut at {cut}: unexpected code {}",
            err.code
        );
    }
}

#[test]
fn every_truncation_of_a_response_is_a_typed_error() {
    let payload = encode_response(
        3,
        &Response::SessionRegistered {
            session: 12,
            analyst: 1,
            privilege: 4,
            resumed: true,
        },
    );
    for cut in 0..payload.len() {
        assert!(
            decode_response(&payload[..cut]).is_err(),
            "cut at {cut} decoded"
        );
    }
}

#[test]
fn bad_version_bytes_are_refused_with_the_dedicated_code() {
    let mut payload = sample_request_payload();
    for bad in [0u8, PROTOCOL_VERSION + 1, 0x7F, 0xFF] {
        payload[0] = bad;
        let err = decode_request(&payload).expect_err("wrong version must not decode");
        assert_eq!(err.code, codes::UNSUPPORTED_VERSION, "version byte {bad}");
    }
}

#[test]
fn trailing_garbage_is_refused() {
    let mut payload = encode_request(1, &Request::Heartbeat);
    payload.push(0xAB);
    let err = decode_request(&payload).unwrap_err();
    assert_eq!(err.code, codes::MALFORMED_FRAME);
}

#[test]
fn framed_stream_survives_no_single_bit_flip() {
    let framed = frame::frame(&sample_request_payload());
    // Flip every bit of the body and a sample of header bits: the CRC (or
    // the length/structure checks for header damage) must catch each one.
    for byte in 0..framed.len() {
        for bit in 0..8 {
            let mut damaged = framed.clone();
            damaged[byte] ^= 1 << bit;
            let mut stream = Cursor::new(damaged);
            match frame::read_frame(&mut stream) {
                Err(_) => {} // typed refusal: good
                Ok(Some(payload)) => {
                    // A flip inside the length prefix can shorten the
                    // frame to a prefix whose CRC happens to be read from
                    // the old body — the payload then differs and the
                    // *message* decoder must catch it. What must never
                    // happen is decoding to the original bytes.
                    assert_ne!(
                        payload,
                        frame::frame(&sample_request_payload())[8..].to_vec(),
                        "flip at byte {byte} bit {bit} went unnoticed"
                    );
                }
                Ok(None) => panic!("flip at byte {byte} bit {bit} looked like clean EOF"),
            }
        }
    }
}

#[test]
fn torn_frames_and_oversized_lengths_are_typed() {
    let framed = frame::frame(&sample_request_payload());
    for cut in 1..framed.len() {
        let mut stream = Cursor::new(framed[..cut].to_vec());
        let err = frame::read_frame(&mut stream).expect_err("torn frame must error");
        assert!(
            err.code == codes::CONNECTION_CLOSED || err.code == codes::CHECKSUM_MISMATCH,
            "cut at {cut}: unexpected code {}",
            err.code
        );
    }
    let mut huge = framed;
    huge[0..4].copy_from_slice(&(frame::MAX_FRAME_LEN as u32 + 1).to_le_bytes());
    let err = frame::read_frame(&mut Cursor::new(huge)).unwrap_err();
    assert_eq!(err.code, codes::FRAME_TOO_LARGE);
}

#[test]
fn deep_predicate_nesting_is_bounded_not_a_stack_overflow() {
    // Build a payload whose predicate nests far beyond the decode limit by
    // hand-crafting `Not` tags (encoding such a tree through the public
    // API would blow the encoder's stack first at truly hostile depths).
    let base = encode_request(
        1,
        &Request::SubmitQuery(QueryRequest::with_accuracy(Query::count("t"), 100.0)),
    );
    // Locate the predicate start: header(10) + table str(4+1) + agg tag(1).
    let pred_at = 10 + 4 + 1 + 1;
    assert_eq!(base[pred_at], 0, "expected Predicate::True tag");
    let mut hostile = base[..pred_at].to_vec();
    hostile.extend(std::iter::repeat_n(6u8, 100_000)); // Not(Not(...
    hostile.push(0); // innermost True
    hostile.extend_from_slice(&base[pred_at + 1..]); // group_by + mode
    let err = decode_request(&hostile).expect_err("hostile nesting must be refused");
    assert_eq!(err.code, codes::MALFORMED_FRAME);
    assert!(err.message.contains("nesting"), "got: {}", err.message);
}

fn sample_grouped_payload() -> Vec<u8> {
    use dprov_core::processor::GroupedRequest;
    use dprov_engine::group::GroupByQuery;
    let query =
        GroupByQuery::count("adult", &["sex", "race"]).filter(Predicate::range("age", 20, 39));
    encode_request(
        13,
        &Request::GroupByQuery(GroupedRequest::with_accuracy(query, 450.0)),
    )
}

fn sample_workload_payload() -> Vec<u8> {
    use dprov_core::workload::DeclaredWorkload;
    let workload = DeclaredWorkload::new()
        .template(Query::count("adult").group_by(&["sex"]), 4.0)
        .template(Query::range_count("adult", "age", 20, 39), 1.0);
    encode_request(14, &Request::DeclareWorkload(workload))
}

#[test]
fn every_truncation_of_a_grouped_request_is_a_typed_error() {
    let payload = sample_grouped_payload();
    for cut in 0..payload.len() {
        let err =
            decode_request(&payload[..cut]).expect_err("a truncated grouped query must not decode");
        assert!(
            err.code == codes::MALFORMED_FRAME || err.code == codes::UNSUPPORTED_VERSION,
            "cut at {cut}: unexpected code {}",
            err.code
        );
    }
}

#[test]
fn every_truncation_of_a_workload_declaration_is_a_typed_error() {
    let payload = sample_workload_payload();
    for cut in 0..payload.len() {
        let err = decode_request(&payload[..cut])
            .expect_err("a truncated workload declaration must not decode");
        assert!(
            err.code == codes::MALFORMED_FRAME || err.code == codes::UNSUPPORTED_VERSION,
            "cut at {cut}: unexpected code {}",
            err.code
        );
    }
}

#[test]
fn framed_grouped_stream_survives_no_single_bit_flip() {
    let framed = frame::frame(&sample_grouped_payload());
    for byte in 0..framed.len() {
        for bit in 0..8 {
            let mut damaged = framed.clone();
            damaged[byte] ^= 1 << bit;
            let mut stream = Cursor::new(damaged);
            match frame::read_frame(&mut stream) {
                Err(_) => {}
                Ok(Some(payload)) => {
                    assert_ne!(
                        payload,
                        frame::frame(&sample_grouped_payload())[8..].to_vec(),
                        "flip at byte {byte} bit {bit} went unnoticed"
                    );
                }
                Ok(None) => panic!("flip at byte {byte} bit {bit} looked like clean EOF"),
            }
        }
    }
}

#[test]
fn hostile_group_key_counts_are_bounded_not_an_allocation() {
    // A grouped answer claiming 2^32-1 group keys with an empty body must
    // be refused by the payload-bounded length check, not attempted.
    use dprov_core::processor::GroupedOutcome;
    let mut payload = encode_response(
        3,
        &Response::GroupedAnswer(GroupedOutcome {
            keys: Vec::new(),
            outcomes: Vec::new(),
        }),
    );
    // Header is version(1) + tag(1) + request_id(8); the keys count u32 is next.
    payload.truncate(10);
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = decode_response(&payload).unwrap_err();
    assert_eq!(err.code, codes::MALFORMED_FRAME);
    assert!(err.message.contains("count"), "got: {}", err.message);
}

#[test]
fn every_truncation_of_a_mux_frame_is_a_typed_error() {
    let payload = encode_request(
        5,
        &Request::Mux {
            channel: 3,
            payload: sample_request_payload(),
        },
    );
    for cut in 0..payload.len() {
        let err =
            decode_request(&payload[..cut]).expect_err("a truncated mux frame must not decode");
        assert!(
            err.code == codes::MALFORMED_FRAME || err.code == codes::UNSUPPORTED_VERSION,
            "cut at {cut}: unexpected code {}",
            err.code
        );
    }
}

#[test]
fn mux_inner_payload_length_cannot_exceed_the_frame() {
    // Corrupt the inner-payload length prefix to claim more bytes than the
    // message holds: the decoder must refuse, not over-read or allocate.
    let inner = sample_request_payload();
    let mut payload = encode_request(
        5,
        &Request::Mux {
            channel: 3,
            payload: inner,
        },
    );
    // Header (10 bytes) + channel u64 (8) puts the bytes-length u32 next.
    let len_at = 10 + 8;
    payload[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = decode_request(&payload).unwrap_err();
    assert_eq!(err.code, codes::MALFORMED_FRAME);
}

#[test]
fn mux_with_garbage_inner_payload_decodes_outer_only() {
    // The outer mux codec treats the inner payload as opaque: outer decode
    // succeeds, and the garbage surfaces as a typed error only when the
    // channel state machine decodes the inner message.
    let garbage = vec![0xDE, 0xAD, 0xBE, 0xEF];
    let payload = encode_request(
        5,
        &Request::Mux {
            channel: 9,
            payload: garbage.clone(),
        },
    );
    match decode_request(&payload).expect("outer frame is well-formed") {
        (_, Request::Mux { channel, payload }) => {
            assert_eq!(channel, 9);
            let err = decode_request(&payload).expect_err("garbage inner must not decode");
            assert!(
                err.code == codes::MALFORMED_FRAME || err.code == codes::UNSUPPORTED_VERSION,
                "unexpected code {}",
                err.code
            );
            assert_eq!(payload, garbage);
        }
        other => panic!("decoded to {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Single-byte corruption of a mux frame either fails typed or decodes
    /// to *some* request — never panics, never aliases into the original.
    #[test]
    fn flipped_mux_frame_bytes_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = encode_request(
            5,
            &Request::Mux { channel: rng.gen::<u64>(), payload: sample_request_payload() },
        );
        let at = rng.gen_range(0usize..payload.len());
        payload[at] ^= 1 << rng.gen_range(0u32..8);
        let _ = decode_request(&payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup never panics any decoder and never yields a
    /// frame that fails its own re-encode identity.
    #[test]
    fn random_bytes_never_panic_the_decoders(seed in 0u64..u64::MAX, len in 0usize..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..=255) as u8).collect();
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = frame::read_frame(&mut Cursor::new(bytes));
    }

    /// Single-byte corruption of a valid request payload either fails
    /// typed or decodes to *some* request — never panics. (On the wire
    /// the CRC frame already rejects these; this covers the in-process
    /// transport, which skips the CRC.)
    #[test]
    fn flipped_payload_bytes_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = sample_request_payload();
        let at = rng.gen_range(0usize..payload.len());
        payload[at] ^= 1 << rng.gen_range(0u32..8);
        let _ = decode_request(&payload);
    }
}

// ---------------------------------------------------------------------------
// Cluster control messages get the same hostile treatment.
// ---------------------------------------------------------------------------

fn sample_cluster_payload() -> Vec<u8> {
    use dprov_api::cluster::{encode_cluster, ClusterMsg, LogEntry};
    use dprov_core::analyst::AnalystId;
    use dprov_core::mechanism::MechanismKind;
    use dprov_core::recorder::CommitRecord;
    use dprov_storage::wal::WalRecord;
    encode_cluster(
        11,
        &ClusterMsg::AppendEntries {
            term: 4,
            leader: 1,
            prev_index: 9,
            prev_term: 3,
            commit: 8,
            entries: vec![
                LogEntry {
                    term: 4,
                    record: WalRecord::Commit(CommitRecord {
                        seq: 10,
                        analyst: AnalystId(2),
                        view: "age".into(),
                        mechanism: MechanismKind::Vanilla,
                        prev_entry: 0.25,
                        new_entry: 0.5,
                        charged: 0.25,
                    }),
                },
                LogEntry {
                    term: 4,
                    record: WalRecord::Rollback { seq: 9 },
                },
            ],
        },
    )
}

#[test]
fn every_truncation_of_a_cluster_message_is_a_typed_error() {
    let payload = sample_cluster_payload();
    for cut in 0..payload.len() {
        let err = dprov_api::cluster::decode_cluster(&payload[..cut])
            .expect_err("a truncated cluster payload must not decode");
        assert!(
            err.code == codes::MALFORMED_FRAME || err.code == codes::UNSUPPORTED_VERSION,
            "cut at {cut}: unexpected code {}",
            err.code
        );
    }
}

#[test]
fn cluster_bad_version_and_unknown_tags_are_refused() {
    let mut payload = sample_cluster_payload();
    for bad in [0u8, PROTOCOL_VERSION + 1, 0xFF] {
        payload[0] = bad;
        let err = dprov_api::cluster::decode_cluster(&payload).unwrap_err();
        assert_eq!(err.code, codes::UNSUPPORTED_VERSION, "version byte {bad}");
    }
    payload[0] = PROTOCOL_VERSION;
    // Sweep every byte value through the tag slot: only the ten assigned
    // cluster tags may even *attempt* a body decode; the rest are typed
    // unknown-tag refusals (analyst tags included — disjoint ranges).
    for tag in 0u8..=255 {
        if (64..=73).contains(&tag) {
            continue;
        }
        payload[1] = tag;
        let err = dprov_api::cluster::decode_cluster(&payload).unwrap_err();
        assert_eq!(err.code, codes::MALFORMED_FRAME, "tag {tag}");
    }
}

#[test]
fn cluster_trailing_garbage_is_refused() {
    let mut payload = sample_cluster_payload();
    payload.push(0xCD);
    let err = dprov_api::cluster::decode_cluster(&payload).unwrap_err();
    assert_eq!(err.code, codes::MALFORMED_FRAME);
}

#[test]
fn framed_cluster_stream_survives_no_single_bit_flip() {
    let framed = frame::frame(&sample_cluster_payload());
    for byte in 0..framed.len() {
        for bit in 0..8 {
            let mut damaged = framed.clone();
            damaged[byte] ^= 1 << bit;
            let mut stream = Cursor::new(damaged);
            match frame::read_frame(&mut stream) {
                Err(_) => {}
                Ok(Some(payload)) => {
                    assert_ne!(
                        payload,
                        frame::frame(&sample_cluster_payload())[8..].to_vec(),
                        "flip at byte {byte} bit {bit} went unnoticed"
                    );
                }
                Ok(None) => panic!("flip at byte {byte} bit {bit} looked like clean EOF"),
            }
        }
    }
}

#[test]
fn hostile_entry_counts_are_bounded_not_an_allocation() {
    // An AppendEntries header claiming 2^32-1 entries with an empty body
    // must be refused by the pre-allocation bound, not attempted.
    let mut payload = sample_cluster_payload();
    // Header is version(1) + tag(1) + request_id(8); then five u64 fields,
    // then the entry count u32.
    let count_at = 10 + 5 * 8;
    payload.truncate(count_at);
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = dprov_api::cluster::decode_cluster(&payload).unwrap_err();
    assert_eq!(err.code, codes::MALFORMED_FRAME);
    assert!(err.message.contains("count"), "got: {}", err.message);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup never panics the cluster decoder.
    #[test]
    fn random_bytes_never_panic_the_cluster_decoder(seed in 0u64..u64::MAX, len in 0usize..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..=255) as u8).collect();
        let _ = dprov_api::cluster::decode_cluster(&bytes);
    }

    /// Single-byte corruption of a valid cluster payload either fails
    /// typed or decodes to *some* message — never panics.
    #[test]
    fn flipped_cluster_payload_bytes_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = sample_cluster_payload();
        let at = rng.gen_range(0usize..payload.len());
        payload[at] ^= 1 << rng.gen_range(0u32..8);
        let _ = dprov_api::cluster::decode_cluster(&payload);
    }
}
