//! Property tests: every request and response variant survives an
//! encode → decode round trip bit-for-bit, at the payload level and
//! through the byte-stream framing.
//!
//! Structured values (queries with recursive predicates, outcomes,
//! errors) are generated from a seeded RNG so each proptest case explores
//! a different shape while staying reproducible from its seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dprov_api::protocol::{
    decode_request, decode_response, encode_request, encode_response, BudgetReport, Request,
    Response,
};
use dprov_api::{frame, ApiError, ErrorKind};
use dprov_core::analyst::AnalystId;
use dprov_core::error::RejectReason;
use dprov_core::processor::{
    AnsweredQuery, GroupedOutcome, GroupedRequest, QueryOutcome, QueryRequest, SubmissionMode,
};
use dprov_core::workload::{DeclaredWorkload, QueryTemplate};
use dprov_engine::expr::Predicate;
use dprov_engine::group::GroupByQuery;
use dprov_engine::query::{AggregateKind, Query};
use dprov_engine::value::Value;

fn arb_string(rng: &mut StdRng) -> String {
    let alphabet: Vec<char> = "abcXYZ09_ä☃-. ".chars().collect();
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())])
        .collect()
}

fn arb_value(rng: &mut StdRng) -> Value {
    if rng.gen::<bool>() {
        Value::Int(rng.gen_range(-1_000_000i64..=1_000_000))
    } else {
        Value::Text(arb_string(rng))
    }
}

fn arb_predicate(rng: &mut StdRng, depth: usize) -> Predicate {
    let max_tag = if depth >= 3 { 3 } else { 6 };
    match rng.gen_range(0u32..=max_tag) {
        0 => Predicate::True,
        1 => Predicate::Range {
            attribute: arb_string(rng),
            low: rng.gen_range(-1_000i64..1_000),
            high: rng.gen_range(-1_000i64..1_000),
        },
        2 => Predicate::Equals {
            attribute: arb_string(rng),
            value: arb_value(rng),
        },
        3 => Predicate::InSet {
            attribute: arb_string(rng),
            values: (0..rng.gen_range(0usize..4))
                .map(|_| arb_value(rng))
                .collect(),
        },
        4 => Predicate::And(
            (0..rng.gen_range(0usize..3))
                .map(|_| arb_predicate(rng, depth + 1))
                .collect(),
        ),
        5 => Predicate::Or(
            (0..rng.gen_range(0usize..3))
                .map(|_| arb_predicate(rng, depth + 1))
                .collect(),
        ),
        _ => Predicate::Not(Box::new(arb_predicate(rng, depth + 1))),
    }
}

fn arb_query(rng: &mut StdRng) -> Query {
    Query {
        table: arb_string(rng),
        aggregate: match rng.gen_range(0u32..3) {
            0 => AggregateKind::Count,
            1 => AggregateKind::Sum(arb_string(rng)),
            _ => AggregateKind::Avg(arb_string(rng)),
        },
        predicate: arb_predicate(rng, 0),
        group_by: (0..rng.gen_range(0usize..3))
            .map(|_| arb_string(rng))
            .collect(),
    }
}

fn arb_query_request(rng: &mut StdRng) -> QueryRequest {
    QueryRequest {
        query: arb_query(rng),
        mode: if rng.gen::<bool>() {
            SubmissionMode::Accuracy {
                variance: rng.gen_range(0.001f64..1e9),
            }
        } else {
            SubmissionMode::Privacy {
                epsilon: rng.gen_range(1e-6f64..64.0),
            }
        },
    }
}

fn arb_mode(rng: &mut StdRng) -> SubmissionMode {
    if rng.gen::<bool>() {
        SubmissionMode::Accuracy {
            variance: rng.gen_range(0.001f64..1e9),
        }
    } else {
        SubmissionMode::Privacy {
            epsilon: rng.gen_range(1e-6f64..64.0),
        }
    }
}

fn arb_grouped_request(rng: &mut StdRng) -> GroupedRequest {
    GroupedRequest {
        query: GroupByQuery {
            table: arb_string(rng),
            group_cols: (0..rng.gen_range(0usize..3))
                .map(|_| arb_string(rng))
                .collect(),
            aggregate: match rng.gen_range(0u32..3) {
                0 => AggregateKind::Count,
                1 => AggregateKind::Sum(arb_string(rng)),
                _ => AggregateKind::Avg(arb_string(rng)),
            },
            predicate: arb_predicate(rng, 0),
        },
        mode: arb_mode(rng),
    }
}

fn arb_grouped_outcome(rng: &mut StdRng) -> GroupedOutcome {
    let cells = rng.gen_range(0usize..5);
    GroupedOutcome {
        keys: (0..cells)
            .map(|_| {
                (0..rng.gen_range(0usize..3))
                    .map(|_| arb_value(rng))
                    .collect()
            })
            .collect(),
        outcomes: (0..cells).map(|_| arb_outcome(rng)).collect(),
    }
}

fn arb_workload(rng: &mut StdRng) -> DeclaredWorkload {
    DeclaredWorkload {
        templates: (0..rng.gen_range(0usize..4))
            .map(|_| QueryTemplate {
                query: arb_query(rng),
                weight: rng.gen_range(0.0f64..1e3),
            })
            .collect(),
    }
}

fn arb_outcome(rng: &mut StdRng) -> QueryOutcome {
    if rng.gen::<bool>() {
        QueryOutcome::Answered(AnsweredQuery {
            value: rng.gen_range(-1e12f64..1e12),
            view: if rng.gen::<bool>() {
                Some(arb_string(rng))
            } else {
                None
            },
            epsilon_charged: rng.gen_range(0.0f64..32.0),
            noise_variance: rng.gen_range(0.0f64..1e9),
            from_cache: rng.gen::<bool>(),
            epoch: rng.gen::<u64>(),
        })
    } else {
        QueryOutcome::Rejected {
            reason: match rng.gen_range(0u32..6) {
                0 => RejectReason::AnalystConstraint {
                    analyst: AnalystId(rng.gen_range(0usize..64)),
                },
                1 => RejectReason::ViewConstraint {
                    view: arb_string(rng),
                },
                2 => RejectReason::TableConstraint,
                3 => RejectReason::AccuracyUnreachable,
                4 => RejectReason::NotAnswerable,
                _ => RejectReason::InsufficientSynopsis,
            },
        }
    }
}

fn arb_api_error(rng: &mut StdRng) -> ApiError {
    let mut e = ApiError::new(rng.gen_range(100u16..1000), arb_string(rng));
    // Wire errors carry whatever kind/retryable the sender chose; exercise
    // disagreement with the local derivation too.
    if rng.gen::<bool>() {
        e.retryable = !e.retryable;
    }
    if rng.gen::<bool>() {
        e.kind = ErrorKind::Internal;
    }
    e
}

fn arb_metrics_snapshot(rng: &mut StdRng) -> dprov_obs::MetricsSnapshot {
    use dprov_obs::{BudgetGauge, HistogramSnapshot};
    let arb_hist = |rng: &mut StdRng| HistogramSnapshot {
        count: rng.gen::<u64>(),
        sum: rng.gen::<u64>(),
        max: rng.gen::<u64>(),
        p50: rng.gen::<u64>(),
        p95: rng.gen::<u64>(),
        p99: rng.gen::<u64>(),
    };
    dprov_obs::MetricsSnapshot {
        counters: (0..rng.gen_range(0usize..5))
            .map(|_| (arb_string(rng), rng.gen::<u64>()))
            .collect(),
        gauges: (0..rng.gen_range(0usize..5))
            .map(|_| (arb_string(rng), rng.gen_range(-1e12f64..1e12)))
            .collect(),
        histograms: (0..rng.gen_range(0usize..5))
            .map(|_| (arb_string(rng), arb_hist(rng)))
            .collect(),
        budgets: (0..rng.gen_range(0usize..4))
            .map(|_| BudgetGauge {
                analyst: arb_string(rng),
                view: arb_string(rng),
                entry_epsilon: rng.gen_range(0.0f64..64.0),
                remaining_epsilon: rng.gen_range(0.0f64..64.0),
            })
            .collect(),
    }
}

/// Every request variant, chosen by `tag` so proptest cases sweep them all.
fn arb_request(rng: &mut StdRng, tag: u32) -> Request {
    match tag % 13 {
        11 => Request::GroupByQuery(arb_grouped_request(rng)),
        12 => Request::DeclareWorkload(arb_workload(rng)),
        10 => Request::Mux {
            channel: rng.gen::<u64>(),
            // The outer codec treats the inner payload as opaque bytes;
            // sweep both well-formed inner messages and raw noise.
            payload: if rng.gen::<bool>() {
                let inner_tag = rng.gen_range(0u32..10);
                let inner_id = rng.gen::<u64>();
                encode_request(inner_id, &arb_request(rng, inner_tag))
            } else {
                (0..rng.gen_range(0usize..64))
                    .map(|_| rng.gen_range(0u32..=255) as u8)
                    .collect()
            },
        },
        0 => Request::Hello {
            max_version: rng.gen_range(0u32..=255) as u8,
            client_name: arb_string(rng),
        },
        1 => Request::RegisterSession {
            analyst_name: arb_string(rng),
            resume: if rng.gen::<bool>() {
                Some(rng.gen::<u64>())
            } else {
                None
            },
        },
        2 => Request::SubmitQuery(arb_query_request(rng)),
        3 => Request::Heartbeat,
        4 => Request::BudgetStatus,
        5 => Request::CloseSession,
        6 => Request::RegisterUpdater {
            updater_name: arb_string(rng),
        },
        7 => Request::ApplyUpdate(arb_update_batch(rng)),
        8 => Request::SealEpoch,
        _ => Request::MetricsSnapshot,
    }
}

fn arb_value_row(rng: &mut StdRng) -> Vec<dprov_engine::value::Value> {
    use dprov_engine::value::Value;
    (0..rng.gen_range(0usize..5))
        .map(|_| {
            if rng.gen::<bool>() {
                Value::Int(rng.gen_range(i64::MIN..i64::MAX))
            } else {
                Value::Text(arb_string(rng))
            }
        })
        .collect()
}

fn arb_update_batch(rng: &mut StdRng) -> dprov_delta::UpdateBatch {
    dprov_delta::UpdateBatch {
        table: arb_string(rng),
        inserts: (0..rng.gen_range(0usize..4))
            .map(|_| arb_value_row(rng))
            .collect(),
        deletes: (0..rng.gen_range(0usize..4))
            .map(|_| arb_value_row(rng))
            .collect(),
    }
}

/// Every response variant, chosen by `tag`.
fn arb_response(rng: &mut StdRng, tag: u32) -> Response {
    match tag % 14 {
        12 => Response::GroupedAnswer(arb_grouped_outcome(rng)),
        13 => Response::WorkloadPlan {
            views: rng.gen::<u64>(),
            est_epsilon: rng.gen_range(0.0f64..64.0),
            est_materialise_cells: rng.gen_range(0.0f64..1e12),
            report: arb_string(rng),
        },
        10 => Response::MuxReply {
            channel: rng.gen::<u64>(),
            payload: if rng.gen::<bool>() {
                let inner_tag = rng.gen_range(0u32..10);
                let inner_id = rng.gen::<u64>();
                encode_response(inner_id, &arb_response(rng, inner_tag))
            } else {
                (0..rng.gen_range(0usize..64))
                    .map(|_| rng.gen_range(0u32..=255) as u8)
                    .collect()
            },
        },
        0 => Response::HelloAck {
            version: rng.gen_range(0u32..=255) as u8,
            server_name: arb_string(rng),
        },
        1 => Response::SessionRegistered {
            session: rng.gen::<u64>(),
            analyst: rng.gen::<u64>(),
            privilege: rng.gen_range(1u32..=10) as u8,
            resumed: rng.gen::<bool>(),
        },
        2 => Response::QueryAnswer(arb_outcome(rng)),
        3 => Response::HeartbeatAck,
        4 => Response::BudgetReport(BudgetReport {
            session: rng.gen::<u64>(),
            analyst: rng.gen::<u64>(),
            privilege: rng.gen_range(1u32..=10) as u8,
            budget_constraint: rng.gen_range(0.0f64..64.0),
            budget_consumed: rng.gen_range(0.0f64..64.0),
            budget_remaining: rng.gen_range(0.0f64..64.0),
            submitted: rng.gen::<u64>(),
            answered: rng.gen::<u64>(),
            rejected: rng.gen::<u64>(),
        }),
        5 => Response::SessionClosed,
        6 => Response::UpdaterRegistered,
        7 => Response::UpdateAccepted {
            batch_seq: rng.gen::<u64>(),
            pending: rng.gen::<u64>(),
        },
        8 => Response::EpochSealed {
            epoch: rng.gen::<u64>(),
            batches: rng.gen::<u64>(),
            rows: rng.gen::<u64>(),
            views_patched: rng.gen::<u64>(),
            synopses_invalidated: rng.gen::<u64>(),
        },
        9 => Response::MetricsReport(arb_metrics_snapshot(rng)),
        _ => Response::Error(arb_api_error(rng)),
    }
}

/// The grouped/planning extension appended tags only: the floor stays at
/// version 2, and a payload stamped with any still-supported version
/// decodes unchanged.
#[test]
fn protocol_floor_is_unchanged_by_the_grouped_extension() {
    use dprov_api::protocol::{MIN_SUPPORTED_VERSION, PROTOCOL_VERSION};
    assert_eq!(MIN_SUPPORTED_VERSION, 2);
    assert_eq!(PROTOCOL_VERSION, 4);
    let payload = encode_request(9, &Request::Heartbeat);
    for version in MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION {
        let mut stamped = payload.clone();
        stamped[0] = version;
        let (rid, decoded) = decode_request(&stamped).expect("supported version must decode");
        assert_eq!((rid, decoded), (9, Request::Heartbeat), "version {version}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Requests round-trip bit-for-bit through payload encoding, and
    /// through the CRC frame wrapping a byte-stream transport applies.
    #[test]
    fn request_round_trips(seed in 0u64..u64::MAX, tag in 0u32..13, request_id in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = arb_request(&mut rng, tag);
        let payload = encode_request(request_id, &request);
        let (rid, decoded) = decode_request(&payload).expect("fresh payload must decode");
        prop_assert_eq!(rid, request_id);
        prop_assert_eq!(&decoded, &request);

        let mut stream = std::io::Cursor::new(frame::frame(&payload));
        let unframed = frame::read_frame(&mut stream).unwrap().expect("one frame");
        prop_assert_eq!(unframed, payload);
    }

    /// Responses round-trip bit-for-bit the same way.
    #[test]
    fn response_round_trips(seed in 0u64..u64::MAX, tag in 0u32..14, request_id in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let response = arb_response(&mut rng, tag);
        let payload = encode_response(request_id, &response);
        let (rid, decoded) = decode_response(&payload).expect("fresh payload must decode");
        prop_assert_eq!(rid, request_id);
        prop_assert_eq!(&decoded, &response);

        let mut stream = std::io::Cursor::new(frame::frame(&payload));
        let unframed = frame::read_frame(&mut stream).unwrap().expect("one frame");
        prop_assert_eq!(unframed, payload);
    }

    /// Request and response tag spaces are disjoint: decoding a stream
    /// from the wrong side yields a typed error, never an aliased message.
    #[test]
    fn wrong_side_decodes_fail_loudly(seed in 0u64..u64::MAX, tag in 0u32..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = arb_request(&mut rng, tag);
        prop_assert!(decode_response(&encode_request(9, &request)).is_err());
        let response = arb_response(&mut rng, tag);
        prop_assert!(decode_request(&encode_response(9, &response)).is_err());
    }

    /// A well-formed inner message survives the mux wrapping bit-for-bit:
    /// outer decode yields the channel and the exact inner payload, and
    /// the inner payload decodes back to the original message.
    #[test]
    fn mux_wrapping_preserves_inner_messages(
        seed in 0u64..u64::MAX,
        tag in 0u32..10,
        channel in 0u64..u64::MAX,
        inner_id in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inner_request = arb_request(&mut rng, tag);
        let inner_payload = encode_request(inner_id, &inner_request);
        let outer = encode_request(0, &Request::Mux {
            channel,
            payload: inner_payload.clone(),
        });
        match decode_request(&outer).expect("outer mux frame must decode") {
            (_, Request::Mux { channel: ch, payload }) => {
                prop_assert_eq!(ch, channel);
                prop_assert_eq!(&payload, &inner_payload);
                let (rid, decoded) = decode_request(&payload).expect("inner must decode");
                prop_assert_eq!(rid, inner_id);
                prop_assert_eq!(decoded, inner_request);
            }
            other => prop_assert!(false, "decoded to {other:?}"),
        }

        let inner_response = arb_response(&mut rng, tag);
        let inner_payload = encode_response(inner_id, &inner_response);
        let outer = encode_response(0, &Response::MuxReply {
            channel,
            payload: inner_payload.clone(),
        });
        match decode_response(&outer).expect("outer mux reply must decode") {
            (_, Response::MuxReply { channel: ch, payload }) => {
                prop_assert_eq!(ch, channel);
                prop_assert_eq!(&payload, &inner_payload);
                let (rid, decoded) = decode_response(&payload).expect("inner must decode");
                prop_assert_eq!(rid, inner_id);
                prop_assert_eq!(decoded, inner_response);
            }
            other => prop_assert!(false, "decoded to {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster control messages (the node-to-node wire surface).
// ---------------------------------------------------------------------------

fn arb_wal_record(rng: &mut StdRng) -> dprov_storage::wal::WalRecord {
    use dprov_core::mechanism::MechanismKind;
    use dprov_core::recorder::{AccessRecord, CommitRecord};
    use dprov_storage::wal::{SessionCheckpoint, WalRecord};
    match rng.gen_range(0u32..8) {
        0 => WalRecord::Commit(CommitRecord {
            seq: rng.gen::<u64>(),
            analyst: AnalystId(rng.gen_range(0usize..1024)),
            view: arb_string(rng),
            mechanism: if rng.gen::<bool>() {
                MechanismKind::Vanilla
            } else {
                MechanismKind::AdditiveGaussian
            },
            prev_entry: rng.gen_range(0.0f64..64.0),
            new_entry: rng.gen_range(0.0f64..64.0),
            charged: rng.gen_range(0.0f64..64.0),
        }),
        1 => WalRecord::Access(AccessRecord {
            seq: rng.gen::<u64>(),
            epsilon: rng.gen_range(0.0f64..64.0),
            sigma: rng.gen_range(0.0f64..1e6),
            sensitivity: rng.gen_range(0.0f64..1e3),
        }),
        2 => WalRecord::Rollback {
            seq: rng.gen::<u64>(),
        },
        3 => WalRecord::Session(SessionCheckpoint {
            session: rng.gen::<u64>(),
            analyst: AnalystId(rng.gen_range(0usize..1024)),
            rng: dprov_dp::rng::RngCheckpoint {
                draws: rng.gen::<u64>(),
                spare_normal: if rng.gen::<bool>() {
                    Some(rng.gen_range(-8.0f64..8.0))
                } else {
                    None
                },
            },
        }),
        4 => WalRecord::SessionClosed {
            session: rng.gen::<u64>(),
        },
        5 => WalRecord::Fingerprint {
            fingerprint: rng.gen::<u64>(),
        },
        6 => WalRecord::Update(dprov_delta::EncodedBatch {
            seq: rng.gen::<u64>(),
            table: arb_string(rng),
            inserts: (0..rng.gen_range(0usize..3))
                .map(|_| {
                    (0..rng.gen_range(0usize..4))
                        .map(|_| rng.gen::<u32>())
                        .collect()
                })
                .collect(),
            deletes: (0..rng.gen_range(0usize..3))
                .map(|_| {
                    (0..rng.gen_range(0usize..4))
                        .map(|_| rng.gen::<u32>())
                        .collect()
                })
                .collect(),
        }),
        _ => WalRecord::EpochSeal {
            epoch: rng.gen::<u64>(),
            through_seq: rng.gen::<u64>(),
        },
    }
}

fn arb_log_entry(rng: &mut StdRng) -> dprov_api::cluster::LogEntry {
    dprov_api::cluster::LogEntry {
        term: rng.gen::<u64>(),
        record: arb_wal_record(rng),
    }
}

/// Every cluster message variant, chosen by `tag` so proptest cases sweep
/// them all.
fn arb_cluster_msg(rng: &mut StdRng, tag: u32) -> dprov_api::cluster::ClusterMsg {
    use dprov_api::cluster::ClusterMsg;
    match tag % 10 {
        0 => ClusterMsg::RequestVote {
            term: rng.gen::<u64>(),
            candidate: rng.gen::<u64>(),
            last_log_index: rng.gen::<u64>(),
            last_log_term: rng.gen::<u64>(),
        },
        1 => ClusterMsg::VoteReply {
            term: rng.gen::<u64>(),
            voter: rng.gen::<u64>(),
            granted: rng.gen::<bool>(),
        },
        2 => ClusterMsg::AppendEntries {
            term: rng.gen::<u64>(),
            leader: rng.gen::<u64>(),
            prev_index: rng.gen::<u64>(),
            prev_term: rng.gen::<u64>(),
            commit: rng.gen::<u64>(),
            entries: (0..rng.gen_range(0usize..4))
                .map(|_| arb_log_entry(rng))
                .collect(),
        },
        3 => ClusterMsg::AppendReply {
            term: rng.gen::<u64>(),
            node: rng.gen::<u64>(),
            success: rng.gen::<bool>(),
            match_index: rng.gen::<u64>(),
        },
        4 => ClusterMsg::Register {
            node: rng.gen::<u64>(),
            name: arb_string(rng),
            scan_threads: rng.gen::<u64>(),
            deadline_ticks: rng.gen::<u64>(),
        },
        5 => ClusterMsg::RegisterAck {
            node: rng.gen::<u64>(),
        },
        6 => ClusterMsg::Heartbeat {
            node: rng.gen::<u64>(),
            seq: rng.gen::<u64>(),
        },
        7 => ClusterMsg::HeartbeatAck {
            node: rng.gen::<u64>(),
            seq: rng.gen::<u64>(),
        },
        8 => ClusterMsg::ShardScan {
            epoch: rng.gen::<u64>(),
            table: arb_string(rng),
            shard_lo: rng.gen::<u64>(),
            shard_hi: rng.gen::<u64>(),
            queries: (0..rng.gen_range(0usize..3))
                .map(|_| arb_query(rng))
                .collect(),
        },
        _ => ClusterMsg::ShardPartials {
            epoch: rng.gen::<u64>(),
            partials: (0..rng.gen_range(0usize..5))
                .map(|_| (rng.gen_range(-1e12f64..1e12), rng.gen_range(-1e12f64..1e12)))
                .collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every cluster message — including replicated-log entries carrying
    /// every WAL record variant — round-trips bit-for-bit through payload
    /// encoding and the CRC framing.
    #[test]
    fn cluster_round_trips(seed in 0u64..u64::MAX, tag in 0u32..10, request_id in 0u64..u64::MAX) {
        use dprov_api::cluster::{decode_cluster, encode_cluster};
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = arb_cluster_msg(&mut rng, tag);
        let payload = encode_cluster(request_id, &msg);
        let (rid, decoded) = decode_cluster(&payload).expect("fresh payload must decode");
        prop_assert_eq!(rid, request_id);
        prop_assert_eq!(&decoded, &msg);

        let mut stream = std::io::Cursor::new(frame::frame(&payload));
        let unframed = frame::read_frame(&mut stream).unwrap().expect("one frame");
        prop_assert_eq!(unframed, payload);
    }

    /// The cluster tag range (64..=79) is disjoint from analyst request and
    /// response tags: a stream decoded by the wrong side errors, it never
    /// aliases into a different message type.
    #[test]
    fn cluster_tags_are_disjoint_from_analyst_tags(seed in 0u64..u64::MAX, tag in 0u32..10) {
        use dprov_api::cluster::{decode_cluster, encode_cluster};
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = arb_cluster_msg(&mut rng, tag);
        let payload = encode_cluster(3, &msg);
        prop_assert!(decode_request(&payload).is_err());
        prop_assert!(decode_response(&payload).is_err());

        let request = arb_request(&mut rng, tag);
        prop_assert!(decode_cluster(&encode_request(3, &request)).is_err());
        let response = arb_response(&mut rng, tag % 11);
        prop_assert!(decode_cluster(&encode_response(3, &response)).is_err());
    }
}
