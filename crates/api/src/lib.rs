//! # `dprov-api` — the versioned analyst wire protocol
//!
//! DProvDB is a multi-analyst *service*: analysts with distinct privilege
//! levels query one provenance-governed database. This crate is the
//! service's front door — the stable, serializable contract between
//! analyst clients and the `dprov-server` worker pool:
//!
//! * [`protocol`] — the **versioned message set**: typed requests
//!   (`Hello`/`RegisterSession`, `SubmitQuery`, `Heartbeat`,
//!   `BudgetStatus`, `CloseSession`) and responses, each payload carrying
//!   a version byte, a type tag and a pipelining request id;
//! * [`error`] — the **stable error taxonomy**: one [`ApiError`] with
//!   append-only numeric codes, a broad kind and a retryability hint,
//!   which every internal error enum (`CoreError`, `DpError`,
//!   `EngineError`, `StorageError`, and the server's
//!   `ServerError`/`SessionError`) maps into;
//! * [`frame`] — **length-prefixed, CRC-32-checked frames** for byte
//!   streams, reusing the codec discipline of `dprov-storage`'s
//!   write-ahead ledger;
//! * [`transport`] — the [`Connection`] abstraction with two
//!   implementations: an in-process zero-copy channel pair and TCP (one
//!   socket per analyst session);
//! * [`mux`] — **connection multiplexing** (protocol v3): a
//!   [`MuxConnection`] shares one socket between many channels, each a
//!   virtual [`Connection`] running its own session — so a fleet of
//!   analysts no longer costs a socket per session;
//! * [`client`] — the blocking [`DProvClient`]: synchronous
//!   [`DProvClient::query`], pipelined
//!   [`DProvClient::submit`]/[`DProvClient::poll`], budget
//!   introspection via [`DProvClient::budget`], and the service-wide
//!   observability snapshot via [`DProvClient::metrics`].
//!
//! The [`cluster`] module adds the node-to-node control messages of the
//! distributed deployment (consensus, registration, shard fan-out) under
//! an append-only tag range disjoint from the analyst messages.
//!
//! The server side of the contract — the `Frontend` that serves these
//! messages over the worker pool — lives in `dprov-server`; this crate
//! deliberately has no dependency on it, so clients can be built (and
//! cross-compiled) without linking the service.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod cluster;
pub mod error;
pub mod frame;
pub mod mux;
pub mod protocol;
pub mod transport;
mod wire;

pub use client::{DProvClient, EpochSealReport, RequestId, SessionDescriptor, WorkloadPlanReport};
pub use error::{codes, ApiError, ErrorKind};
pub use mux::MuxConnection;
pub use protocol::{BudgetReport, Request, Response, PROTOCOL_VERSION};
pub use transport::{Connection, FrameSink, FrameSource};
pub use wire::MAX_PREDICATE_DEPTH;
