//! Cluster control messages: the node-to-node wire surface of the
//! distributed deployment (`dprov-cluster`).
//!
//! These messages ride the same CRC-checked [`crate::frame`] codec and the
//! same `version | tag | request_id` header as the analyst protocol, but
//! under an **append-only tag range of their own** (`64..=79`) — disjoint
//! from request tags (`1..`), response tags (`129..`) and the error tag
//! (`255`), so a cluster stream accidentally decoded as an analyst stream
//! (or vice versa) fails loudly instead of aliasing into a different
//! message type.
//!
//! The consensus messages carry replicated-log entries that are **exactly
//! the `dprov-storage` WAL records** ([`WalRecord`]): the write-ahead
//! ledger's encoding is the replication format, so a committed log prefix
//! replays through the same recovery path as a local WAL.

use dprov_engine::query::Query;
use dprov_storage::codec::{Decoder, Encoder};
use dprov_storage::wal::WalRecord;

use crate::error::ApiError;
use crate::protocol::PROTOCOL_VERSION;
use crate::wire;

/// One replicated-log entry: the Raft term it was appended under plus the
/// WAL record it carries.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// The leader term the entry was appended under.
    pub term: u64,
    /// The payload — a write-ahead ledger record, bit-for-bit.
    pub record: WalRecord,
}

/// A cluster control message (consensus, membership or shard fan-out).
///
/// Marked `#[non_exhaustive]`: new message types may be added under new
/// tags without a breaking change.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterMsg {
    /// Raft: a candidate asks for a vote.
    RequestVote {
        /// The candidate's term.
        term: u64,
        /// The candidate's node id.
        candidate: u64,
        /// Entries in the candidate's log (its length).
        last_log_index: u64,
        /// Term of the candidate's last entry (0 when the log is empty).
        last_log_term: u64,
    },
    /// Raft: a vote-request answer.
    VoteReply {
        /// The voter's current term.
        term: u64,
        /// The voter's node id.
        voter: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Raft: leader-to-follower log replication (empty `entries` is a
    /// heartbeat).
    AppendEntries {
        /// The leader's term.
        term: u64,
        /// The leader's node id.
        leader: u64,
        /// Entries preceding the appended ones (log-matching check).
        prev_index: u64,
        /// Term of the entry at `prev_index` (0 when none).
        prev_term: u64,
        /// The leader's commit index.
        commit: u64,
        /// Entries to append after `prev_index`.
        entries: Vec<LogEntry>,
    },
    /// Raft: an append-entries answer.
    AppendReply {
        /// The follower's current term.
        term: u64,
        /// The follower's node id.
        node: u64,
        /// Whether the append matched and was stored.
        success: bool,
        /// Entries the follower's log now matches the leader's through.
        match_index: u64,
    },
    /// Orchestrator: an executor node registers its static capabilities
    /// (the EDGELESS ε-ORC `NodeRegistration` pattern).
    Register {
        /// The node's id.
        node: u64,
        /// Free-form node name (for logs; not a credential).
        name: String,
        /// Threads the node scans with.
        scan_threads: u64,
        /// Ticks without a heartbeat after which the node is evicted.
        deadline_ticks: u64,
    },
    /// Orchestrator: registration accepted.
    RegisterAck {
        /// The registered node's id.
        node: u64,
    },
    /// Orchestrator: a registered node refreshes its deadline.
    Heartbeat {
        /// The node's id.
        node: u64,
        /// Monotone heartbeat sequence number.
        seq: u64,
    },
    /// Orchestrator: heartbeat acknowledged.
    HeartbeatAck {
        /// The node's id.
        node: u64,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Gateway → executor: evaluate a micro-batch over a contiguous shard
    /// range `[shard_lo, shard_hi)` of one table at one sealed epoch.
    ShardScan {
        /// The sealed epoch the partials must reflect.
        epoch: u64,
        /// The scanned table.
        table: String,
        /// First shard of the range (inclusive).
        shard_lo: u64,
        /// One past the last shard of the range.
        shard_hi: u64,
        /// The batch's queries, in submission order.
        queries: Vec<Query>,
    },
    /// Executor → gateway: one `(count, sum)` partial aggregate per query
    /// of the scan, folded over the range in ascending shard order.
    ShardPartials {
        /// The epoch the partials were computed at.
        epoch: u64,
        /// Raw partial parts, one `(count, sum)` pair per query.
        partials: Vec<(f64, f64)>,
    },
}

const TAG_REQUEST_VOTE: u8 = 64;
const TAG_VOTE_REPLY: u8 = 65;
const TAG_APPEND_ENTRIES: u8 = 66;
const TAG_APPEND_REPLY: u8 = 67;
const TAG_REGISTER: u8 = 68;
const TAG_REGISTER_ACK: u8 = 69;
const TAG_HEARTBEAT: u8 = 70;
const TAG_HEARTBEAT_ACK: u8 = 71;
const TAG_SHARD_SCAN: u8 = 72;
const TAG_SHARD_PARTIALS: u8 = 73;

fn header(enc: &mut Encoder, tag: u8, request_id: u64) {
    enc.put_u8(PROTOCOL_VERSION);
    enc.put_u8(tag);
    enc.put_u64(request_id);
}

/// Encodes a cluster message into a payload (to be framed by the
/// transport).
#[must_use]
pub fn encode_cluster(request_id: u64, msg: &ClusterMsg) -> Vec<u8> {
    let mut enc = Encoder::new();
    match msg {
        ClusterMsg::RequestVote {
            term,
            candidate,
            last_log_index,
            last_log_term,
        } => {
            header(&mut enc, TAG_REQUEST_VOTE, request_id);
            enc.put_u64(*term);
            enc.put_u64(*candidate);
            enc.put_u64(*last_log_index);
            enc.put_u64(*last_log_term);
        }
        ClusterMsg::VoteReply {
            term,
            voter,
            granted,
        } => {
            header(&mut enc, TAG_VOTE_REPLY, request_id);
            enc.put_u64(*term);
            enc.put_u64(*voter);
            enc.put_bool(*granted);
        }
        ClusterMsg::AppendEntries {
            term,
            leader,
            prev_index,
            prev_term,
            commit,
            entries,
        } => {
            header(&mut enc, TAG_APPEND_ENTRIES, request_id);
            enc.put_u64(*term);
            enc.put_u64(*leader);
            enc.put_u64(*prev_index);
            enc.put_u64(*prev_term);
            enc.put_u64(*commit);
            enc.put_u32(entries.len() as u32);
            for entry in entries {
                enc.put_u64(entry.term);
                enc.put_bytes(&entry.record.encode());
            }
        }
        ClusterMsg::AppendReply {
            term,
            node,
            success,
            match_index,
        } => {
            header(&mut enc, TAG_APPEND_REPLY, request_id);
            enc.put_u64(*term);
            enc.put_u64(*node);
            enc.put_bool(*success);
            enc.put_u64(*match_index);
        }
        ClusterMsg::Register {
            node,
            name,
            scan_threads,
            deadline_ticks,
        } => {
            header(&mut enc, TAG_REGISTER, request_id);
            enc.put_u64(*node);
            enc.put_str(name);
            enc.put_u64(*scan_threads);
            enc.put_u64(*deadline_ticks);
        }
        ClusterMsg::RegisterAck { node } => {
            header(&mut enc, TAG_REGISTER_ACK, request_id);
            enc.put_u64(*node);
        }
        ClusterMsg::Heartbeat { node, seq } => {
            header(&mut enc, TAG_HEARTBEAT, request_id);
            enc.put_u64(*node);
            enc.put_u64(*seq);
        }
        ClusterMsg::HeartbeatAck { node, seq } => {
            header(&mut enc, TAG_HEARTBEAT_ACK, request_id);
            enc.put_u64(*node);
            enc.put_u64(*seq);
        }
        ClusterMsg::ShardScan {
            epoch,
            table,
            shard_lo,
            shard_hi,
            queries,
        } => {
            header(&mut enc, TAG_SHARD_SCAN, request_id);
            enc.put_u64(*epoch);
            enc.put_str(table);
            enc.put_u64(*shard_lo);
            enc.put_u64(*shard_hi);
            enc.put_u32(queries.len() as u32);
            for query in queries {
                wire::put_query(&mut enc, query);
            }
        }
        ClusterMsg::ShardPartials { epoch, partials } => {
            header(&mut enc, TAG_SHARD_PARTIALS, request_id);
            enc.put_u64(*epoch);
            enc.put_u32(partials.len() as u32);
            for &(count, sum) in partials {
                enc.put_f64(count);
                enc.put_f64(sum);
            }
        }
    }
    enc.into_bytes()
}

/// Decodes a cluster payload into `(request_id, message)`. Rejects analyst
/// request/response tags (disjoint ranges), unknown tags, version
/// mismatches and trailing garbage — the same discipline as
/// [`crate::protocol::decode_request`].
pub fn decode_cluster(payload: &[u8]) -> Result<(u64, ClusterMsg), ApiError> {
    let mut dec = Decoder::new(payload);
    let version = dec.take_u8().map_err(wire::malformed)?;
    if version != PROTOCOL_VERSION {
        return Err(ApiError::new(
            crate::error::codes::UNSUPPORTED_VERSION,
            format!(
                "protocol version {version} not supported (this build speaks {PROTOCOL_VERSION})"
            ),
        ));
    }
    let tag = dec.take_u8().map_err(wire::malformed)?;
    let request_id = dec.take_u64().map_err(wire::malformed)?;
    let msg = match tag {
        TAG_REQUEST_VOTE => ClusterMsg::RequestVote {
            term: dec.take_u64().map_err(wire::malformed)?,
            candidate: dec.take_u64().map_err(wire::malformed)?,
            last_log_index: dec.take_u64().map_err(wire::malformed)?,
            last_log_term: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_VOTE_REPLY => ClusterMsg::VoteReply {
            term: dec.take_u64().map_err(wire::malformed)?,
            voter: dec.take_u64().map_err(wire::malformed)?,
            granted: dec.take_bool().map_err(wire::malformed)?,
        },
        TAG_APPEND_ENTRIES => {
            let term = dec.take_u64().map_err(wire::malformed)?;
            let leader = dec.take_u64().map_err(wire::malformed)?;
            let prev_index = dec.take_u64().map_err(wire::malformed)?;
            let prev_term = dec.take_u64().map_err(wire::malformed)?;
            let commit = dec.take_u64().map_err(wire::malformed)?;
            let count = dec.take_u32().map_err(wire::malformed)? as usize;
            // Every entry costs at least 12 bytes (term + length prefix),
            // bounding the allocation against hostile counts.
            if count.saturating_mul(12) > dec.remaining() {
                return Err(wire::malformed(format!(
                    "entry count {count} exceeds the payload"
                )));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let entry_term = dec.take_u64().map_err(wire::malformed)?;
                let bytes = dec.take_bytes().map_err(wire::malformed)?;
                let record = WalRecord::decode(&bytes).map_err(wire::malformed)?;
                entries.push(LogEntry {
                    term: entry_term,
                    record,
                });
            }
            ClusterMsg::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                commit,
                entries,
            }
        }
        TAG_APPEND_REPLY => ClusterMsg::AppendReply {
            term: dec.take_u64().map_err(wire::malformed)?,
            node: dec.take_u64().map_err(wire::malformed)?,
            success: dec.take_bool().map_err(wire::malformed)?,
            match_index: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_REGISTER => ClusterMsg::Register {
            node: dec.take_u64().map_err(wire::malformed)?,
            name: dec.take_str().map_err(wire::malformed)?,
            scan_threads: dec.take_u64().map_err(wire::malformed)?,
            deadline_ticks: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_REGISTER_ACK => ClusterMsg::RegisterAck {
            node: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_HEARTBEAT => ClusterMsg::Heartbeat {
            node: dec.take_u64().map_err(wire::malformed)?,
            seq: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_HEARTBEAT_ACK => ClusterMsg::HeartbeatAck {
            node: dec.take_u64().map_err(wire::malformed)?,
            seq: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_SHARD_SCAN => {
            let epoch = dec.take_u64().map_err(wire::malformed)?;
            let table = dec.take_str().map_err(wire::malformed)?;
            let shard_lo = dec.take_u64().map_err(wire::malformed)?;
            let shard_hi = dec.take_u64().map_err(wire::malformed)?;
            let count = dec.take_u32().map_err(wire::malformed)? as usize;
            if count.saturating_mul(6) > dec.remaining() {
                return Err(wire::malformed(format!(
                    "query count {count} exceeds the payload"
                )));
            }
            let queries = (0..count)
                .map(|_| wire::take_query(&mut dec))
                .collect::<Result<Vec<Query>, _>>()
                .map_err(wire::malformed)?;
            ClusterMsg::ShardScan {
                epoch,
                table,
                shard_lo,
                shard_hi,
                queries,
            }
        }
        TAG_SHARD_PARTIALS => {
            let epoch = dec.take_u64().map_err(wire::malformed)?;
            let count = dec.take_u32().map_err(wire::malformed)? as usize;
            if count.saturating_mul(16) > dec.remaining() {
                return Err(wire::malformed(format!(
                    "partial count {count} exceeds the payload"
                )));
            }
            let partials = (0..count)
                .map(|_| {
                    Ok((
                        dec.take_f64().map_err(wire::malformed)?,
                        dec.take_f64().map_err(wire::malformed)?,
                    ))
                })
                .collect::<Result<Vec<(f64, f64)>, ApiError>>()?;
            ClusterMsg::ShardPartials { epoch, partials }
        }
        t => {
            return Err(wire::malformed(format!("unknown cluster tag {t}")));
        }
    };
    if !dec.is_empty() {
        return Err(wire::malformed(format!(
            "{} trailing bytes after the message body",
            dec.remaining()
        )));
    }
    Ok((request_id, msg))
}
