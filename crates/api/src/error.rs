//! The stable, analyst-facing error taxonomy.
//!
//! Every error the service can hand an analyst — session lookups, protocol
//! violations, budget-system failures, storage faults — is reported as one
//! [`ApiError`] with a **stable numeric code** ([`codes`]), a broad
//! [`ErrorKind`], a human-readable message and a `retryable` hint. The
//! codes are wire-stable: a code, once assigned a meaning, never changes
//! it, so clients may switch on `code` without fearing a re-numbering.
//! Everything else (the message text, which internal enum produced the
//! error) is explicitly *not* part of the contract.
//!
//! The internal error enums (`CoreError`, `DpError`, `EngineError`,
//! `StorageError`, and `dprov-server`'s `ServerError`/`SessionError`) all
//! map into `ApiError` via `From` impls — the first four here, the server
//! ones next to their definitions (the orphan rule puts each impl in the
//! crate that owns the source type). All of those enums are
//! `#[non_exhaustive]`, so each mapping carries a wildcard arm folding
//! unknown variants into a generic code instead of breaking at compile
//! time when a variant is added.

use dprov_core::{CoreError, StorageError};
use dprov_dp::DpError;
use dprov_engine::EngineError;

/// Stable numeric error codes, grouped by hundreds into [`ErrorKind`]
/// bands. Codes are append-only: a published code never changes meaning.
pub mod codes {
    /// A frame or message body could not be decoded.
    pub const MALFORMED_FRAME: u16 = 100;
    /// The message's protocol version byte is not supported.
    pub const UNSUPPORTED_VERSION: u16 = 101;
    /// The message is not valid in the connection's current state (e.g.
    /// a query before `Hello`/`RegisterSession`, or a second `Hello`).
    pub const UNEXPECTED_MESSAGE: u16 = 102;
    /// A frame's declared length exceeds [`crate::frame::MAX_FRAME_LEN`].
    pub const FRAME_TOO_LARGE: u16 = 103;
    /// A frame's CRC-32 check failed.
    pub const CHECKSUM_MISMATCH: u16 = 104;
    /// The connection asked for more multiplexed channels than the server
    /// allows on one socket.
    pub const CHANNEL_LIMIT: u16 = 105;

    /// No analyst with the presented name is in the roster.
    pub const UNKNOWN_ANALYST: u16 = 200;
    /// A session-resume attempt named a session owned by another analyst.
    pub const SESSION_OWNERSHIP: u16 = 201;
    /// The presented name is not in the configured updater roster, or the
    /// connection is not registered as an updater.
    pub const NOT_UPDATER: u16 = 202;

    /// The session id is not registered.
    pub const UNKNOWN_SESSION: u16 = 300;
    /// The session's heartbeat is older than its time-to-live.
    pub const SESSION_EXPIRED: u16 = 301;
    /// The request needs a registered session and the connection has none.
    pub const NO_SESSION: u16 = 302;

    /// A request argument was invalid (catch-all for the 4xx band).
    pub const INVALID_ARGUMENT: u16 = 400;
    /// An epsilon value was not strictly positive and finite.
    pub const INVALID_EPSILON: u16 = 401;
    /// A delta value was outside `(0, 1)`.
    pub const INVALID_DELTA: u16 = 402;
    /// A sensitivity value was not strictly positive and finite.
    pub const INVALID_SENSITIVITY: u16 = 403;
    /// A variance / accuracy bound was not strictly positive and finite.
    pub const INVALID_VARIANCE: u16 = 404;
    /// The requested accuracy cannot be met within the allowed range.
    pub const TRANSLATION_OUT_OF_RANGE: u16 = 405;
    /// A numerical routine failed to converge.
    pub const NO_CONVERGENCE: u16 = 406;
    /// The additive Gaussian mechanism was handed an empty budget set.
    pub const EMPTY_BUDGET_SET: u16 = 407;
    /// A referenced table does not exist.
    pub const UNKNOWN_TABLE: u16 = 420;
    /// A referenced attribute does not exist.
    pub const UNKNOWN_ATTRIBUTE: u16 = 421;
    /// A value does not belong to an attribute's domain.
    pub const VALUE_OUT_OF_DOMAIN: u16 = 422;
    /// A row had the wrong number of values for the schema.
    pub const ARITY_MISMATCH: u16 = 423;
    /// The query cannot be answered over any registered view.
    pub const NOT_ANSWERABLE: u16 = 424;
    /// A view with this name does not exist (or already exists).
    pub const UNKNOWN_VIEW: u16 = 425;
    /// The SQL text could not be parsed.
    pub const SQL_PARSE: u16 = 426;
    /// The query is malformed (e.g. SUM over a categorical attribute).
    pub const INVALID_QUERY: u16 = 427;
    /// An update's delete names a row the logical table does not hold.
    pub const UPDATE_MISSING_ROW: u16 = 428;
    /// An update batch carried no inserts and no deletes.
    pub const UPDATE_EMPTY: u16 = 429;
    /// A star-schema declaration was structurally invalid (e.g. a foreign
    /// key naming a missing table or attribute).
    pub const INVALID_STAR_SCHEMA: u16 = 430;
    /// A dimension table carried the same key value in two rows.
    pub const DUPLICATE_DIMENSION_KEY: u16 = 431;
    /// A fact row referenced a dimension key with no matching row.
    pub const FOREIGN_KEY_VIOLATION: u16 = 432;
    /// A declared workload had no templates to plan for.
    pub const WORKLOAD_EMPTY: u16 = 433;
    /// A workload template cannot be answered over any histogram view, so
    /// no catalog choice can serve it.
    pub const NOT_PLANNABLE: u16 = 434;

    /// The service is shutting down and accepts no new work.
    pub const SHUTTING_DOWN: u16 = 500;

    /// An operating-system I/O failure in the durable store.
    pub const STORAGE_IO: u16 = 600;
    /// The durable store found corrupt data.
    pub const STORAGE_CORRUPT: u16 = 601;
    /// The durable store was written by an incompatible format version.
    pub const STORAGE_UNSUPPORTED_VERSION: u16 = 602;
    /// The durable store does not match the live system configuration.
    pub const STORAGE_INCOMPATIBLE: u16 = 603;
    /// The durable recorder is unavailable (closed or crash-injected).
    pub const STORAGE_UNAVAILABLE: u16 = 604;

    /// A transport-level I/O failure.
    pub const TRANSPORT_IO: u16 = 700;
    /// The connection closed while a response was outstanding.
    pub const CONNECTION_CLOSED: u16 = 701;

    /// An unclassified server-side failure.
    pub const INTERNAL: u16 = 900;
}

/// The broad class of an [`ApiError`], derived from its code band.
///
/// Marked `#[non_exhaustive]`: new bands may be added; match with a
/// wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Framing or message-state violations (1xx).
    Protocol,
    /// Authentication / authorisation failures (2xx).
    Auth,
    /// Session lifecycle errors (3xx).
    Session,
    /// Invalid request arguments (4xx).
    InvalidRequest,
    /// The service cannot take work right now (5xx).
    Unavailable,
    /// Durable-store failures (6xx).
    Storage,
    /// Transport-level failures (7xx).
    Transport,
    /// Unclassified server-side failures (9xx and unknown bands).
    Internal,
}

impl ErrorKind {
    /// The kind implied by a stable error code's hundreds band.
    #[must_use]
    pub fn for_code(code: u16) -> Self {
        match code / 100 {
            1 => ErrorKind::Protocol,
            2 => ErrorKind::Auth,
            3 => ErrorKind::Session,
            4 => ErrorKind::InvalidRequest,
            5 => ErrorKind::Unavailable,
            6 => ErrorKind::Storage,
            7 => ErrorKind::Transport,
            _ => ErrorKind::Internal,
        }
    }

    /// Stable wire tag for the kind.
    #[must_use]
    pub(crate) fn wire_tag(self) -> u8 {
        match self {
            ErrorKind::Protocol => 0,
            ErrorKind::Auth => 1,
            ErrorKind::Session => 2,
            ErrorKind::InvalidRequest => 3,
            ErrorKind::Unavailable => 4,
            ErrorKind::Storage => 5,
            ErrorKind::Transport => 6,
            ErrorKind::Internal => 7,
        }
    }

    /// Inverse of [`ErrorKind::wire_tag`]; unknown tags (a newer peer's
    /// kind) fold into [`ErrorKind::Internal`] — the code still carries
    /// the precise class.
    #[must_use]
    pub(crate) fn from_wire_tag(tag: u8) -> Self {
        match tag {
            0 => ErrorKind::Protocol,
            1 => ErrorKind::Auth,
            2 => ErrorKind::Session,
            3 => ErrorKind::InvalidRequest,
            4 => ErrorKind::Unavailable,
            5 => ErrorKind::Storage,
            6 => ErrorKind::Transport,
            _ => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Auth => "auth",
            ErrorKind::Session => "session",
            ErrorKind::InvalidRequest => "invalid-request",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Storage => "storage",
            ErrorKind::Transport => "transport",
            ErrorKind::Internal => "internal",
        };
        write!(f, "{name}")
    }
}

/// True when a client may reasonably retry the failed request (possibly
/// over a fresh connection) without changing it.
#[must_use]
pub fn code_is_retryable(code: u16) -> bool {
    matches!(
        code,
        codes::SHUTTING_DOWN
            | codes::STORAGE_IO
            | codes::STORAGE_UNAVAILABLE
            | codes::TRANSPORT_IO
            | codes::CONNECTION_CLOSED
    )
}

/// The one error type the analyst-facing API surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Stable numeric code (see [`codes`]); the only machine contract.
    pub code: u16,
    /// Broad class, derived from the code band.
    pub kind: ErrorKind,
    /// Human-readable description. Not part of the stable contract.
    pub message: String,
    /// Whether retrying the same request may succeed.
    pub retryable: bool,
}

impl ApiError {
    /// An error with `code`, deriving kind and retryability from it.
    #[must_use]
    pub fn new(code: u16, message: impl Into<String>) -> Self {
        ApiError {
            code,
            kind: ErrorKind::for_code(code),
            message: message.into(),
            retryable: code_is_retryable(code),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} {}{}] {}",
            self.code,
            self.kind,
            if self.retryable { ", retryable" } else { "" },
            self.message
        )
    }
}

impl std::error::Error for ApiError {}

impl From<DpError> for ApiError {
    fn from(e: DpError) -> Self {
        let code = match &e {
            DpError::InvalidEpsilon(_) => codes::INVALID_EPSILON,
            DpError::InvalidDelta(_) => codes::INVALID_DELTA,
            DpError::InvalidSensitivity(_) => codes::INVALID_SENSITIVITY,
            DpError::InvalidVariance(_) => codes::INVALID_VARIANCE,
            DpError::TranslationOutOfRange { .. } => codes::TRANSLATION_OUT_OF_RANGE,
            DpError::NoConvergence(_) => codes::NO_CONVERGENCE,
            DpError::EmptyBudgetSet => codes::EMPTY_BUDGET_SET,
            _ => codes::INVALID_ARGUMENT,
        };
        ApiError::new(code, e.to_string())
    }
}

impl From<EngineError> for ApiError {
    fn from(e: EngineError) -> Self {
        let code = match &e {
            EngineError::UnknownTable(_) => codes::UNKNOWN_TABLE,
            EngineError::UnknownAttribute(_) => codes::UNKNOWN_ATTRIBUTE,
            EngineError::ValueOutOfDomain { .. } => codes::VALUE_OUT_OF_DOMAIN,
            EngineError::ArityMismatch { .. } => codes::ARITY_MISMATCH,
            EngineError::NotAnswerable(_) => codes::NOT_ANSWERABLE,
            EngineError::UnknownView(_) => codes::UNKNOWN_VIEW,
            EngineError::SqlParse(_) => codes::SQL_PARSE,
            EngineError::InvalidQuery(_) => codes::INVALID_QUERY,
            EngineError::InvalidStarSchema(_) => codes::INVALID_STAR_SCHEMA,
            EngineError::DuplicateDimensionKey { .. } => codes::DUPLICATE_DIMENSION_KEY,
            EngineError::ForeignKeyViolation { .. } => codes::FOREIGN_KEY_VIOLATION,
            _ => codes::INVALID_ARGUMENT,
        };
        ApiError::new(code, e.to_string())
    }
}

impl From<dprov_plan::PlanError> for ApiError {
    fn from(e: dprov_plan::PlanError) -> Self {
        let code = match &e {
            dprov_plan::PlanError::Engine(engine) => {
                return ApiError {
                    message: e.to_string(),
                    ..ApiError::from(engine.clone())
                }
            }
            dprov_plan::PlanError::EmptyWorkload => codes::WORKLOAD_EMPTY,
            dprov_plan::PlanError::NotPlannable { .. } => codes::NOT_PLANNABLE,
            _ => codes::INVALID_ARGUMENT,
        };
        ApiError::new(code, e.to_string())
    }
}

impl From<StorageError> for ApiError {
    fn from(e: StorageError) -> Self {
        let code = match &e {
            StorageError::Io(_) => codes::STORAGE_IO,
            StorageError::Corrupt { .. } => codes::STORAGE_CORRUPT,
            StorageError::UnsupportedVersion { .. } => codes::STORAGE_UNSUPPORTED_VERSION,
            StorageError::IncompatibleState(_) => codes::STORAGE_INCOMPATIBLE,
            StorageError::Unavailable(_) => codes::STORAGE_UNAVAILABLE,
            _ => codes::INTERNAL,
        };
        ApiError::new(code, e.to_string())
    }
}

impl From<dprov_delta::DeltaError> for ApiError {
    fn from(e: dprov_delta::DeltaError) -> Self {
        let code = match &e {
            dprov_delta::DeltaError::Engine(engine) => {
                return ApiError {
                    message: e.to_string(),
                    ..ApiError::from(engine.clone())
                }
            }
            dprov_delta::DeltaError::MissingRow { .. } => codes::UPDATE_MISSING_ROW,
            dprov_delta::DeltaError::EmptyBatch => codes::UPDATE_EMPTY,
            _ => codes::INVALID_ARGUMENT,
        };
        ApiError::new(code, e.to_string())
    }
}

impl From<CoreError> for ApiError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Dp(dp) => dp.into(),
            CoreError::Engine(engine) => engine.into(),
            CoreError::Storage(storage) => storage.into(),
            CoreError::Delta(delta) => delta.into(),
            CoreError::UnknownAnalyst(a) => {
                ApiError::new(codes::UNKNOWN_ANALYST, format!("unknown analyst: {a}"))
            }
            CoreError::InvalidPrivilege(_)
            | CoreError::InvalidConfig(_)
            | CoreError::InvalidCorruptionGraph(_) => {
                ApiError::new(codes::INVALID_ARGUMENT, e.to_string())
            }
            _ => ApiError::new(codes::INTERNAL, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_follow_code_bands() {
        assert_eq!(
            ErrorKind::for_code(codes::MALFORMED_FRAME),
            ErrorKind::Protocol
        );
        assert_eq!(ErrorKind::for_code(codes::UNKNOWN_ANALYST), ErrorKind::Auth);
        assert_eq!(
            ErrorKind::for_code(codes::SESSION_EXPIRED),
            ErrorKind::Session
        );
        assert_eq!(
            ErrorKind::for_code(codes::INVALID_VARIANCE),
            ErrorKind::InvalidRequest
        );
        assert_eq!(
            ErrorKind::for_code(codes::SHUTTING_DOWN),
            ErrorKind::Unavailable
        );
        assert_eq!(
            ErrorKind::for_code(codes::STORAGE_CORRUPT),
            ErrorKind::Storage
        );
        assert_eq!(
            ErrorKind::for_code(codes::TRANSPORT_IO),
            ErrorKind::Transport
        );
        assert_eq!(ErrorKind::for_code(codes::INTERNAL), ErrorKind::Internal);
        assert_eq!(ErrorKind::for_code(8_42), ErrorKind::Internal);
    }

    #[test]
    fn retryability_is_code_derived() {
        assert!(ApiError::new(codes::SHUTTING_DOWN, "x").retryable);
        assert!(ApiError::new(codes::CONNECTION_CLOSED, "x").retryable);
        assert!(!ApiError::new(codes::UNKNOWN_SESSION, "x").retryable);
        assert!(!ApiError::new(codes::INVALID_VARIANCE, "x").retryable);
    }

    #[test]
    fn internal_enums_map_to_stable_codes() {
        let e: ApiError = DpError::InvalidEpsilon(-1.0).into();
        assert_eq!(e.code, codes::INVALID_EPSILON);
        let e: ApiError = EngineError::UnknownTable("t".into()).into();
        assert_eq!(e.code, codes::UNKNOWN_TABLE);
        let e: ApiError = StorageError::Unavailable("closed".into()).into();
        assert_eq!((e.code, e.retryable), (codes::STORAGE_UNAVAILABLE, true));
        let e: ApiError = CoreError::UnknownAnalyst(dprov_core::analyst::AnalystId(3)).into();
        assert_eq!((e.code, e.kind), (codes::UNKNOWN_ANALYST, ErrorKind::Auth));
        // Nested storage errors keep their storage code through CoreError.
        let e: ApiError = CoreError::Storage(StorageError::Io("disk".into())).into();
        assert_eq!(e.code, codes::STORAGE_IO);
    }

    #[test]
    fn display_carries_code_kind_and_message() {
        let e = ApiError::new(codes::SESSION_EXPIRED, "session S3 expired");
        assert_eq!(e.to_string(), "[301 session] session S3 expired");
        let e = ApiError::new(codes::SHUTTING_DOWN, "bye");
        assert!(e.to_string().contains("retryable"));
    }
}
