//! Client-side connection multiplexing: many analyst sessions over one
//! socket.
//!
//! [`MuxConnection`] wraps any established [`Connection`] and hands out
//! lightweight **channels** — each a virtual [`Connection`] that tunnels
//! its payloads through [`Request::Mux`] / [`Response::MuxReply`] frames
//! (protocol v3). A channel behaves exactly like a dedicated socket from
//! [`crate::client::DProvClient`]'s point of view: it performs its own
//! inner `Hello`, registers (or [`DProvClient::resume`]s) its own session,
//! and pipelines its own requests, so per-session resume works unchanged
//! on a shared socket.
//!
//! Demultiplexing uses a leader/follower scheme with no dedicated reader
//! thread: whichever channel blocks on `recv` first becomes the *leader*
//! and reads the shared socket; frames for other channels are stashed
//! under their channel id and the waiters are notified. When the leader's
//! own frame arrives it hands leadership to any still-blocked follower.
//! A transport error or peer close is terminal for every channel at once.
//!
//! [`DProvClient`]: crate::client::DProvClient
//! [`DProvClient::resume`]: crate::client::DProvClient::resume

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{codes, ApiError};
use crate::protocol::{decode_response, encode_request, Request, Response, PROTOCOL_VERSION};
use crate::transport::{Connection, FrameSink, FrameSource};

/// Multiplexing needs the v3 tags on both sides.
const MUX_MIN_VERSION: u8 = 3;

struct RouteState {
    /// Undelivered inner payloads per channel.
    stashes: HashMap<u64, VecDeque<Vec<u8>>>,
    /// Channel ids currently handed out (guards against aliasing).
    active: HashSet<u64>,
    /// True while some channel's `recv` owns the shared source.
    pumping: bool,
    /// Terminal transport error, fanned out to every channel.
    dead: Option<ApiError>,
    /// The peer closed the socket cleanly.
    closed: bool,
}

struct MuxShared {
    sink: Mutex<Box<dyn FrameSink>>,
    source: Mutex<Box<dyn FrameSource>>,
    state: Mutex<RouteState>,
    wakeup: Condvar,
    next_outer_id: AtomicU64,
    next_channel: AtomicU64,
}

/// A shared socket carrying many independent protocol channels.
///
/// Cloning is cheap (an `Arc` bump); clones hand out channels over the
/// same underlying connection.
#[derive(Clone)]
pub struct MuxConnection {
    shared: Arc<MuxShared>,
}

impl std::fmt::Debug for MuxConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxConnection").finish_non_exhaustive()
    }
}

impl MuxConnection {
    /// Performs the **outer** `Hello` on `conn` and turns it into a
    /// multiplexed connection. Fails if the server negotiates a version
    /// below the multiplexing extension (v3).
    pub fn establish(mut conn: Connection, client_name: &str) -> Result<Self, ApiError> {
        conn.send(encode_request(
            0,
            &Request::Hello {
                max_version: PROTOCOL_VERSION,
                client_name: client_name.to_owned(),
            },
        ))?;
        let payload = conn.recv()?.ok_or_else(|| {
            ApiError::new(codes::CONNECTION_CLOSED, "peer closed during mux handshake")
        })?;
        match decode_response(&payload)?.1 {
            Response::HelloAck { version, .. } if version >= MUX_MIN_VERSION => {}
            Response::HelloAck { version, .. } => {
                return Err(ApiError::new(
                    codes::UNSUPPORTED_VERSION,
                    format!(
                        "server negotiated protocol v{version}; multiplexing needs \
                         v{MUX_MIN_VERSION}"
                    ),
                ));
            }
            Response::Error(e) => return Err(e),
            other => {
                return Err(ApiError::new(
                    codes::UNEXPECTED_MESSAGE,
                    format!("unexpected mux handshake response: {other:?}"),
                ));
            }
        }
        let (sink, source) = conn.split();
        Ok(MuxConnection {
            shared: Arc::new(MuxShared {
                sink: Mutex::new(sink),
                source: Mutex::new(source),
                state: Mutex::new(RouteState {
                    stashes: HashMap::new(),
                    active: HashSet::new(),
                    pumping: false,
                    dead: None,
                    closed: false,
                }),
                wakeup: Condvar::new(),
                next_outer_id: AtomicU64::new(1),
                next_channel: AtomicU64::new(1),
            }),
        })
    }

    /// Connects over TCP and performs the outer handshake.
    pub fn connect_tcp(
        addr: impl std::net::ToSocketAddrs,
        client_name: &str,
    ) -> Result<Self, ApiError> {
        Self::establish(Connection::connect_tcp(addr)?, client_name)
    }

    /// Opens the channel with a caller-chosen id. The id must not be in
    /// use on this connection. The returned [`Connection`] is virtual:
    /// hand it to [`crate::client::DProvClient::connect`] like a socket.
    pub fn channel(&self, id: u64) -> Result<Connection, ApiError> {
        let mut state = lock_unpoisoned(&self.shared.state);
        if !state.active.insert(id) {
            return Err(ApiError::new(
                codes::INVALID_ARGUMENT,
                format!("mux channel {id} is already open on this connection"),
            ));
        }
        state.stashes.entry(id).or_default();
        drop(state);
        Ok(Connection::from_halves(
            Box::new(ChannelSink {
                shared: Arc::clone(&self.shared),
                channel: id,
            }),
            Box::new(ChannelSource {
                shared: Arc::clone(&self.shared),
                channel: id,
            }),
        ))
    }

    /// Opens a channel under the next unused auto-assigned id.
    pub fn open_channel(&self) -> Result<(u64, Connection), ApiError> {
        loop {
            let id = self.shared.next_channel.fetch_add(1, Ordering::Relaxed);
            match self.channel(id) {
                Ok(conn) => return Ok((id, conn)),
                Err(e) if e.code == codes::INVALID_ARGUMENT => {} // caller took it manually
                Err(e) => return Err(e),
            }
        }
    }
}

struct ChannelSink {
    shared: Arc<MuxShared>,
    channel: u64,
}

impl FrameSink for ChannelSink {
    fn send(&mut self, payload: Vec<u8>) -> Result<(), ApiError> {
        let outer_id = self.shared.next_outer_id.fetch_add(1, Ordering::Relaxed);
        let wrapped = encode_request(
            outer_id,
            &Request::Mux {
                channel: self.channel,
                payload,
            },
        );
        lock_unpoisoned(&self.shared.sink).send(wrapped)
    }
}

struct ChannelSource {
    shared: Arc<MuxShared>,
    channel: u64,
}

impl FrameSource for ChannelSource {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ApiError> {
        let shared = &*self.shared;
        let mut state = lock_unpoisoned(&shared.state);
        loop {
            if let Some(payload) = state
                .stashes
                .get_mut(&self.channel)
                .and_then(VecDeque::pop_front)
            {
                return Ok(Some(payload));
            }
            if let Some(e) = &state.dead {
                return Err(e.clone());
            }
            if state.closed {
                return Ok(None);
            }
            if state.pumping {
                // Another channel owns the socket; it will notify when a
                // frame lands or the stream dies.
                state = shared
                    .wakeup
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            // Become the leader: read the shared source without holding
            // the routing lock, then publish whatever arrived.
            state.pumping = true;
            drop(state);
            let received = lock_unpoisoned(&shared.source).recv();
            state = lock_unpoisoned(&shared.state);
            state.pumping = false;
            match received {
                Ok(Some(outer)) => match decode_response(&outer) {
                    Ok((_, Response::MuxReply { channel, payload })) => {
                        // Frames for closed channels are dropped on the
                        // floor (their reader is gone).
                        if let Some(stash) = state.stashes.get_mut(&channel) {
                            stash.push_back(payload);
                        }
                    }
                    Ok((_, Response::Error(e))) => state.dead = Some(e),
                    Ok((_, other)) => {
                        state.dead = Some(ApiError::new(
                            codes::UNEXPECTED_MESSAGE,
                            format!("non-multiplexed response on a mux connection: {other:?}"),
                        ));
                    }
                    Err(e) => state.dead = Some(e),
                },
                Ok(None) => state.closed = true,
                Err(e) => state.dead = Some(e),
            }
            shared.wakeup.notify_all();
        }
    }
}

impl Drop for ChannelSource {
    fn drop(&mut self) {
        let mut state = lock_unpoisoned(&self.shared.state);
        state.active.remove(&self.channel);
        state.stashes.remove(&self.channel);
    }
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
