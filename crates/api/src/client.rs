//! The blocking analyst client.
//!
//! [`DProvClient`] drives one connection — one analyst session — through
//! the versioned protocol:
//!
//! * [`DProvClient::query`] is the synchronous path: submit, block, get
//!   the outcome;
//! * [`DProvClient::submit`] / [`DProvClient::poll`] is the **pipelined**
//!   path: enqueue any number of queries (each gets a [`RequestId`]),
//!   then collect outcomes in any order. The service executes one
//!   session's queries in submission order (session lanes), but control
//!   responses (heartbeats, budget reports) overtake long-running query
//!   work, so responses can arrive out of request order — the client
//!   stashes whatever it is not currently waiting for;
//! * [`DProvClient::budget`] is the analyst's remaining-budget panel;
//! * [`DProvClient::resume`] re-attaches to a live session after a
//!   reconnect (including across a service restart recovered by
//!   `start_durable`).
//!
//! The client is deliberately transport-blind: hand it any
//! [`Connection`] — in-process channel pair or TCP.

use std::collections::{HashMap, HashSet};

use dprov_core::processor::{GroupedOutcome, GroupedRequest, QueryOutcome, QueryRequest};
use dprov_core::workload::DeclaredWorkload;

use crate::error::{codes, ApiError};
use crate::protocol::{
    decode_response, encode_request, BudgetReport, Request, Response, MIN_SUPPORTED_VERSION,
    PROTOCOL_VERSION,
};
use crate::transport::Connection;

/// Handle to one in-flight pipelined query (see [`DProvClient::submit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

/// What one epoch seal did, as reported over the wire (see
/// [`DProvClient::seal_epoch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSealReport {
    /// The sealed epoch's number.
    pub epoch: u64,
    /// Update batches the epoch applied.
    pub batches: u64,
    /// Delta rows (inserts + deletes) the epoch applied.
    pub rows: u64,
    /// Views whose exact histograms were patched.
    pub views_patched: u64,
    /// Cached noisy synopses invalidated under the epoch policy.
    pub synopses_invalidated: u64,
}

/// The advisory plan returned by [`DProvClient::declare_workload`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlanReport {
    /// Views the plan would materialise.
    pub views: u64,
    /// Estimated per-analyst budget the planned catalog costs.
    pub est_epsilon: f64,
    /// Estimated up-front materialisation work in cell-visits.
    pub est_materialise_cells: f64,
    /// The human-readable plan report (views, routing, reasons).
    pub report: String,
}

/// The session a client is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionDescriptor {
    /// The session id (quote to [`DProvClient::resume`] after reconnect).
    pub session: u64,
    /// The authenticated analyst's dense roster id.
    pub analyst: u64,
    /// The analyst's privilege level.
    pub privilege: u8,
    /// True when the session was resumed rather than freshly opened.
    pub resumed: bool,
}

/// A blocking analyst client over any [`Connection`].
pub struct DProvClient {
    conn: Connection,
    next_id: u64,
    /// Ids sent but not yet resolved (their response may still be on the
    /// wire). A response moves its id from here into `stash` if something
    /// else is being awaited.
    pending: HashSet<u64>,
    stash: HashMap<u64, Response>,
    session: Option<SessionDescriptor>,
    version: u8,
}

impl std::fmt::Debug for DProvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DProvClient")
            .field("version", &self.version)
            .field("session", &self.session)
            .field("pending", &self.stash.len())
            .finish_non_exhaustive()
    }
}

impl DProvClient {
    /// Opens the conversation over `conn` (sends `Hello`, negotiates the
    /// protocol version).
    pub fn connect(conn: Connection, client_name: &str) -> Result<Self, ApiError> {
        let mut client = DProvClient {
            conn,
            next_id: 1,
            pending: HashSet::new(),
            stash: HashMap::new(),
            session: None,
            version: PROTOCOL_VERSION,
        };
        let response = client.call(&Request::Hello {
            max_version: PROTOCOL_VERSION,
            client_name: client_name.to_owned(),
        })?;
        match response {
            Response::HelloAck { version, .. } => {
                // The server answers min(client, server); accept anything
                // this build still understands.
                if !(MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&version) {
                    return Err(ApiError::new(
                        codes::UNSUPPORTED_VERSION,
                        format!(
                            "server negotiated version {version}, outside this client's                              supported {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION}"
                        ),
                    ));
                }
                client.version = version;
                Ok(client)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Connects over TCP and performs the `Hello` handshake.
    pub fn connect_tcp(
        addr: impl std::net::ToSocketAddrs,
        client_name: &str,
    ) -> Result<Self, ApiError> {
        Self::connect(Connection::connect_tcp(addr)?, client_name)
    }

    /// Authenticates as `analyst_name` (a roster name) and opens a fresh
    /// session.
    pub fn register(&mut self, analyst_name: &str) -> Result<SessionDescriptor, ApiError> {
        self.register_inner(analyst_name, None)
    }

    /// Re-attaches to an existing session after a reconnect. The service
    /// verifies the session belongs to `analyst_name`; budgets and the
    /// session's deterministic noise stream continue where they left off.
    pub fn resume(
        &mut self,
        analyst_name: &str,
        session: u64,
    ) -> Result<SessionDescriptor, ApiError> {
        self.register_inner(analyst_name, Some(session))
    }

    fn register_inner(
        &mut self,
        analyst_name: &str,
        resume: Option<u64>,
    ) -> Result<SessionDescriptor, ApiError> {
        let response = self.call(&Request::RegisterSession {
            analyst_name: analyst_name.to_owned(),
            resume,
        })?;
        match response {
            Response::SessionRegistered {
                session,
                analyst,
                privilege,
                resumed,
            } => {
                let descriptor = SessionDescriptor {
                    session,
                    analyst,
                    privilege,
                    resumed,
                };
                self.session = Some(descriptor);
                Ok(descriptor)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// The attached session, once [`DProvClient::register`] /
    /// [`DProvClient::resume`] succeeded.
    #[must_use]
    pub fn session(&self) -> Option<&SessionDescriptor> {
        self.session.as_ref()
    }

    /// Submits a query without waiting for its outcome. Returns a
    /// [`RequestId`] to [`DProvClient::poll`] later; any number of
    /// submissions may be in flight on the connection.
    pub fn submit(&mut self, request: &QueryRequest) -> Result<RequestId, ApiError> {
        let id = self.send(&Request::SubmitQuery(request.clone()))?;
        Ok(RequestId(id))
    }

    /// Blocks until the outcome of a pipelined submission arrives.
    /// Responses for *other* in-flight requests received meanwhile are
    /// stashed for their own `poll` calls.
    pub fn poll(&mut self, id: RequestId) -> Result<QueryOutcome, ApiError> {
        match self.wait_for(id.0)? {
            Response::QueryAnswer(outcome) => Ok(outcome),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a query and blocks for its outcome (the synchronous path).
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryOutcome, ApiError> {
        let id = self.submit(request)?;
        self.poll(id)
    }

    /// Submits a GROUP BY query without waiting for its outcome (the
    /// pipelined path); collect it with [`DProvClient::poll_grouped`].
    pub fn submit_group_by(&mut self, request: &GroupedRequest) -> Result<RequestId, ApiError> {
        let id = self.send(&Request::GroupByQuery(request.clone()))?;
        Ok(RequestId(id))
    }

    /// Blocks until the grouped outcome of a pipelined
    /// [`DProvClient::submit_group_by`] arrives.
    pub fn poll_grouped(&mut self, id: RequestId) -> Result<GroupedOutcome, ApiError> {
        match self.wait_for(id.0)? {
            Response::GroupedAnswer(outcome) => Ok(outcome),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a GROUP BY query and blocks for its outcome: one DP answer
    /// per group in the canonical group-enumeration order, each cell with
    /// its own accept/reject outcome.
    pub fn group_by(&mut self, request: &GroupedRequest) -> Result<GroupedOutcome, ApiError> {
        let id = self.submit_group_by(request)?;
        self.poll_grouped(id)
    }

    /// Declares the session's expected workload and returns the service's
    /// advisory view/synopsis plan. Declaring spends no budget and does
    /// not constrain later submissions.
    pub fn declare_workload(
        &mut self,
        workload: &DeclaredWorkload,
    ) -> Result<WorkloadPlanReport, ApiError> {
        match self.call(&Request::DeclareWorkload(workload.clone()))? {
            Response::WorkloadPlan {
                views,
                est_epsilon,
                est_materialise_cells,
                report,
            } => Ok(WorkloadPlanReport {
                views,
                est_epsilon,
                est_materialise_cells,
                report,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// The session's budget panel: constraint, consumed, remaining, and
    /// per-session counters.
    pub fn budget(&mut self) -> Result<BudgetReport, ApiError> {
        match self.call(&Request::BudgetStatus)? {
            Response::BudgetReport(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Refreshes the session's heartbeat (keeps it from expiring while no
    /// queries are being submitted).
    pub fn heartbeat(&mut self) -> Result<(), ApiError> {
        match self.call(&Request::Heartbeat)? {
            Response::HeartbeatAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Closes the session and the conversation.
    pub fn close(mut self) -> Result<(), ApiError> {
        match self.call(&Request::CloseSession)? {
            Response::SessionClosed => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Authenticates this connection as a data updater (a role distinct
    /// from analysts; the name is checked against the service's configured
    /// updater roster). Required before [`DProvClient::apply_update`] /
    /// [`DProvClient::seal_epoch`].
    pub fn register_updater(&mut self, updater_name: &str) -> Result<(), ApiError> {
        match self.call(&Request::RegisterUpdater {
            updater_name: updater_name.to_owned(),
        })? {
            Response::UpdaterRegistered => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits one insert/delete batch. The batch is validated and made
    /// durable before the acknowledgement; it takes effect at the next
    /// [`DProvClient::seal_epoch`]. Returns `(batch_seq, pending)`.
    pub fn apply_update(
        &mut self,
        batch: &dprov_delta::UpdateBatch,
    ) -> Result<(u64, u64), ApiError> {
        match self.call(&Request::ApplyUpdate(batch.clone()))? {
            Response::UpdateAccepted { batch_seq, pending } => Ok((batch_seq, pending)),
            other => Err(unexpected(&other)),
        }
    }

    /// Seals every pending update batch into the next epoch and returns
    /// the sealed report `(epoch, batches, rows, views_patched,
    /// synopses_invalidated)`.
    pub fn seal_epoch(&mut self) -> Result<EpochSealReport, ApiError> {
        match self.call(&Request::SealEpoch)? {
            Response::EpochSealed {
                epoch,
                batches,
                rows,
                views_patched,
                synopses_invalidated,
            } => Ok(EpochSealReport {
                epoch,
                batches,
                rows,
                views_patched,
                synopses_invalidated,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the service's observability snapshot: stage-latency
    /// histograms (p50/p95/p99/max), event counters, queue/batch
    /// telemetry and per-(analyst, view) remaining-budget gauges. Works
    /// on any connection after the `Hello` handshake — no session
    /// required, so a dashboard can poll without consuming an analyst
    /// slot.
    pub fn metrics(&mut self) -> Result<dprov_obs::MetricsSnapshot, ApiError> {
        match self.call(&Request::MetricsSnapshot)? {
            Response::MetricsReport(snapshot) => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends a request and returns its id.
    fn send(&mut self, request: &Request) -> Result<u64, ApiError> {
        let id = self.next_id;
        self.next_id += 1;
        self.conn.send(encode_request(id, request))?;
        self.pending.insert(id);
        Ok(id)
    }

    /// Sends a request and blocks for *its* response.
    fn call(&mut self, request: &Request) -> Result<Response, ApiError> {
        let id = self.send(request)?;
        self.wait_for(id)
    }

    /// Blocks until the response for `id` arrives, stashing interleaved
    /// responses to other request ids. An `Error` response surfaces as
    /// `Err` with the transmitted taxonomy.
    fn wait_for(&mut self, id: u64) -> Result<Response, ApiError> {
        if let Some(response) = self.stash.remove(&id) {
            return unwrap_error(response);
        }
        // An id that is neither stashed nor in flight will never get a
        // response — fail fast instead of blocking on the wire forever
        // (e.g. polling the same RequestId twice).
        if !self.pending.contains(&id) {
            return Err(ApiError::new(
                codes::INVALID_ARGUMENT,
                format!("request id {id} is unknown or was already consumed"),
            ));
        }
        loop {
            let payload = self.conn.recv()?.ok_or_else(|| {
                ApiError::new(
                    codes::CONNECTION_CLOSED,
                    "connection closed with a response outstanding",
                )
            })?;
            let (rid, response) = decode_response(&payload)?;
            self.pending.remove(&rid);
            if rid == id {
                return unwrap_error(response);
            }
            self.stash.insert(rid, response);
        }
    }
}

fn unwrap_error(response: Response) -> Result<Response, ApiError> {
    match response {
        Response::Error(e) => Err(e),
        other => Ok(other),
    }
}

fn unexpected(response: &Response) -> ApiError {
    ApiError::new(
        codes::UNEXPECTED_MESSAGE,
        format!("unexpected response type: {response:?}"),
    )
}
