//! Length-prefixed, CRC-checked framing for byte-stream transports.
//!
//! Message payloads travelling over an octet stream (TCP) are wrapped in
//! frames following the same discipline as `dprov-storage`'s write-ahead
//! ledger:
//!
//! | field | size | meaning                        |
//! |-------|------|--------------------------------|
//! | `len` | 4 B  | payload length, little-endian  |
//! | `crc` | 4 B  | CRC-32 (IEEE) of the payload   |
//! | body  | len  | the message payload            |
//!
//! A reader that observes a bad length or checksum gets a typed
//! [`ApiError`] and must drop the connection — after a framing error the
//! stream offset can no longer be trusted. The in-process channel
//! transport skips this layer entirely: payloads move as owned buffers, so
//! there is nothing to tear.

use std::io::{ErrorKind as IoErrorKind, Read, Write};

use dprov_storage::codec::crc32;

use crate::error::{codes, ApiError};

/// Upper bound on a frame's payload length. Far above any legitimate
/// message (queries are small); exists so a corrupt or hostile length
/// prefix cannot drive an unbounded allocation.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Wraps a payload into a complete frame (header + body).
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w` (no flush; the caller owns buffering policy).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ApiError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(ApiError::new(
            codes::FRAME_TOO_LARGE,
            format!("refusing to send a {}-byte frame", payload.len()),
        ));
    }
    w.write_all(&frame(payload)).map_err(io_error)
}

/// Reads one frame from `r`, verifying length and checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary); EOF anywhere *inside* a frame is a truncation and surfaces
/// as [`codes::CONNECTION_CLOSED`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ApiError> {
    let mut header = [0u8; 8];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial(read) => {
            return Err(ApiError::new(
                codes::CONNECTION_CLOSED,
                format!("stream ended {read} bytes into a frame header"),
            ));
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice")) as usize;
    let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(ApiError::new(
            codes::FRAME_TOO_LARGE,
            format!("frame header declares {len} bytes (limit {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Partial(_) => {
            return Err(ApiError::new(
                codes::CONNECTION_CLOSED,
                format!("stream ended inside a {len}-byte frame body"),
            ));
        }
    }
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(ApiError::new(
            codes::CHECKSUM_MISMATCH,
            format!("frame checksum mismatch: header says {expected_crc:#010x}, body hashes to {actual_crc:#010x}"),
        ));
    }
    Ok(Some(payload))
}

/// Incremental frame decoder for readiness-based (non-blocking) readers.
///
/// Where [`read_frame`] owns the stream and blocks, `FrameDecoder` is fed
/// whatever bytes the socket had (`feed`) and hands back complete payloads
/// as they materialise (`next_frame`). Validation matches `read_frame`
/// exactly: a declared length above [`MAX_FRAME_LEN`] or a CRC mismatch is
/// a typed error, after which the stream offset is untrustworthy and the
/// connection must be dropped. The oversize check fires as soon as the
/// 8-byte header is visible — a hostile length prefix never drives an
/// allocation.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so a burst of small
    /// frames doesn't memmove the tail once per frame.
    pos: usize,
}

/// Compact the consumed prefix away once it crosses this many bytes.
const DECODER_COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= DECODER_COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete payload, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ApiError> {
        let avail = self.buf.len() - self.pos;
        if avail < 8 {
            return Ok(None);
        }
        let header = &self.buf[self.pos..self.pos + 8];
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice")) as usize;
        let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
        if len > MAX_FRAME_LEN {
            return Err(ApiError::new(
                codes::FRAME_TOO_LARGE,
                format!("frame header declares {len} bytes (limit {MAX_FRAME_LEN})"),
            ));
        }
        if avail < 8 + len {
            return Ok(None);
        }
        let payload = self.buf[self.pos + 8..self.pos + 8 + len].to_vec();
        let actual_crc = crc32(&payload);
        if actual_crc != expected_crc {
            return Err(ApiError::new(
                codes::CHECKSUM_MISMATCH,
                format!("frame checksum mismatch: header says {expected_crc:#010x}, body hashes to {actual_crc:#010x}"),
            ));
        }
        self.pos += 8 + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    #[must_use]
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the buffer ends mid-frame — an EOF here is a truncation,
    /// not a clean close.
    #[must_use]
    pub fn has_partial(&self) -> bool {
        self.buffered_len() > 0
    }
}

enum ReadOutcome {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after this many bytes.
    Partial(usize),
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, ApiError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial(filled)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(e) => return Err(io_error(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

pub(crate) fn io_error(e: std::io::Error) -> ApiError {
    ApiError::new(codes::TRANSPORT_IO, format!("transport i/o error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let payload = b"hello analyst".to_vec();
        let mut stream = Cursor::new(frame(&payload));
        assert_eq!(read_frame(&mut stream).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut stream).unwrap(), None);
    }

    #[test]
    fn empty_stream_is_a_clean_eof() {
        let mut stream = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut stream).unwrap(), None);
    }

    #[test]
    fn truncated_header_and_body_are_typed_errors() {
        let full = frame(b"payload");
        for cut in [1, 7, 9, full.len() - 1] {
            let mut stream = Cursor::new(full[..cut].to_vec());
            let err = read_frame(&mut stream).unwrap_err();
            assert_eq!(err.code, codes::CONNECTION_CLOSED, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut bytes = frame(b"sensitive payload");
        for pos in 8..bytes.len() {
            bytes[pos] ^= 0x40;
            let mut stream = Cursor::new(bytes.clone());
            let err = read_frame(&mut stream).unwrap_err();
            assert_eq!(err.code, codes::CHECKSUM_MISMATCH, "flip at {pos}");
            bytes[pos] ^= 0x40;
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_without_allocating() {
        let mut bytes = frame(b"x");
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut stream = Cursor::new(bytes);
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.code, codes::FRAME_TOO_LARGE);
    }

    #[test]
    fn decoder_handles_byte_at_a_time_delivery() {
        let payloads: Vec<Vec<u8>> = vec![b"one".to_vec(), vec![], b"three".to_vec()];
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&frame(p));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in wire {
            dec.feed(&[byte]);
            while let Some(p) = dec.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, payloads);
        assert!(!dec.has_partial());
    }

    #[test]
    fn decoder_pops_multiple_frames_from_one_feed() {
        let mut wire = frame(b"a");
        wire.extend_from_slice(&frame(b"bb"));
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame().unwrap(), Some(b"a".to_vec()));
        assert_eq!(dec.next_frame().unwrap(), Some(b"bb".to_vec()));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn decoder_rejects_oversized_header_before_body_arrives() {
        let mut dec = FrameDecoder::new();
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        dec.feed(&header);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.code, codes::FRAME_TOO_LARGE);
    }

    #[test]
    fn decoder_flags_checksum_mismatch() {
        let mut wire = frame(b"sensitive");
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.code, codes::CHECKSUM_MISMATCH);
    }

    #[test]
    fn decoder_tracks_partial_state() {
        let wire = frame(b"payload");
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..5]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.has_partial());
        dec.feed(&wire[5..]);
        assert_eq!(dec.next_frame().unwrap(), Some(b"payload".to_vec()));
        assert!(!dec.has_partial());
    }

    #[test]
    fn decoder_matches_blocking_reader_over_many_frames() {
        // Same wire bytes through both paths; compaction must not skew
        // offsets even when thousands of frames pass through one decoder.
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for i in 0..5000u32 {
            let p = i.to_le_bytes().repeat((i % 7 + 1) as usize);
            wire.extend_from_slice(&frame(&p));
            expected.push(p);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(113) {
            dec.feed(chunk);
            while let Some(p) = dec.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, expected);
        let mut stream = Cursor::new(wire);
        for p in &expected {
            assert_eq!(read_frame(&mut stream).unwrap().as_ref(), Some(p));
        }
    }
}
