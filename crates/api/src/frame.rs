//! Length-prefixed, CRC-checked framing for byte-stream transports.
//!
//! Message payloads travelling over an octet stream (TCP) are wrapped in
//! frames following the same discipline as `dprov-storage`'s write-ahead
//! ledger:
//!
//! | field | size | meaning                        |
//! |-------|------|--------------------------------|
//! | `len` | 4 B  | payload length, little-endian  |
//! | `crc` | 4 B  | CRC-32 (IEEE) of the payload   |
//! | body  | len  | the message payload            |
//!
//! A reader that observes a bad length or checksum gets a typed
//! [`ApiError`] and must drop the connection — after a framing error the
//! stream offset can no longer be trusted. The in-process channel
//! transport skips this layer entirely: payloads move as owned buffers, so
//! there is nothing to tear.

use std::io::{ErrorKind as IoErrorKind, Read, Write};

use dprov_storage::codec::crc32;

use crate::error::{codes, ApiError};

/// Upper bound on a frame's payload length. Far above any legitimate
/// message (queries are small); exists so a corrupt or hostile length
/// prefix cannot drive an unbounded allocation.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Wraps a payload into a complete frame (header + body).
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w` (no flush; the caller owns buffering policy).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ApiError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(ApiError::new(
            codes::FRAME_TOO_LARGE,
            format!("refusing to send a {}-byte frame", payload.len()),
        ));
    }
    w.write_all(&frame(payload)).map_err(io_error)
}

/// Reads one frame from `r`, verifying length and checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary); EOF anywhere *inside* a frame is a truncation and surfaces
/// as [`codes::CONNECTION_CLOSED`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ApiError> {
    let mut header = [0u8; 8];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial(read) => {
            return Err(ApiError::new(
                codes::CONNECTION_CLOSED,
                format!("stream ended {read} bytes into a frame header"),
            ));
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice")) as usize;
    let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(ApiError::new(
            codes::FRAME_TOO_LARGE,
            format!("frame header declares {len} bytes (limit {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Partial(_) => {
            return Err(ApiError::new(
                codes::CONNECTION_CLOSED,
                format!("stream ended inside a {len}-byte frame body"),
            ));
        }
    }
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(ApiError::new(
            codes::CHECKSUM_MISMATCH,
            format!("frame checksum mismatch: header says {expected_crc:#010x}, body hashes to {actual_crc:#010x}"),
        ));
    }
    Ok(Some(payload))
}

enum ReadOutcome {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after this many bytes.
    Partial(usize),
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, ApiError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial(filled)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(e) => return Err(io_error(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

pub(crate) fn io_error(e: std::io::Error) -> ApiError {
    ApiError::new(codes::TRANSPORT_IO, format!("transport i/o error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let payload = b"hello analyst".to_vec();
        let mut stream = Cursor::new(frame(&payload));
        assert_eq!(read_frame(&mut stream).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut stream).unwrap(), None);
    }

    #[test]
    fn empty_stream_is_a_clean_eof() {
        let mut stream = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut stream).unwrap(), None);
    }

    #[test]
    fn truncated_header_and_body_are_typed_errors() {
        let full = frame(b"payload");
        for cut in [1, 7, 9, full.len() - 1] {
            let mut stream = Cursor::new(full[..cut].to_vec());
            let err = read_frame(&mut stream).unwrap_err();
            assert_eq!(err.code, codes::CONNECTION_CLOSED, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut bytes = frame(b"sensitive payload");
        for pos in 8..bytes.len() {
            bytes[pos] ^= 0x40;
            let mut stream = Cursor::new(bytes.clone());
            let err = read_frame(&mut stream).unwrap_err();
            assert_eq!(err.code, codes::CHECKSUM_MISMATCH, "flip at {pos}");
            bytes[pos] ^= 0x40;
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_without_allocating() {
        let mut bytes = frame(b"x");
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut stream = Cursor::new(bytes);
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.code, codes::FRAME_TOO_LARGE);
    }
}
