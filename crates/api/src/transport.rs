//! Transport abstraction: how message payloads move between a client and
//! the service.
//!
//! A [`Connection`] is a pair of halves — a [`FrameSink`] for sending and
//! a [`FrameSource`] for receiving — working at the *payload* level: the
//! bytes produced by [`crate::protocol::encode_request`] /
//! [`crate::protocol::encode_response`]. Two implementations ship:
//!
//! * **In-process** ([`Connection::pair`]) — a pair of `mpsc` channels
//!   moving owned payload buffers directly between threads. Zero copies,
//!   no framing, no checksum (memory does not tear); this keeps
//!   same-process tests and embedded deployments as fast as calling the
//!   service directly while exercising the identical message encodings.
//! * **TCP** ([`Connection::connect_tcp`] / [`Connection::from_tcp`]) —
//!   one socket per analyst session, payloads wrapped in the
//!   length-prefixed CRC-checked frames of [`crate::frame`], `TCP_NODELAY`
//!   set so small request frames are not nagled behind each other.
//!
//! The halves are independently `Send`, so a server can hand the source to
//! a reader thread and the sink to a writer thread ([`Connection::split`]).

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc;

use crate::error::{codes, ApiError};
use crate::frame::{io_error, read_frame, write_frame};

/// The sending half of a connection.
pub trait FrameSink: Send {
    /// Sends one message payload. Errors are terminal for the connection.
    fn send(&mut self, payload: Vec<u8>) -> Result<(), ApiError>;
}

/// The receiving half of a connection.
pub trait FrameSource: Send {
    /// Receives the next message payload, blocking until one arrives.
    /// `Ok(None)` means the peer closed the connection cleanly.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ApiError>;
}

/// A bidirectional, transport-agnostic connection.
pub struct Connection {
    sink: Box<dyn FrameSink>,
    source: Box<dyn FrameSource>,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection").finish_non_exhaustive()
    }
}

impl Connection {
    /// A connection over caller-supplied halves (custom transports).
    #[must_use]
    pub fn from_halves(sink: Box<dyn FrameSink>, source: Box<dyn FrameSource>) -> Self {
        Connection { sink, source }
    }

    /// An in-process connection pair `(client, server)`: what one side
    /// sends, the other receives, as moved buffers (zero-copy).
    #[must_use]
    pub fn pair() -> (Connection, Connection) {
        let (client_tx, server_rx) = mpsc::channel::<Vec<u8>>();
        let (server_tx, client_rx) = mpsc::channel::<Vec<u8>>();
        let client = Connection {
            sink: Box::new(ChannelSink(client_tx)),
            source: Box::new(ChannelSource(client_rx)),
        };
        let server = Connection {
            sink: Box::new(ChannelSink(server_tx)),
            source: Box::new(ChannelSource(server_rx)),
        };
        (client, server)
    }

    /// Connects to a TCP endpoint serving the analyst protocol.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Connection, ApiError> {
        let stream = TcpStream::connect(addr).map_err(io_error)?;
        Connection::from_tcp(stream)
    }

    /// Wraps an accepted / established TCP stream.
    pub fn from_tcp(stream: TcpStream) -> Result<Connection, ApiError> {
        stream.set_nodelay(true).map_err(io_error)?;
        let read_half = stream.try_clone().map_err(io_error)?;
        Ok(Connection {
            sink: Box::new(TcpSink(BufWriter::new(stream))),
            source: Box::new(TcpSource(BufReader::new(read_half))),
        })
    }

    /// Sends one payload.
    pub fn send(&mut self, payload: Vec<u8>) -> Result<(), ApiError> {
        self.sink.send(payload)
    }

    /// Receives the next payload (`None` = peer closed cleanly).
    pub fn recv(&mut self) -> Result<Option<Vec<u8>>, ApiError> {
        self.source.recv()
    }

    /// Splits into independently owned halves (reader/writer threads).
    #[must_use]
    pub fn split(self) -> (Box<dyn FrameSink>, Box<dyn FrameSource>) {
        (self.sink, self.source)
    }
}

struct ChannelSink(mpsc::Sender<Vec<u8>>);

impl FrameSink for ChannelSink {
    fn send(&mut self, payload: Vec<u8>) -> Result<(), ApiError> {
        self.0
            .send(payload)
            .map_err(|_| ApiError::new(codes::CONNECTION_CLOSED, "in-process peer disconnected"))
    }
}

struct ChannelSource(mpsc::Receiver<Vec<u8>>);

impl FrameSource for ChannelSource {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ApiError> {
        // A dropped sender is the channel transport's clean close.
        Ok(self.0.recv().ok())
    }
}

struct TcpSink(BufWriter<TcpStream>);

impl FrameSink for TcpSink {
    fn send(&mut self, payload: Vec<u8>) -> Result<(), ApiError> {
        write_frame(&mut self.0, &payload)?;
        self.0.flush().map_err(io_error)
    }
}

struct TcpSource(BufReader<TcpStream>);

impl FrameSource for TcpSource {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ApiError> {
        read_frame(&mut self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_moves_payloads_both_ways() {
        let (mut client, mut server) = Connection::pair();
        client.send(b"ping".to_vec()).unwrap();
        assert_eq!(server.recv().unwrap(), Some(b"ping".to_vec()));
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), Some(b"pong".to_vec()));
        drop(server);
        assert_eq!(client.recv().unwrap(), None, "peer drop is a clean close");
        assert_eq!(
            client.send(b"into the void".to_vec()).unwrap_err().code,
            codes::CONNECTION_CLOSED
        );
    }

    #[test]
    fn tcp_round_trips_frames_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = Connection::from_tcp(stream).unwrap();
            while let Some(payload) = conn.recv().unwrap() {
                conn.send(payload).unwrap(); // echo
            }
        });
        let mut client = Connection::connect_tcp(addr).unwrap();
        for size in [0usize, 1, 13, 4096] {
            let payload = vec![0xA5u8; size];
            client.send(payload.clone()).unwrap();
            assert_eq!(client.recv().unwrap(), Some(payload));
        }
        drop(client);
        server_thread.join().unwrap();
    }
}
