//! The versioned analyst protocol: typed requests and responses and their
//! payload encodings.
//!
//! Every message payload starts with a fixed header —
//!
//! | field        | size | meaning                                    |
//! |--------------|------|--------------------------------------------|
//! | `version`    | 1 B  | protocol version ([`PROTOCOL_VERSION`])    |
//! | `tag`        | 1 B  | message type (requests `1..`, responses `129..`) |
//! | `request_id` | 8 B  | client-chosen id echoed by the response    |
//!
//! — followed by the tag-specific body (see the crate-internal `wire` module for the domain
//! encodings). Request ids make the protocol **pipelined**: a client may
//! have any number of requests in flight on one connection and match
//! responses by id, in whatever order the service finishes them.
//!
//! Request and response tags live in disjoint ranges so a stream that is
//! accidentally decoded from the wrong side fails loudly instead of
//! aliasing into a different message type.

use dprov_core::processor::{GroupedOutcome, GroupedRequest, QueryOutcome, QueryRequest};
use dprov_core::workload::DeclaredWorkload;
use dprov_storage::codec::{Decoder, Encoder};

use crate::error::{codes, ApiError, ErrorKind};
use crate::wire;

/// The newest protocol version this build speaks.
///
/// Version 2 (dynamic data): `QueryAnswer` bodies carry the update epoch
/// the answer reflects, and the updater-role messages
/// ([`Request::RegisterUpdater`], [`Request::ApplyUpdate`],
/// [`Request::SealEpoch`]) were appended under new tags.
///
/// Version 3 (connection multiplexing): [`Request::Mux`] /
/// [`Response::MuxReply`] were appended under new tags, carrying a channel
/// id plus a fully-encoded inner message — many analyst sessions can share
/// one socket, each channel running the ordinary per-connection state
/// machine. No existing body changed, so the floor stays at 2.
///
/// Version 4 (grouped queries and planning): [`Request::GroupByQuery`] /
/// [`Request::DeclareWorkload`] and [`Response::GroupedAnswer`] /
/// [`Response::WorkloadPlan`] were appended under new tags — a GROUP BY
/// submission releases one DP answer per group in a single admission, and
/// a declared workload returns the advisory view/synopsis plan. No
/// existing body changed, so the floor stays at 2.
pub const PROTOCOL_VERSION: u8 = 4;

/// The oldest protocol version this build still understands. `Hello`
/// negotiation settles on `min(client max, server max)` and fails only
/// when that falls below the receiving side's floor — so bumping
/// [`PROTOCOL_VERSION`] does not cut off older peers until their version
/// is explicitly dropped here. Version 1 was dropped with the dynamic-data
/// extension: the `QueryAnswer` body gained the epoch field, so a v1 peer
/// would mis-frame every answer (new *tags* are append-only; changing an
/// existing body requires raising the floor). Version 2 remains readable:
/// the multiplexing extension added only new tags.
pub const MIN_SUPPORTED_VERSION: u8 = 2;

/// A request from an analyst client to the service.
///
/// Marked `#[non_exhaustive]`: new request types may be added under new
/// tags without a breaking change.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the conversation and negotiates the protocol version. Must be
    /// the first message on every connection.
    Hello {
        /// The newest version the client speaks; the service answers with
        /// `min(client, server)`, refusing only versions below its
        /// [`MIN_SUPPORTED_VERSION`] floor.
        max_version: u8,
        /// Free-form client identification (for logs; not a credential).
        client_name: String,
    },
    /// Authenticates as a roster analyst and opens — or, with `resume`,
    /// re-attaches to — a session.
    RegisterSession {
        /// The analyst's roster name (the protocol's credential: the
        /// roster is trusted configuration, names are identity).
        analyst_name: String,
        /// An existing session id to re-attach to after a reconnect; the
        /// service verifies the session belongs to `analyst_name`.
        resume: Option<u64>,
    },
    /// Submits one query on the connection's session.
    SubmitQuery(QueryRequest),
    /// Refreshes the session's heartbeat.
    Heartbeat,
    /// Asks for the session's budget and counters.
    BudgetStatus,
    /// Closes the session and ends the conversation.
    CloseSession,
    /// Authenticates the connection as a data **updater** (a role distinct
    /// from analysts: updaters mutate base tables and never query).
    /// Checked against the service's configured updater roster.
    RegisterUpdater {
        /// The updater's configured name (trusted-configuration identity,
        /// like analyst roster names).
        updater_name: String,
    },
    /// Submits one insert/delete batch (updater connections only). The
    /// batch is validated, journalled durably and becomes pending; it
    /// takes effect at the next [`Request::SealEpoch`].
    ApplyUpdate(dprov_delta::UpdateBatch),
    /// Seals every pending update batch into the next epoch (updater
    /// connections only). Quiesces in-flight query micro-batches so no
    /// answer is torn across versions.
    SealEpoch,
    /// Asks for the service's observability snapshot: stage-latency
    /// histograms, event counters, queue/batch telemetry and the
    /// per-(analyst, view) remaining-budget gauges. Available to any
    /// connection after `Hello`; no session required (the snapshot is
    /// service-wide, like an operator dashboard).
    MetricsSnapshot,
    /// A multiplexed message: `payload` is a fully-encoded inner request
    /// addressed to the logical channel `channel` on this connection. Each
    /// channel runs the ordinary connection state machine independently
    /// (its own inner `Hello`, its own session), so one socket can carry
    /// many analyst sessions. The outer connection must have completed its
    /// own `Hello` first; nesting `Mux` inside `Mux` is rejected. The
    /// outer `request_id` is ignored for routing — responses are matched
    /// by `(channel, inner request_id)`.
    Mux {
        /// Client-chosen logical channel id, stable for the channel's life.
        channel: u64,
        /// A complete inner request payload (header + body, unframed).
        payload: Vec<u8>,
    },
    /// Submits one GROUP BY query on the connection's session. The whole
    /// grouped release — every group's cell — is admitted as one unit and
    /// answered with one [`Response::GroupedAnswer`].
    GroupByQuery(GroupedRequest),
    /// Declares the session's expected workload (query templates plus
    /// relative frequencies). The service answers with the advisory
    /// view/synopsis plan ([`Response::WorkloadPlan`]); declaring spends no
    /// budget and does not constrain later submissions.
    DeclareWorkload(DeclaredWorkload),
}

/// The analyst-facing view of a session's budget state, returned by
/// [`Request::BudgetStatus`].
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReport {
    /// The session id.
    pub session: u64,
    /// The analyst's dense roster id.
    pub analyst: u64,
    /// The analyst's privilege level.
    pub privilege: u8,
    /// The analyst's row constraint ψ_Ai.
    pub budget_constraint: f64,
    /// Privacy budget already consumed against the row constraint.
    pub budget_consumed: f64,
    /// Remaining room under the row constraint.
    pub budget_remaining: f64,
    /// Submissions accepted from this session.
    pub submitted: u64,
    /// Queries answered to this session.
    pub answered: u64,
    /// Queries rejected for this session.
    pub rejected: u64,
}

/// A response from the service, echoing the request's id.
///
/// Marked `#[non_exhaustive]`: new response types may be added under new
/// tags without a breaking change.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Hello`].
    HelloAck {
        /// The negotiated protocol version.
        version: u8,
        /// Free-form server identification.
        server_name: String,
    },
    /// Answer to [`Request::RegisterSession`].
    SessionRegistered {
        /// The session id (quote it to `resume` after a reconnect).
        session: u64,
        /// The authenticated analyst's dense roster id.
        analyst: u64,
        /// The analyst's privilege level.
        privilege: u8,
        /// True when an existing session was resumed rather than opened.
        resumed: bool,
    },
    /// Answer to [`Request::SubmitQuery`] — the query's outcome (answers
    /// *and* budget rejections both arrive here; rejection is a valid
    /// outcome, not an error).
    QueryAnswer(QueryOutcome),
    /// Answer to [`Request::Heartbeat`].
    HeartbeatAck,
    /// Answer to [`Request::BudgetStatus`].
    BudgetReport(BudgetReport),
    /// Answer to [`Request::CloseSession`].
    SessionClosed,
    /// Answer to [`Request::RegisterUpdater`].
    UpdaterRegistered,
    /// Answer to [`Request::ApplyUpdate`].
    UpdateAccepted {
        /// The accepted batch's sequence number.
        batch_seq: u64,
        /// Batches now pending (including this one).
        pending: u64,
    },
    /// Answer to [`Request::SealEpoch`].
    EpochSealed {
        /// The sealed epoch's number.
        epoch: u64,
        /// Update batches the epoch applied.
        batches: u64,
        /// Delta rows (inserts + deletes) the epoch applied.
        rows: u64,
        /// Views whose exact histograms were patched.
        views_patched: u64,
        /// Cached noisy synopses invalidated under the epoch policy.
        synopses_invalidated: u64,
    },
    /// Answer to [`Request::MetricsSnapshot`] — the typed observability
    /// snapshot. Name-keyed and append-only: new metrics appear under new
    /// names without renumbering anything.
    MetricsReport(dprov_obs::MetricsSnapshot),
    /// The request failed; carries the stable error taxonomy.
    Error(ApiError),
    /// A multiplexed reply: `payload` is a fully-encoded inner response
    /// for the logical channel `channel` (see [`Request::Mux`]).
    MuxReply {
        /// The logical channel the inner response belongs to.
        channel: u64,
        /// A complete inner response payload (header + body, unframed).
        payload: Vec<u8>,
    },
    /// Answer to [`Request::GroupByQuery`] — one outcome per group cell in
    /// the canonical group-enumeration order, alongside each cell's group
    /// key (per-cell rejection is a valid outcome, not an error).
    GroupedAnswer(GroupedOutcome),
    /// Answer to [`Request::DeclareWorkload`] — the advisory plan.
    WorkloadPlan {
        /// Views the plan would materialise.
        views: u64,
        /// Estimated per-analyst budget the planned catalog costs.
        est_epsilon: f64,
        /// Estimated up-front materialisation work in cell-visits.
        est_materialise_cells: f64,
        /// The human-readable plan report (views, routing, reasons).
        report: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_SUBMIT: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_BUDGET: u8 = 5;
const TAG_CLOSE: u8 = 6;
const TAG_REGISTER_UPDATER: u8 = 7;
const TAG_APPLY_UPDATE: u8 = 8;
const TAG_SEAL_EPOCH: u8 = 9;
const TAG_METRICS: u8 = 10;
const TAG_MUX: u8 = 11;
const TAG_GROUP_BY: u8 = 12;
const TAG_DECLARE_WORKLOAD: u8 = 13;

const TAG_HELLO_ACK: u8 = 129;
const TAG_REGISTERED: u8 = 130;
const TAG_ANSWER: u8 = 131;
const TAG_HEARTBEAT_ACK: u8 = 132;
const TAG_BUDGET_REPORT: u8 = 133;
const TAG_CLOSED: u8 = 134;
const TAG_UPDATER_REGISTERED: u8 = 135;
const TAG_UPDATE_ACCEPTED: u8 = 136;
const TAG_EPOCH_SEALED: u8 = 137;
const TAG_METRICS_REPORT: u8 = 138;
const TAG_MUX_REPLY: u8 = 139;
const TAG_GROUPED_ANSWER: u8 = 140;
const TAG_WORKLOAD_PLAN: u8 = 141;
const TAG_ERROR: u8 = 255;

fn header(enc: &mut Encoder, tag: u8, request_id: u64) {
    enc.put_u8(PROTOCOL_VERSION);
    enc.put_u8(tag);
    enc.put_u64(request_id);
}

/// Encodes a request into a message payload (to be framed by the
/// transport).
#[must_use]
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    let mut enc = Encoder::new();
    match request {
        Request::Hello {
            max_version,
            client_name,
        } => {
            header(&mut enc, TAG_HELLO, request_id);
            enc.put_u8(*max_version);
            enc.put_str(client_name);
        }
        Request::RegisterSession {
            analyst_name,
            resume,
        } => {
            header(&mut enc, TAG_REGISTER, request_id);
            enc.put_str(analyst_name);
            match resume {
                Some(id) => {
                    enc.put_u8(1);
                    enc.put_u64(*id);
                }
                None => enc.put_u8(0),
            }
        }
        Request::SubmitQuery(query_request) => {
            header(&mut enc, TAG_SUBMIT, request_id);
            wire::put_request_body(&mut enc, query_request);
        }
        Request::Heartbeat => header(&mut enc, TAG_HEARTBEAT, request_id),
        Request::BudgetStatus => header(&mut enc, TAG_BUDGET, request_id),
        Request::CloseSession => header(&mut enc, TAG_CLOSE, request_id),
        Request::RegisterUpdater { updater_name } => {
            header(&mut enc, TAG_REGISTER_UPDATER, request_id);
            enc.put_str(updater_name);
        }
        Request::ApplyUpdate(batch) => {
            header(&mut enc, TAG_APPLY_UPDATE, request_id);
            wire::put_update_batch(&mut enc, batch);
        }
        Request::SealEpoch => header(&mut enc, TAG_SEAL_EPOCH, request_id),
        Request::MetricsSnapshot => header(&mut enc, TAG_METRICS, request_id),
        Request::Mux { channel, payload } => {
            header(&mut enc, TAG_MUX, request_id);
            enc.put_u64(*channel);
            enc.put_bytes(payload);
        }
        Request::GroupByQuery(grouped) => {
            header(&mut enc, TAG_GROUP_BY, request_id);
            wire::put_grouped_request(&mut enc, grouped);
        }
        Request::DeclareWorkload(workload) => {
            header(&mut enc, TAG_DECLARE_WORKLOAD, request_id);
            wire::put_workload(&mut enc, workload);
        }
    }
    enc.into_bytes()
}

/// Encodes a response into a message payload.
#[must_use]
pub fn encode_response(request_id: u64, response: &Response) -> Vec<u8> {
    let mut enc = Encoder::new();
    match response {
        Response::HelloAck {
            version,
            server_name,
        } => {
            header(&mut enc, TAG_HELLO_ACK, request_id);
            enc.put_u8(*version);
            enc.put_str(server_name);
        }
        Response::SessionRegistered {
            session,
            analyst,
            privilege,
            resumed,
        } => {
            header(&mut enc, TAG_REGISTERED, request_id);
            enc.put_u64(*session);
            enc.put_u64(*analyst);
            enc.put_u8(*privilege);
            enc.put_bool(*resumed);
        }
        Response::QueryAnswer(outcome) => {
            header(&mut enc, TAG_ANSWER, request_id);
            wire::put_outcome(&mut enc, outcome);
        }
        Response::HeartbeatAck => header(&mut enc, TAG_HEARTBEAT_ACK, request_id),
        Response::BudgetReport(report) => {
            header(&mut enc, TAG_BUDGET_REPORT, request_id);
            enc.put_u64(report.session);
            enc.put_u64(report.analyst);
            enc.put_u8(report.privilege);
            enc.put_f64(report.budget_constraint);
            enc.put_f64(report.budget_consumed);
            enc.put_f64(report.budget_remaining);
            enc.put_u64(report.submitted);
            enc.put_u64(report.answered);
            enc.put_u64(report.rejected);
        }
        Response::SessionClosed => header(&mut enc, TAG_CLOSED, request_id),
        Response::UpdaterRegistered => header(&mut enc, TAG_UPDATER_REGISTERED, request_id),
        Response::UpdateAccepted { batch_seq, pending } => {
            header(&mut enc, TAG_UPDATE_ACCEPTED, request_id);
            enc.put_u64(*batch_seq);
            enc.put_u64(*pending);
        }
        Response::EpochSealed {
            epoch,
            batches,
            rows,
            views_patched,
            synopses_invalidated,
        } => {
            header(&mut enc, TAG_EPOCH_SEALED, request_id);
            enc.put_u64(*epoch);
            enc.put_u64(*batches);
            enc.put_u64(*rows);
            enc.put_u64(*views_patched);
            enc.put_u64(*synopses_invalidated);
        }
        Response::MetricsReport(snapshot) => {
            header(&mut enc, TAG_METRICS_REPORT, request_id);
            wire::put_metrics_snapshot(&mut enc, snapshot);
        }
        Response::Error(e) => {
            header(&mut enc, TAG_ERROR, request_id);
            enc.put_u32(u32::from(e.code));
            enc.put_u8(e.kind.wire_tag());
            enc.put_bool(e.retryable);
            enc.put_str(&e.message);
        }
        Response::MuxReply { channel, payload } => {
            header(&mut enc, TAG_MUX_REPLY, request_id);
            enc.put_u64(*channel);
            enc.put_bytes(payload);
        }
        Response::GroupedAnswer(outcome) => {
            header(&mut enc, TAG_GROUPED_ANSWER, request_id);
            wire::put_grouped_outcome(&mut enc, outcome);
        }
        Response::WorkloadPlan {
            views,
            est_epsilon,
            est_materialise_cells,
            report,
        } => {
            header(&mut enc, TAG_WORKLOAD_PLAN, request_id);
            enc.put_u64(*views);
            enc.put_f64(*est_epsilon);
            enc.put_f64(*est_materialise_cells);
            enc.put_str(report);
        }
    }
    enc.into_bytes()
}

/// Reads and validates the message header, returning `(tag, request_id)`.
fn take_header(dec: &mut Decoder<'_>) -> Result<(u8, u64), ApiError> {
    let version = dec.take_u8().map_err(wire::malformed)?;
    if !(MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ApiError::new(
            codes::UNSUPPORTED_VERSION,
            format!(
                "protocol version {version} not supported (this build speaks \
                 {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION})"
            ),
        ));
    }
    let tag = dec.take_u8().map_err(wire::malformed)?;
    let request_id = dec.take_u64().map_err(wire::malformed)?;
    Ok((tag, request_id))
}

/// Decodes a request payload into `(request_id, request)`.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ApiError> {
    let mut dec = Decoder::new(payload);
    let (tag, request_id) = take_header(&mut dec)?;
    let request = match tag {
        TAG_HELLO => Request::Hello {
            max_version: dec.take_u8().map_err(wire::malformed)?,
            client_name: dec.take_str().map_err(wire::malformed)?,
        },
        TAG_REGISTER => {
            let analyst_name = dec.take_str().map_err(wire::malformed)?;
            let resume = match dec.take_u8().map_err(wire::malformed)? {
                0 => None,
                1 => Some(dec.take_u64().map_err(wire::malformed)?),
                t => return Err(wire::malformed(format!("invalid option tag {t}"))),
            };
            Request::RegisterSession {
                analyst_name,
                resume,
            }
        }
        TAG_SUBMIT => {
            Request::SubmitQuery(wire::take_request_body(&mut dec).map_err(wire::malformed)?)
        }
        TAG_HEARTBEAT => Request::Heartbeat,
        TAG_BUDGET => Request::BudgetStatus,
        TAG_CLOSE => Request::CloseSession,
        TAG_REGISTER_UPDATER => Request::RegisterUpdater {
            updater_name: dec.take_str().map_err(wire::malformed)?,
        },
        TAG_APPLY_UPDATE => {
            Request::ApplyUpdate(wire::take_update_batch(&mut dec).map_err(wire::malformed)?)
        }
        TAG_SEAL_EPOCH => Request::SealEpoch,
        TAG_METRICS => Request::MetricsSnapshot,
        TAG_MUX => Request::Mux {
            channel: dec.take_u64().map_err(wire::malformed)?,
            payload: dec.take_bytes().map_err(wire::malformed)?,
        },
        TAG_GROUP_BY => {
            Request::GroupByQuery(wire::take_grouped_request(&mut dec).map_err(wire::malformed)?)
        }
        TAG_DECLARE_WORKLOAD => {
            Request::DeclareWorkload(wire::take_workload(&mut dec).map_err(wire::malformed)?)
        }
        t => {
            return Err(wire::malformed(format!("unknown request tag {t}")));
        }
    };
    expect_consumed(&dec)?;
    Ok((request_id, request))
}

/// Decodes a response payload into `(request_id, response)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ApiError> {
    let mut dec = Decoder::new(payload);
    let (tag, request_id) = take_header(&mut dec)?;
    let response = match tag {
        TAG_HELLO_ACK => Response::HelloAck {
            version: dec.take_u8().map_err(wire::malformed)?,
            server_name: dec.take_str().map_err(wire::malformed)?,
        },
        TAG_REGISTERED => Response::SessionRegistered {
            session: dec.take_u64().map_err(wire::malformed)?,
            analyst: dec.take_u64().map_err(wire::malformed)?,
            privilege: dec.take_u8().map_err(wire::malformed)?,
            resumed: dec.take_bool().map_err(wire::malformed)?,
        },
        TAG_ANSWER => Response::QueryAnswer(wire::take_outcome(&mut dec).map_err(wire::malformed)?),
        TAG_HEARTBEAT_ACK => Response::HeartbeatAck,
        TAG_BUDGET_REPORT => Response::BudgetReport(BudgetReport {
            session: dec.take_u64().map_err(wire::malformed)?,
            analyst: dec.take_u64().map_err(wire::malformed)?,
            privilege: dec.take_u8().map_err(wire::malformed)?,
            budget_constraint: dec.take_f64().map_err(wire::malformed)?,
            budget_consumed: dec.take_f64().map_err(wire::malformed)?,
            budget_remaining: dec.take_f64().map_err(wire::malformed)?,
            submitted: dec.take_u64().map_err(wire::malformed)?,
            answered: dec.take_u64().map_err(wire::malformed)?,
            rejected: dec.take_u64().map_err(wire::malformed)?,
        }),
        TAG_CLOSED => Response::SessionClosed,
        TAG_UPDATER_REGISTERED => Response::UpdaterRegistered,
        TAG_UPDATE_ACCEPTED => Response::UpdateAccepted {
            batch_seq: dec.take_u64().map_err(wire::malformed)?,
            pending: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_EPOCH_SEALED => Response::EpochSealed {
            epoch: dec.take_u64().map_err(wire::malformed)?,
            batches: dec.take_u64().map_err(wire::malformed)?,
            rows: dec.take_u64().map_err(wire::malformed)?,
            views_patched: dec.take_u64().map_err(wire::malformed)?,
            synopses_invalidated: dec.take_u64().map_err(wire::malformed)?,
        },
        TAG_METRICS_REPORT => {
            Response::MetricsReport(wire::take_metrics_snapshot(&mut dec).map_err(wire::malformed)?)
        }
        TAG_ERROR => {
            let code_raw = dec.take_u32().map_err(wire::malformed)?;
            let code = u16::try_from(code_raw)
                .map_err(|_| wire::malformed(format!("error code {code_raw} out of range")))?;
            let kind = ErrorKind::from_wire_tag(dec.take_u8().map_err(wire::malformed)?);
            let retryable = dec.take_bool().map_err(wire::malformed)?;
            let message = dec.take_str().map_err(wire::malformed)?;
            // Trust the sender's kind/retryable verbatim: a newer peer may
            // classify codes this build does not know.
            Response::Error(ApiError {
                code,
                kind,
                message,
                retryable,
            })
        }
        TAG_MUX_REPLY => Response::MuxReply {
            channel: dec.take_u64().map_err(wire::malformed)?,
            payload: dec.take_bytes().map_err(wire::malformed)?,
        },
        TAG_GROUPED_ANSWER => {
            Response::GroupedAnswer(wire::take_grouped_outcome(&mut dec).map_err(wire::malformed)?)
        }
        TAG_WORKLOAD_PLAN => Response::WorkloadPlan {
            views: dec.take_u64().map_err(wire::malformed)?,
            est_epsilon: dec.take_f64().map_err(wire::malformed)?,
            est_materialise_cells: dec.take_f64().map_err(wire::malformed)?,
            report: dec.take_str().map_err(wire::malformed)?,
        },
        t => {
            return Err(wire::malformed(format!("unknown response tag {t}")));
        }
    };
    expect_consumed(&dec)?;
    Ok((request_id, response))
}

/// Rejects payloads with trailing garbage — a message must consume its
/// whole frame, otherwise a desynchronised or tampered stream could smuggle
/// bytes past the CRC of a *later* frame boundary.
fn expect_consumed(dec: &Decoder<'_>) -> Result<(), ApiError> {
    if dec.is_empty() {
        Ok(())
    } else {
        Err(wire::malformed(format!(
            "{} trailing bytes after the message body",
            dec.remaining()
        )))
    }
}
