//! Wire encodings of the domain types carried by the protocol: queries,
//! predicates, submission modes, outcomes and rejection reasons.
//!
//! The encodings reuse `dprov-storage`'s codec discipline: hand-rolled
//! little-endian layouts over [`Encoder`]/[`Decoder`], every field
//! length-checked, every decode returning a typed reason instead of
//! panicking. Enum variants are written as append-only tags — a tag, once
//! assigned, never changes meaning; unknown tags decode to an error, never
//! to a guess.
//!
//! Predicates are recursive, so decoding enforces [`MAX_PREDICATE_DEPTH`]
//! and bounds every collection length by the remaining payload — corrupt
//! or adversarial length prefixes cannot trigger unbounded allocation or
//! stack exhaustion.

use dprov_core::error::RejectReason;
use dprov_core::processor::{
    AnsweredQuery, GroupedOutcome, GroupedRequest, QueryOutcome, QueryRequest, SubmissionMode,
};
use dprov_core::workload::{DeclaredWorkload, QueryTemplate};
use dprov_engine::expr::Predicate;
use dprov_engine::group::GroupByQuery;
use dprov_engine::query::{AggregateKind, Query};
use dprov_engine::value::Value;
use dprov_storage::codec::{DecodeResult, Decoder, Encoder};

use crate::error::{codes, ApiError};

/// Maximum nesting depth accepted when decoding a predicate tree.
pub const MAX_PREDICATE_DEPTH: usize = 64;

pub(crate) fn put_value(enc: &mut Encoder, value: &Value) {
    match value {
        Value::Int(v) => {
            enc.put_u8(0);
            enc.put_i64(*v);
        }
        Value::Text(s) => {
            enc.put_u8(1);
            enc.put_str(s);
        }
    }
}

pub(crate) fn take_value(dec: &mut Decoder<'_>) -> DecodeResult<Value> {
    match dec.take_u8()? {
        0 => Ok(Value::Int(dec.take_i64()?)),
        1 => Ok(Value::Text(dec.take_str()?)),
        t => Err(format!("unknown value tag {t}")),
    }
}

pub(crate) fn put_predicate(enc: &mut Encoder, predicate: &Predicate) {
    match predicate {
        Predicate::True => enc.put_u8(0),
        Predicate::Range {
            attribute,
            low,
            high,
        } => {
            enc.put_u8(1);
            enc.put_str(attribute);
            enc.put_i64(*low);
            enc.put_i64(*high);
        }
        Predicate::Equals { attribute, value } => {
            enc.put_u8(2);
            enc.put_str(attribute);
            put_value(enc, value);
        }
        Predicate::InSet { attribute, values } => {
            enc.put_u8(3);
            enc.put_str(attribute);
            enc.put_u32(values.len() as u32);
            for v in values {
                put_value(enc, v);
            }
        }
        Predicate::And(children) => {
            enc.put_u8(4);
            enc.put_u32(children.len() as u32);
            for c in children {
                put_predicate(enc, c);
            }
        }
        Predicate::Or(children) => {
            enc.put_u8(5);
            enc.put_u32(children.len() as u32);
            for c in children {
                put_predicate(enc, c);
            }
        }
        Predicate::Not(inner) => {
            enc.put_u8(6);
            put_predicate(enc, inner);
        }
    }
}

pub(crate) fn take_predicate(dec: &mut Decoder<'_>, depth: usize) -> DecodeResult<Predicate> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(format!(
            "predicate nesting exceeds the {MAX_PREDICATE_DEPTH}-level limit"
        ));
    }
    match dec.take_u8()? {
        0 => Ok(Predicate::True),
        1 => Ok(Predicate::Range {
            attribute: dec.take_str()?,
            low: dec.take_i64()?,
            high: dec.take_i64()?,
        }),
        2 => Ok(Predicate::Equals {
            attribute: dec.take_str()?,
            value: take_value(dec)?,
        }),
        3 => {
            let attribute = dec.take_str()?;
            let len = bounded_len(dec, 1, "value set")?;
            let values = (0..len)
                .map(|_| take_value(dec))
                .collect::<DecodeResult<Vec<Value>>>()?;
            Ok(Predicate::InSet { attribute, values })
        }
        4 => Ok(Predicate::And(take_children(dec, depth)?)),
        5 => Ok(Predicate::Or(take_children(dec, depth)?)),
        6 => Ok(Predicate::Not(Box::new(take_predicate(dec, depth + 1)?))),
        t => Err(format!("unknown predicate tag {t}")),
    }
}

fn take_children(dec: &mut Decoder<'_>, depth: usize) -> DecodeResult<Vec<Predicate>> {
    let len = bounded_len(dec, 1, "predicate children")?;
    (0..len).map(|_| take_predicate(dec, depth + 1)).collect()
}

/// Reads a `u32` collection length and rejects any count whose minimal
/// encoding (`min_item_bytes` per item) could not fit in the remaining
/// payload — a corrupt length prefix must not drive a giant allocation.
fn bounded_len(dec: &mut Decoder<'_>, min_item_bytes: usize, what: &str) -> DecodeResult<usize> {
    let len = dec.take_u32()? as usize;
    if len.saturating_mul(min_item_bytes) > dec.remaining() {
        return Err(format!("{what} count {len} exceeds the payload"));
    }
    Ok(len)
}

pub(crate) fn put_query(enc: &mut Encoder, query: &Query) {
    enc.put_str(&query.table);
    match &query.aggregate {
        AggregateKind::Count => enc.put_u8(0),
        AggregateKind::Sum(a) => {
            enc.put_u8(1);
            enc.put_str(a);
        }
        AggregateKind::Avg(a) => {
            enc.put_u8(2);
            enc.put_str(a);
        }
    }
    put_predicate(enc, &query.predicate);
    enc.put_u32(query.group_by.len() as u32);
    for g in &query.group_by {
        enc.put_str(g);
    }
}

pub(crate) fn take_query(dec: &mut Decoder<'_>) -> DecodeResult<Query> {
    let table = dec.take_str()?;
    let aggregate = match dec.take_u8()? {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum(dec.take_str()?),
        2 => AggregateKind::Avg(dec.take_str()?),
        t => return Err(format!("unknown aggregate tag {t}")),
    };
    let predicate = take_predicate(dec, 0)?;
    let len = bounded_len(dec, 4, "group-by list")?;
    let group_by = (0..len)
        .map(|_| dec.take_str())
        .collect::<DecodeResult<Vec<String>>>()?;
    Ok(Query {
        table,
        aggregate,
        predicate,
        group_by,
    })
}

fn put_mode(enc: &mut Encoder, mode: &SubmissionMode) {
    match mode {
        SubmissionMode::Accuracy { variance } => {
            enc.put_u8(0);
            enc.put_f64(*variance);
        }
        SubmissionMode::Privacy { epsilon } => {
            enc.put_u8(1);
            enc.put_f64(*epsilon);
        }
    }
}

fn take_mode(dec: &mut Decoder<'_>) -> DecodeResult<SubmissionMode> {
    match dec.take_u8()? {
        0 => Ok(SubmissionMode::Accuracy {
            variance: dec.take_f64()?,
        }),
        1 => Ok(SubmissionMode::Privacy {
            epsilon: dec.take_f64()?,
        }),
        t => Err(format!("unknown submission-mode tag {t}")),
    }
}

pub(crate) fn put_grouped_request(enc: &mut Encoder, request: &GroupedRequest) {
    let q = &request.query;
    enc.put_str(&q.table);
    enc.put_u32(q.group_cols.len() as u32);
    for g in &q.group_cols {
        enc.put_str(g);
    }
    match &q.aggregate {
        AggregateKind::Count => enc.put_u8(0),
        AggregateKind::Sum(a) => {
            enc.put_u8(1);
            enc.put_str(a);
        }
        AggregateKind::Avg(a) => {
            enc.put_u8(2);
            enc.put_str(a);
        }
    }
    put_predicate(enc, &q.predicate);
    put_mode(enc, &request.mode);
}

pub(crate) fn take_grouped_request(dec: &mut Decoder<'_>) -> DecodeResult<GroupedRequest> {
    let table = dec.take_str()?;
    let len = bounded_len(dec, 4, "group-by columns")?;
    let group_cols = (0..len)
        .map(|_| dec.take_str())
        .collect::<DecodeResult<Vec<String>>>()?;
    let aggregate = match dec.take_u8()? {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum(dec.take_str()?),
        2 => AggregateKind::Avg(dec.take_str()?),
        t => return Err(format!("unknown aggregate tag {t}")),
    };
    let predicate = take_predicate(dec, 0)?;
    let mode = take_mode(dec)?;
    Ok(GroupedRequest {
        query: GroupByQuery {
            table,
            group_cols,
            aggregate,
            predicate,
        },
        mode,
    })
}

pub(crate) fn put_grouped_outcome(enc: &mut Encoder, outcome: &GroupedOutcome) {
    enc.put_u32(outcome.keys.len() as u32);
    for key in &outcome.keys {
        enc.put_u32(key.len() as u32);
        for value in key {
            put_value(enc, value);
        }
    }
    enc.put_u32(outcome.outcomes.len() as u32);
    for o in &outcome.outcomes {
        put_outcome(enc, o);
    }
}

pub(crate) fn take_grouped_outcome(dec: &mut Decoder<'_>) -> DecodeResult<GroupedOutcome> {
    let n = bounded_len(dec, 4, "group keys")?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let len = bounded_len(dec, 2, "group key values")?;
        let mut key = Vec::with_capacity(len);
        for _ in 0..len {
            key.push(take_value(dec)?);
        }
        keys.push(key);
    }
    let n = bounded_len(dec, 1, "group outcomes")?;
    let outcomes = (0..n)
        .map(|_| take_outcome(dec))
        .collect::<DecodeResult<Vec<QueryOutcome>>>()?;
    Ok(GroupedOutcome { keys, outcomes })
}

pub(crate) fn put_workload(enc: &mut Encoder, workload: &DeclaredWorkload) {
    enc.put_u32(workload.templates.len() as u32);
    for template in &workload.templates {
        put_query(enc, &template.query);
        enc.put_f64(template.weight);
    }
}

pub(crate) fn take_workload(dec: &mut Decoder<'_>) -> DecodeResult<DeclaredWorkload> {
    let n = bounded_len(dec, 6, "workload templates")?;
    let templates = (0..n)
        .map(|_| {
            Ok(QueryTemplate {
                query: take_query(dec)?,
                weight: dec.take_f64()?,
            })
        })
        .collect::<DecodeResult<Vec<QueryTemplate>>>()?;
    Ok(DeclaredWorkload { templates })
}

pub(crate) fn put_request_body(enc: &mut Encoder, request: &QueryRequest) {
    put_query(enc, &request.query);
    put_mode(enc, &request.mode);
}

pub(crate) fn take_request_body(dec: &mut Decoder<'_>) -> DecodeResult<QueryRequest> {
    Ok(QueryRequest {
        query: take_query(dec)?,
        mode: take_mode(dec)?,
    })
}

pub(crate) fn put_reject_reason(enc: &mut Encoder, reason: &RejectReason) {
    match reason {
        RejectReason::AnalystConstraint { analyst } => {
            enc.put_u8(0);
            enc.put_u64(analyst.0 as u64);
        }
        RejectReason::ViewConstraint { view } => {
            enc.put_u8(1);
            enc.put_str(view);
        }
        RejectReason::TableConstraint => enc.put_u8(2),
        RejectReason::AccuracyUnreachable => enc.put_u8(3),
        RejectReason::NotAnswerable => enc.put_u8(4),
        RejectReason::InsufficientSynopsis => enc.put_u8(5),
        // `RejectReason` is #[non_exhaustive]: a variant added without a
        // protocol bump is shipped as tag 255 + display text, which old
        // decoders refuse loudly instead of mis-reporting the class.
        other => {
            enc.put_u8(255);
            enc.put_str(&other.to_string());
        }
    }
}

pub(crate) fn take_reject_reason(dec: &mut Decoder<'_>) -> DecodeResult<RejectReason> {
    match dec.take_u8()? {
        0 => Ok(RejectReason::AnalystConstraint {
            analyst: dprov_core::analyst::AnalystId(dec.take_u64()? as usize),
        }),
        1 => Ok(RejectReason::ViewConstraint {
            view: dec.take_str()?,
        }),
        2 => Ok(RejectReason::TableConstraint),
        3 => Ok(RejectReason::AccuracyUnreachable),
        4 => Ok(RejectReason::NotAnswerable),
        5 => Ok(RejectReason::InsufficientSynopsis),
        255 => Err(format!(
            "peer sent a rejection class this build does not know: {}",
            dec.take_str()?
        )),
        t => Err(format!("unknown reject-reason tag {t}")),
    }
}

pub(crate) fn put_outcome(enc: &mut Encoder, outcome: &QueryOutcome) {
    match outcome {
        QueryOutcome::Answered(a) => {
            enc.put_u8(0);
            enc.put_f64(a.value);
            match &a.view {
                Some(v) => {
                    enc.put_u8(1);
                    enc.put_str(v);
                }
                None => enc.put_u8(0),
            }
            enc.put_f64(a.epsilon_charged);
            enc.put_f64(a.noise_variance);
            enc.put_bool(a.from_cache);
            // Protocol v2: the update epoch the answer reflects.
            enc.put_u64(a.epoch);
        }
        QueryOutcome::Rejected { reason } => {
            enc.put_u8(1);
            put_reject_reason(enc, reason);
        }
    }
}

pub(crate) fn take_outcome(dec: &mut Decoder<'_>) -> DecodeResult<QueryOutcome> {
    match dec.take_u8()? {
        0 => {
            let value = dec.take_f64()?;
            let view = match dec.take_u8()? {
                0 => None,
                1 => Some(dec.take_str()?),
                t => return Err(format!("invalid option tag {t}")),
            };
            Ok(QueryOutcome::Answered(AnsweredQuery {
                value,
                view,
                epsilon_charged: dec.take_f64()?,
                noise_variance: dec.take_f64()?,
                from_cache: dec.take_bool()?,
                epoch: dec.take_u64()?,
            }))
        }
        1 => Ok(QueryOutcome::Rejected {
            reason: take_reject_reason(dec)?,
        }),
        t => Err(format!("unknown outcome tag {t}")),
    }
}

pub(crate) fn put_update_batch(enc: &mut Encoder, batch: &dprov_delta::UpdateBatch) {
    enc.put_str(&batch.table);
    put_value_rows(enc, &batch.inserts);
    put_value_rows(enc, &batch.deletes);
}

pub(crate) fn take_update_batch(dec: &mut Decoder<'_>) -> DecodeResult<dprov_delta::UpdateBatch> {
    Ok(dprov_delta::UpdateBatch {
        table: dec.take_str()?,
        inserts: take_value_rows(dec)?,
        deletes: take_value_rows(dec)?,
    })
}

fn put_value_rows(enc: &mut Encoder, rows: &[Vec<Value>]) {
    enc.put_u32(rows.len() as u32);
    for row in rows {
        enc.put_u32(row.len() as u32);
        for value in row {
            put_value(enc, value);
        }
    }
}

fn take_value_rows(dec: &mut Decoder<'_>) -> DecodeResult<Vec<Vec<Value>>> {
    let n = bounded_len(dec, 4, "update rows")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let len = bounded_len(dec, 2, "update row cells")?;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(take_value(dec)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

pub(crate) fn put_metrics_snapshot(enc: &mut Encoder, snap: &dprov_obs::MetricsSnapshot) {
    enc.put_u32(snap.counters.len() as u32);
    for (name, value) in &snap.counters {
        enc.put_str(name);
        enc.put_u64(*value);
    }
    enc.put_u32(snap.gauges.len() as u32);
    for (name, value) in &snap.gauges {
        enc.put_str(name);
        enc.put_f64(*value);
    }
    enc.put_u32(snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        enc.put_str(name);
        enc.put_u64(h.count);
        enc.put_u64(h.sum);
        enc.put_u64(h.max);
        enc.put_u64(h.p50);
        enc.put_u64(h.p95);
        enc.put_u64(h.p99);
    }
    enc.put_u32(snap.budgets.len() as u32);
    for b in &snap.budgets {
        enc.put_str(&b.analyst);
        enc.put_str(&b.view);
        enc.put_f64(b.entry_epsilon);
        enc.put_f64(b.remaining_epsilon);
    }
}

pub(crate) fn take_metrics_snapshot(
    dec: &mut Decoder<'_>,
) -> DecodeResult<dprov_obs::MetricsSnapshot> {
    // Every entry starts with a length-prefixed name, so 4 bytes is a
    // safe lower bound for the payload-bounded length checks.
    let n = bounded_len(dec, 4, "metric counters")?;
    let counters = (0..n)
        .map(|_| Ok((dec.take_str()?, dec.take_u64()?)))
        .collect::<DecodeResult<Vec<_>>>()?;
    let n = bounded_len(dec, 4, "metric gauges")?;
    let gauges = (0..n)
        .map(|_| Ok((dec.take_str()?, dec.take_f64()?)))
        .collect::<DecodeResult<Vec<_>>>()?;
    let n = bounded_len(dec, 4, "metric histograms")?;
    let histograms = (0..n)
        .map(|_| {
            Ok((
                dec.take_str()?,
                dprov_obs::HistogramSnapshot {
                    count: dec.take_u64()?,
                    sum: dec.take_u64()?,
                    max: dec.take_u64()?,
                    p50: dec.take_u64()?,
                    p95: dec.take_u64()?,
                    p99: dec.take_u64()?,
                },
            ))
        })
        .collect::<DecodeResult<Vec<_>>>()?;
    let n = bounded_len(dec, 4, "budget gauges")?;
    let budgets = (0..n)
        .map(|_| {
            Ok(dprov_obs::BudgetGauge {
                analyst: dec.take_str()?,
                view: dec.take_str()?,
                entry_epsilon: dec.take_f64()?,
                remaining_epsilon: dec.take_f64()?,
            })
        })
        .collect::<DecodeResult<Vec<_>>>()?;
    Ok(dprov_obs::MetricsSnapshot {
        counters,
        gauges,
        histograms,
        budgets,
    })
}

/// Wraps a decode-reason string into the protocol's malformed-payload
/// error.
pub(crate) fn malformed(reason: impl std::fmt::Display) -> ApiError {
    ApiError::new(
        codes::MALFORMED_FRAME,
        format!("malformed message: {reason}"),
    )
}
