//! Jepsen-style fault harness for the replicated budget ledger.
//!
//! Every test drives a real analyst workload through a `DProvDb` whose
//! provenance critical section is gated by a
//! [`dprov_cluster::ReplicatedRecorder`] over a deterministic
//! [`dprov_cluster::SimCluster`], while a seeded nemesis schedule
//! injects crashes, partitions and message loss. After every schedule
//! the harness asserts the three distributed-correctness properties:
//!
//! 1. **Recovered spend covers acknowledged spend** — replaying the
//!    committed replicated log from any surviving majority reproduces
//!    every acknowledged provenance entry bit-identically (and never
//!    less than it);
//! 2. **Per-analyst constraints hold** — row, column and table
//!    constraints are never overspent, faults or not;
//! 3. **Answers are bit-identical to a fault-free oracle** — a refused
//!    quorum ack aborts the submission with no memory mutation, so a
//!    healed retry (with the session RNG restored) reproduces exactly
//!    what a run without faults produces.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dprov_cluster::{ReplicatedRecorder, SimCluster};
use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::{QueryOutcome, QueryRequest};
use dprov_core::system::DProvDb;
use dprov_dp::rng::DpRng;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_storage::wal::WalRecord;

const ANALYSTS: usize = 3;
const ROUNDS: usize = 8;
const REPLICAS: u64 = 3;
const PUMP: usize = 400;

fn build_system(seed: u64) -> DProvDb {
    let db = adult_database(800, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), (i + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(50.0).unwrap().with_seed(seed);
    DProvDb::new(db, catalog, registry, config, MechanismKind::Vanilla).unwrap()
}

/// Disjoint views per analyst (the documented determinism envelope). The
/// variance bound *tightens* every round so each submission must refresh
/// its view synopsis and charge — a loosening bound would be answered
/// from the cache after round 0, bypassing the replication gate.
fn request(analyst: usize, round: usize) -> QueryRequest {
    let i = round as i64;
    let query = match analyst % 3 {
        0 => Query::range_count("adult", "age", 20 + i, 45 + i),
        1 => Query::range_count("adult", "hours_per_week", 10 + i, 35 + i),
        _ => Query::range_count("adult", "education_num", 1 + (i % 8), 8 + (i % 8)),
    };
    QueryRequest::with_accuracy(query, 1500.0 - 150.0 * round as f64)
}

/// Everything an analyst observes about one answer, floats as raw bits.
type Observed = (u64, Option<String>, u64, u64, bool, u64);

fn observe(outcome: QueryOutcome) -> Observed {
    match outcome {
        QueryOutcome::Answered(a) => (
            a.value.to_bits(),
            a.view,
            a.epsilon_charged.to_bits(),
            a.noise_variance.to_bits(),
            a.from_cache,
            a.epoch,
        ),
        QueryOutcome::Rejected { reason } => panic!("unexpected rejection: {reason}"),
    }
}

fn fresh_rngs(seed: u64) -> Vec<DpRng> {
    (0..ANALYSTS)
        .map(|a| DpRng::for_stream(seed, a as u64))
        .collect()
}

/// The fault-free reference: same system, same submission order, same
/// per-analyst RNG streams, no recorder.
fn oracle_run(seed: u64) -> (Vec<Vec<Observed>>, DProvDb) {
    let system = build_system(seed);
    let mut rngs = fresh_rngs(seed);
    let mut outcomes = vec![Vec::new(); ANALYSTS];
    for round in 0..ROUNDS {
        for a in 0..ANALYSTS {
            let outcome = system
                .submit_with_rng(AnalystId(a), &request(a, round), &mut rngs[a])
                .unwrap();
            outcomes[a].push(observe(outcome));
        }
    }
    (outcomes, system)
}

/// One nemesis action applied before a given round.
enum Nemesis {
    CrashLeader,
    RestartAll,
    IsolateLeader,
    Heal,
    DropOneIn(u64),
    DelayOneIn(u64),
}

fn apply(sim: &mut SimCluster, event: &Nemesis) {
    match event {
        Nemesis::CrashLeader => {
            if let Some(l) = sim.leader() {
                sim.crash(l);
            }
        }
        Nemesis::RestartAll => {
            for n in 0..sim.len() as u64 {
                sim.restart(n);
            }
        }
        Nemesis::IsolateLeader => {
            if let Some(l) = sim.leader() {
                sim.isolate(&[l]);
            }
        }
        Nemesis::Heal => {
            sim.heal();
            sim.set_drop_one_in(0);
            sim.set_delay_one_in(0);
        }
        Nemesis::DropOneIn(k) => sim.set_drop_one_in(*k),
        Nemesis::DelayOneIn(k) => sim.set_delay_one_in(*k),
    }
}

/// Submits with the clone-and-restore retry discipline: a refused ack
/// restores the RNG, heals the cluster, and tries again — so every
/// acknowledged answer matches the oracle bit-for-bit.
fn submit_acked(
    system: &DProvDb,
    cluster: &Arc<Mutex<SimCluster>>,
    analyst: usize,
    round: usize,
    rng: &mut DpRng,
    refused: &mut usize,
) -> Observed {
    let req = request(analyst, round);
    for _attempt in 0..4 {
        let backup = rng.clone();
        match system.submit_with_rng(AnalystId(analyst), &req, rng) {
            Ok(outcome) => return observe(outcome),
            Err(_) => {
                *rng = backup;
                *refused += 1;
                let mut sim = cluster.lock().unwrap();
                sim.heal();
                sim.set_drop_one_in(0);
                sim.set_delay_one_in(0);
                for n in 0..sim.len() as u64 {
                    sim.restart(n);
                }
                for _ in 0..60 {
                    sim.step();
                }
            }
        }
    }
    panic!("submission never acknowledged even after healing the cluster");
}

/// Runs a schedule, asserts answers + constraints, and returns the
/// faulted system plus cluster and the refused-ack count.
fn run_schedule(
    seed: u64,
    schedule: BTreeMap<usize, Vec<Nemesis>>,
) -> (DProvDb, Arc<Mutex<SimCluster>>, usize) {
    let (oracle, _) = oracle_run(seed);
    let mut system = build_system(seed);
    let cluster = Arc::new(Mutex::new(SimCluster::new(REPLICAS, seed)));
    let recorder = ReplicatedRecorder::new(Arc::clone(&cluster)).with_pump_rounds(PUMP);
    system.set_recorder(Arc::new(recorder));
    let mut rngs = fresh_rngs(seed);
    let mut refused = 0usize;
    let mut outcomes = vec![Vec::new(); ANALYSTS];
    for round in 0..ROUNDS {
        if let Some(events) = schedule.get(&round) {
            let mut sim = cluster.lock().unwrap();
            for event in events {
                apply(&mut sim, event);
            }
        }
        for a in 0..ANALYSTS {
            let observed = submit_acked(&system, &cluster, a, round, &mut rngs[a], &mut refused);
            outcomes[a].push(observed);
        }
    }
    assert_eq!(
        outcomes, oracle,
        "acknowledged answers diverged from the fault-free oracle"
    );
    assert_constraints(&system);
    (system, cluster, refused)
}

fn assert_constraints(system: &DProvDb) {
    let provenance = system.provenance();
    for a in 0..ANALYSTS {
        let analyst = AnalystId(a);
        assert!(
            provenance.row_total(analyst) <= provenance.row_constraint(analyst) + 1e-6,
            "analyst {a} row constraint overspent"
        );
    }
    for view in provenance.view_names() {
        assert!(
            provenance.column_sum(view) <= provenance.col_constraint(view) + 1e-6,
            "column constraint overspent on {view}"
        );
    }
}

/// Replays the committed replicated log (as recovery would) into a map
/// of provenance entries, from the view of one live node.
fn recovered_entries(sim: &SimCluster, node: u64) -> BTreeMap<(usize, String), u64> {
    let mut entries = BTreeMap::new();
    for record in sim.committed_records(node) {
        if let WalRecord::Commit(c) = record {
            entries.insert((c.analyst.0, c.view.clone()), c.new_entry.to_bits());
        }
    }
    entries
}

/// Asserts that recovery from a surviving majority reproduces every
/// acknowledged provenance entry bit-identically.
fn assert_recovery(system: &DProvDb, cluster: &Arc<Mutex<SimCluster>>) {
    let mut sim = cluster.lock().unwrap();
    // Recovery scenario: total restart, then only a majority comes back.
    for n in 0..sim.len() as u64 {
        sim.crash(n);
    }
    sim.heal();
    sim.restart(0);
    sim.restart(1);
    for _ in 0..200 {
        sim.step();
        if sim.leader().is_some() {
            break;
        }
    }
    let leader = sim.leader().expect("a majority must elect a leader");
    // Let the commit index catch up on the survivors.
    for _ in 0..30 {
        sim.step();
    }
    let recovered = recovered_entries(&sim, leader);
    assert!(
        !recovered.is_empty(),
        "the workload must have replicated commits"
    );
    let provenance = system.provenance();
    for (&(analyst, ref view), &bits) in &recovered {
        let acknowledged = provenance.entry(AnalystId(analyst), view);
        assert_eq!(
            bits,
            acknowledged.to_bits(),
            "recovered entry for analyst {analyst} view {view} is not \
             bit-identical to the acknowledged state"
        );
    }
    // Every acknowledged (non-zero) cell is present in the recovered log.
    for a in 0..ANALYSTS {
        for view in provenance.view_names() {
            let acknowledged = provenance.entry(AnalystId(a), view);
            if acknowledged != 0.0 {
                let got = recovered
                    .get(&(a, view.to_string()))
                    .copied()
                    .unwrap_or(0f64.to_bits());
                assert!(
                    f64::from_bits(got) >= acknowledged,
                    "recovered spend below acknowledged spend for \
                     analyst {a} view {view}"
                );
            }
        }
    }
}

#[test]
fn fault_free_cluster_matches_the_oracle_and_recovers() {
    let (system, cluster, refused) = run_schedule(11, BTreeMap::new());
    assert_eq!(refused, 0, "no faults, no refusals");
    assert_recovery(&system, &cluster);
}

#[test]
fn leader_crashes_mid_stream_are_transparent() {
    let schedule = BTreeMap::from([
        (2, vec![Nemesis::CrashLeader]),
        (4, vec![Nemesis::RestartAll]),
        (5, vec![Nemesis::CrashLeader]),
        (7, vec![Nemesis::RestartAll]),
    ]);
    let (system, cluster, _refused) = run_schedule(13, schedule);
    assert_recovery(&system, &cluster);
}

#[test]
fn minority_partition_refuses_acks_then_heals() {
    let schedule = BTreeMap::from([(3, vec![Nemesis::IsolateLeader]), (6, vec![Nemesis::Heal])]);
    let (system, cluster, refused) = run_schedule(17, schedule);
    assert!(
        refused > 0,
        "isolating the leader must refuse at least one ack"
    );
    assert_recovery(&system, &cluster);
}

#[test]
fn message_loss_and_reordering_change_no_answer() {
    let schedule = BTreeMap::from([
        (1, vec![Nemesis::DropOneIn(7), Nemesis::DelayOneIn(5)]),
        (6, vec![Nemesis::Heal]),
    ]);
    let (system, cluster, _refused) = run_schedule(19, schedule);
    assert_recovery(&system, &cluster);
}

#[test]
fn combined_crash_and_partition_schedule_holds_every_property() {
    let schedule = BTreeMap::from([
        (1, vec![Nemesis::DropOneIn(9)]),
        (2, vec![Nemesis::CrashLeader]),
        (3, vec![Nemesis::RestartAll, Nemesis::IsolateLeader]),
        (5, vec![Nemesis::Heal, Nemesis::CrashLeader]),
        (6, vec![Nemesis::RestartAll]),
    ]);
    let (system, cluster, _refused) = run_schedule(23, schedule);
    assert_recovery(&system, &cluster);
}

#[test]
fn nemesis_schedules_are_reproducible() {
    let run = |seed| {
        let schedule = BTreeMap::from([
            (2, vec![Nemesis::CrashLeader]),
            (4, vec![Nemesis::RestartAll]),
        ]);
        let (system, _, refused) = run_schedule(seed, schedule);
        let provenance = system.provenance();
        let spend: Vec<u64> = (0..ANALYSTS)
            .map(|a| provenance.row_total(AnalystId(a)).to_bits())
            .collect();
        (spend, refused)
    };
    assert_eq!(run(29), run(29), "same seed + schedule, same run");
}
