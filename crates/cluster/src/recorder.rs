//! The replication gate: quorum acknowledgement inside the commit path.
//!
//! [`ReplicatedRecorder`] implements [`dprov_core::recorder::Recorder`]
//! and is installed with `DProvDb::set_recorder`, which places it
//! **inside the provenance critical section**: `record_commit` runs
//! after admission control accepts a charge but *before* the charge
//! becomes visible in memory, and an `Err` aborts the submission with no
//! in-memory mutation. Chaining replication here yields the headline
//! distributed-correctness property with zero changes to the core:
//!
//! > **No charge is acknowledged to an analyst unless it is replicated
//! > to a majority of budget-ledger replicas.**
//!
//! The order within `record_commit` is (1) the optional *local* durable
//! recorder — the node's own WAL, exactly as in single-node operation —
//! then (2) [`SimCluster::propose_committed`] for the quorum ack. Either
//! failure aborts the charge. The failure direction is always safe:
//! an entry that was appended locally (or even replicated) but whose ack
//! did not arrive is *refused* to the analyst, so recovery can only find
//! **at least** the acknowledged spend, never less. Over-counting a
//! refused charge on recovery wastes budget, which is privacy-safe.
//!
//! Rollbacks and accesses are replicated too (the tight accountant's
//! state must survive failover), but best-effort like the local WAL
//! path: a lost rollback tombstone leaves a charge voided in memory yet
//! spent on the ledger — again the over-counting direction.
//!
//! [`SimCluster::propose_committed`]: crate::sim::SimCluster::propose_committed

use std::sync::{Arc, Mutex};
use std::time::Instant;

use dprov_core::error::StorageError;
use dprov_core::recorder::{AccessRecord, CommitRecord, Recorder};
use dprov_delta::EncodedBatch;
use dprov_obs::{HistId, MetricsRegistry};
use dprov_storage::wal::WalRecord;

use crate::sim::SimCluster;

/// How many simulation rounds a proposal may pump before the recorder
/// reports the cluster unavailable. Generous relative to election
/// timeouts so transient leader changes retry internally.
pub const DEFAULT_PUMP_ROUNDS: usize = 400;

/// A [`Recorder`] that requires majority replication before any commit
/// is acknowledged (see the module docs).
pub struct ReplicatedRecorder {
    cluster: Arc<Mutex<SimCluster>>,
    /// The node-local durable recorder (usually the WAL-backed store);
    /// `None` for purely replicated (diskless-local) setups.
    inner: Option<Arc<dyn Recorder>>,
    metrics: MetricsRegistry,
    pump_rounds: usize,
}

impl std::fmt::Debug for ReplicatedRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedRecorder")
            .field("pump_rounds", &self.pump_rounds)
            .field("has_inner", &self.inner.is_some())
            .finish_non_exhaustive()
    }
}

impl ReplicatedRecorder {
    /// Gates commits on `cluster`, with no local recorder underneath.
    #[must_use]
    pub fn new(cluster: Arc<Mutex<SimCluster>>) -> Self {
        ReplicatedRecorder {
            cluster,
            inner: None,
            metrics: MetricsRegistry::disabled(),
            pump_rounds: DEFAULT_PUMP_ROUNDS,
        }
    }

    /// Chains the node-local durable recorder before replication (local
    /// WAL append, then quorum ack).
    #[must_use]
    pub fn with_inner(mut self, inner: Arc<dyn Recorder>) -> Self {
        self.inner = Some(inner);
        self
    }

    /// Reports quorum-ack latency into `metrics`.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Overrides the proposal round budget (mostly for tests that want
    /// fast failure under partitions).
    #[must_use]
    pub fn with_pump_rounds(mut self, rounds: usize) -> Self {
        self.pump_rounds = rounds;
        self
    }

    /// The shared cluster handle (for nemesis harnesses).
    #[must_use]
    pub fn cluster(&self) -> Arc<Mutex<SimCluster>> {
        Arc::clone(&self.cluster)
    }

    fn replicate(&self, record: WalRecord) -> Result<(), StorageError> {
        let started = Instant::now();
        let result = self
            .cluster
            .lock()
            .expect("cluster lock poisoned")
            .propose_committed(record, self.pump_rounds);
        match result {
            Ok(_) => {
                self.metrics
                    .observe(HistId::QuorumAck, started.elapsed().as_nanos() as u64);
                Ok(())
            }
            Err(e) => Err(StorageError::Unavailable(format!(
                "replication quorum not reached: {e}"
            ))),
        }
    }
}

impl Recorder for ReplicatedRecorder {
    fn record_commit(&self, record: &CommitRecord) -> Result<(), StorageError> {
        // Local durability first (same as single-node), then the quorum
        // gate. Either failure aborts the charge before it is visible.
        if let Some(inner) = &self.inner {
            inner.record_commit(record)?;
        }
        self.replicate(WalRecord::Commit(record.clone()))
    }

    fn record_access(&self, record: &AccessRecord) -> Result<(), StorageError> {
        if let Some(inner) = &self.inner {
            inner.record_access(record)?;
        }
        self.replicate(WalRecord::Access(*record))
    }

    fn record_rollback(&self, seq: u64) -> Result<(), StorageError> {
        if let Some(inner) = &self.inner {
            inner.record_rollback(seq)?;
        }
        // Best-effort by contract: a lost tombstone over-counts spend on
        // recovery, which is privacy-safe.
        self.replicate(WalRecord::Rollback { seq })
    }

    fn record_update(&self, batch: &EncodedBatch) -> Result<(), StorageError> {
        if let Some(inner) = &self.inner {
            inner.record_update(batch)?;
        }
        self.replicate(WalRecord::Update(batch.clone()))
    }

    fn record_epoch_seal(&self, epoch: u64, through_seq: u64) -> Result<(), StorageError> {
        if let Some(inner) = &self.inner {
            inner.record_epoch_seal(epoch, through_seq)?;
        }
        self.replicate(WalRecord::EpochSeal { epoch, through_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_replicate_and_time_the_quorum_ack() {
        let cluster = Arc::new(Mutex::new(SimCluster::new(3, 1)));
        let metrics = MetricsRegistry::new();
        let rec = ReplicatedRecorder::new(Arc::clone(&cluster)).with_metrics(metrics.clone());
        rec.record_rollback(7).unwrap();
        let sim = cluster.lock().unwrap();
        let leader = sim.leader().unwrap();
        assert_eq!(
            sim.committed_records(leader),
            vec![WalRecord::Rollback { seq: 7 }]
        );
        drop(sim);
        let snap = metrics.snapshot();
        let hist = snap.histogram("cluster.quorum_ack_ns").unwrap();
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn quorum_failure_surfaces_as_unavailable() {
        let cluster = Arc::new(Mutex::new(SimCluster::new(3, 2)));
        {
            let mut sim = cluster.lock().unwrap();
            let leader = sim.elect(200).unwrap();
            // Crash both followers: no majority exists anywhere.
            for i in (0..3).filter(|&i| i != leader) {
                sim.crash(i);
            }
        }
        let rec = ReplicatedRecorder::new(cluster).with_pump_rounds(30);
        let err = rec.record_rollback(1).unwrap_err();
        assert!(matches!(err, StorageError::Unavailable(_)));
    }
}
