//! A deterministic in-process cluster simulation with fault injection.
//!
//! [`SimCluster`] owns one [`RaftCore`] per replica and plays the
//! network: every outgoing message lands in the destination's FIFO
//! inbox, and [`SimCluster::step`] advances the whole group one logical
//! tick and then delivers messages **in node order** until the network
//! is quiet. Because the cores are pure state machines and delivery
//! order is fixed, a run is a function of `(seed, fault schedule)` alone
//! — the jepsen-style nemesis suites replay bit-identically.
//!
//! Fault injection mirrors what the paper's deployment model has to
//! survive:
//!
//! * [`SimCluster::crash`] drops a node's in-memory core but keeps its
//!   *persisted* Raft state (term, vote, log) — exactly what a
//!   [`crate::replica::ReplicaLog`] would have on disk — and
//!   [`SimCluster::restart`] rebuilds the core from it;
//! * [`SimCluster::isolate`] / [`SimCluster::heal`] partition the
//!   network into groups that cannot exchange messages;
//! * [`SimCluster::set_drop_one_in`] / [`SimCluster::set_delay_one_in`]
//!   inject seeded random message loss and reordering.
//!
//! [`SimCluster::propose_committed`] is the replication gate the
//! [`crate::recorder::ReplicatedRecorder`] builds on: it appends a WAL
//! record through the current leader and pumps until the entry is
//! **committed on a majority**, returning an error (never a false ack)
//! when no quorum can be reached under the active faults.

use std::collections::VecDeque;
use std::fmt;

use dprov_api::cluster::ClusterMsg;
use dprov_obs::{CounterId, GaugeId, MetricsRegistry};
use dprov_storage::wal::WalRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::raft::{NodeId, PersistentState, RaftConfig, RaftCore, Role};

/// Why a proposal could not be acknowledged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No live node holds (or could win) leadership within the round
    /// budget — typically a majority is down or partitioned away.
    NoLeader,
    /// A leader accepted the entry but a majority never acknowledged it
    /// within the round budget.
    NoQuorum,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoLeader => write!(f, "no leader reachable (majority down?)"),
            ClusterError::NoQuorum => write!(f, "entry not acknowledged by a majority"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[derive(Debug)]
struct SimNode {
    config: RaftConfig,
    /// `None` while crashed.
    core: Option<RaftCore>,
    /// What this node's disk would hold (kept across crashes).
    persisted: PersistentState,
    /// Partition group; nodes in different groups cannot talk.
    group: u64,
}

/// The deterministic replica-group simulation (see the module docs).
#[derive(Debug)]
pub struct SimCluster {
    nodes: Vec<SimNode>,
    inboxes: Vec<VecDeque<(NodeId, ClusterMsg)>>,
    /// Messages held back one step by the delay fault.
    delayed: Vec<(NodeId, NodeId, ClusterMsg)>,
    drop_one_in: u64,
    delay_one_in: u64,
    fault_rng: StdRng,
    metrics: MetricsRegistry,
    elections_reported: u64,
}

impl SimCluster {
    /// A fresh `n`-replica group, fault-free, metrics disabled.
    #[must_use]
    pub fn new(n: u64, seed: u64) -> Self {
        Self::with_metrics(n, seed, MetricsRegistry::disabled())
    }

    /// A fresh `n`-replica group reporting into `metrics`.
    #[must_use]
    pub fn with_metrics(n: u64, seed: u64, metrics: MetricsRegistry) -> Self {
        assert!(n >= 1, "a replica group needs at least one node");
        let nodes = (0..n)
            .map(|i| {
                let config = RaftConfig::sim(i, n, seed);
                SimNode {
                    core: Some(RaftCore::new(config.clone())),
                    config,
                    persisted: PersistentState::default(),
                    group: 0,
                }
            })
            .collect();
        SimCluster {
            nodes,
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            delayed: Vec::new(),
            drop_one_in: 0,
            delay_one_in: 0,
            fault_rng: StdRng::seed_from_u64(seed ^ 0xFA17),
            metrics,
            elections_reported: 0,
        }
    }

    /// Number of replicas (live or crashed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the group has no replicas (never, in practice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` is currently running.
    #[must_use]
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes[node as usize].core.is_some()
    }

    /// The current leader, if a live node holds the role at the highest
    /// live term (stale leaders in a minority partition still *think*
    /// they lead; the max-term rule picks the real one once visible).
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .filter_map(|n| n.core.as_ref())
            .filter(|c| c.role() == Role::Leader)
            .max_by_key(|c| c.term())
            .map(RaftCore::id)
    }

    /// The committed WAL records on `node` (live nodes only), with the
    /// leaders' no-op barrier entries filtered out — callers replaying
    /// the ledger only ever see real WAL records.
    #[must_use]
    pub fn committed_records(&self, node: NodeId) -> Vec<WalRecord> {
        self.nodes[node as usize]
            .core
            .as_ref()
            .map(|c| {
                c.committed()
                    .iter()
                    .map(|e| e.record.clone())
                    .filter(|r| !crate::raft::is_noop(r))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The persisted (crash-surviving) state of `node`.
    #[must_use]
    pub fn persisted(&self, node: NodeId) -> &PersistentState {
        &self.nodes[node as usize].persisted
    }

    /// Crashes `node`: the volatile core and its inbox vanish, the
    /// persisted state stays.
    pub fn crash(&mut self, node: NodeId) {
        self.nodes[node as usize].core = None;
        self.inboxes[node as usize].clear();
        self.delayed.retain(|&(_, to, _)| to != node);
    }

    /// Restarts a crashed node from its persisted state. No-op when the
    /// node is already up.
    pub fn restart(&mut self, node: NodeId) {
        let n = &mut self.nodes[node as usize];
        if n.core.is_none() {
            n.core = Some(RaftCore::restore(n.config.clone(), n.persisted.clone()));
        }
    }

    /// Partitions `minority` away from the rest of the group. In-flight
    /// messages across the cut are dropped.
    pub fn isolate(&mut self, minority: &[NodeId]) {
        for (i, n) in self.nodes.iter_mut().enumerate() {
            n.group = u64::from(minority.contains(&(i as NodeId)));
        }
        let groups: Vec<u64> = self.nodes.iter().map(|n| n.group).collect();
        self.delayed
            .retain(|&(from, to, _)| groups[from as usize] == groups[to as usize]);
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        for n in &mut self.nodes {
            n.group = 0;
        }
    }

    /// Drops roughly one in `k` messages (0 disables).
    pub fn set_drop_one_in(&mut self, k: u64) {
        self.drop_one_in = k;
    }

    /// Delays roughly one in `k` messages by one step (0 disables).
    pub fn set_delay_one_in(&mut self, k: u64) {
        self.delay_one_in = k;
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: ClusterMsg) {
        if self.nodes[from as usize].group != self.nodes[to as usize].group {
            return; // partitioned
        }
        if self.nodes[to as usize].core.is_none() {
            return; // crashed destination
        }
        if self.drop_one_in > 0 && self.fault_rng.gen_range(0..self.drop_one_in) == 0 {
            return;
        }
        if self.delay_one_in > 0 && self.fault_rng.gen_range(0..self.delay_one_in) == 0 {
            self.delayed.push((from, to, msg));
            return;
        }
        self.inboxes[to as usize].push_back((from, msg));
    }

    /// Persists node `i`'s durable state (what a `ReplicaLog` fsync
    /// would do). Called before that node's messages leave, so an acked
    /// entry is always on "disk" first.
    fn sync_node(&mut self, i: usize) {
        if let Some(core) = &self.nodes[i].core {
            self.nodes[i].persisted = core.persistent();
        }
    }

    fn report_metrics(&mut self) {
        let total: u64 = self
            .nodes
            .iter()
            .filter_map(|n| n.core.as_ref())
            .map(RaftCore::elections_won)
            .sum();
        if total > self.elections_reported {
            self.metrics
                .add(CounterId::LeaderElections, total - self.elections_reported);
            self.elections_reported = total;
        }
        if let Some(l) = self.leader() {
            let lag = self.nodes[l as usize]
                .core
                .as_ref()
                .map_or(0, RaftCore::worst_lag);
            self.metrics.gauge_set(GaugeId::ReplicationLag, lag as f64);
        }
    }

    /// Advances every live node one tick, then delivers messages in node
    /// order until the network is quiet. Delayed messages from the
    /// previous step are released first.
    pub fn step(&mut self) {
        let held = std::mem::take(&mut self.delayed);
        for (from, to, msg) in held {
            // Re-routed without the delay fault (one-step delay only).
            if self.nodes[from as usize].group == self.nodes[to as usize].group
                && self.nodes[to as usize].core.is_some()
            {
                self.inboxes[to as usize].push_back((from, msg));
            }
        }
        for i in 0..self.nodes.len() {
            let out = match &mut self.nodes[i].core {
                Some(core) => core.tick(),
                None => continue,
            };
            self.sync_node(i);
            for (dest, msg) in out {
                self.route(i as NodeId, dest, msg);
            }
        }
        self.deliver_all();
        self.report_metrics();
    }

    /// Delivers queued messages (in node order, FIFO per inbox) until
    /// every inbox is empty.
    fn deliver_all(&mut self) {
        loop {
            let mut quiet = true;
            for i in 0..self.nodes.len() {
                while let Some((from, msg)) = self.inboxes[i].pop_front() {
                    quiet = false;
                    let out = match &mut self.nodes[i].core {
                        Some(core) => core.handle(from, msg),
                        None => continue,
                    };
                    self.sync_node(i);
                    for (dest, m) in out {
                        self.route(i as NodeId, dest, m);
                    }
                }
            }
            if quiet {
                break;
            }
        }
    }

    /// Steps until a leader exists (at most `max_rounds` steps).
    pub fn elect(&mut self, max_rounds: usize) -> Result<NodeId, ClusterError> {
        for _ in 0..max_rounds {
            if let Some(l) = self.leader() {
                return Ok(l);
            }
            self.step();
        }
        self.leader().ok_or(ClusterError::NoLeader)
    }

    /// Appends `record` through the current leader and pumps until a
    /// majority has acknowledged it (the leader's commit index covers
    /// it). Errors — `NoLeader`, `NoQuorum`, or leadership lost before
    /// the commit was observed — mean the entry **must not be
    /// acknowledged** to the caller; it may still commit later, which is
    /// the safe direction (recovered spend ≥ acknowledged spend).
    pub fn propose_committed(
        &mut self,
        record: WalRecord,
        max_rounds: usize,
    ) -> Result<u64, ClusterError> {
        let leader = self.elect(max_rounds)?;
        let li = leader as usize;
        let term;
        let index;
        {
            let core = self.nodes[li].core.as_mut().ok_or(ClusterError::NoLeader)?;
            term = core.term();
            let (idx, msgs) = core.propose(record).ok_or(ClusterError::NoLeader)?;
            index = idx;
            self.sync_node(li);
            for (dest, m) in msgs {
                self.route(leader, dest, m);
            }
        }
        self.deliver_all();
        for _ in 0..max_rounds {
            match self.nodes[li].core.as_ref() {
                Some(core) if core.role() == Role::Leader && core.term() == term => {
                    if core.commit_index() >= index {
                        self.report_metrics();
                        return Ok(index);
                    }
                }
                // Crashed or deposed before the ack: refuse. The entry
                // may survive via the new leader, but the caller must
                // not treat it as acknowledged.
                _ => return Err(ClusterError::NoQuorum),
            }
            self.step();
        }
        Err(ClusterError::NoQuorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rollback(seq: u64) -> WalRecord {
        WalRecord::Rollback { seq }
    }

    #[test]
    fn commits_replicate_to_every_node() {
        let mut sim = SimCluster::new(3, 1);
        for seq in 0..4 {
            sim.propose_committed(rollback(seq), 100).unwrap();
        }
        for _ in 0..5 {
            sim.step();
        }
        let want: Vec<WalRecord> = (0..4).map(rollback).collect();
        for node in 0..3 {
            assert_eq!(sim.committed_records(node), want, "node {node}");
        }
    }

    #[test]
    fn majority_survives_one_crash() {
        let mut sim = SimCluster::new(3, 2);
        sim.propose_committed(rollback(0), 100).unwrap();
        let leader = sim.leader().unwrap();
        sim.crash(leader);
        // The two survivors elect a new leader and keep committing.
        sim.propose_committed(rollback(1), 200).unwrap();
        let new_leader = sim.leader().unwrap();
        assert_ne!(new_leader, leader);
        assert_eq!(
            sim.committed_records(new_leader),
            vec![rollback(0), rollback(1)]
        );
    }

    #[test]
    fn minority_partition_blocks_acks_until_heal() {
        let mut sim = SimCluster::new(3, 3);
        sim.propose_committed(rollback(0), 100).unwrap();
        let leader = sim.leader().unwrap();
        // Cut the leader off with no followers: no quorum for it.
        sim.isolate(&[leader]);
        let err = sim.propose_committed(rollback(1), 40).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::NoQuorum | ClusterError::NoLeader
        ));
        sim.heal();
        sim.propose_committed(rollback(2), 200).unwrap();
        let l = sim.leader().unwrap();
        let committed = sim.committed_records(l);
        assert_eq!(committed.first(), Some(&rollback(0)));
        assert_eq!(committed.last(), Some(&rollback(2)));
    }

    #[test]
    fn crashed_node_recovers_its_persisted_log() {
        let mut sim = SimCluster::new(3, 4);
        for seq in 0..3 {
            sim.propose_committed(rollback(seq), 100).unwrap();
        }
        for _ in 0..5 {
            sim.step();
        }
        let victim = sim.leader().unwrap();
        sim.crash(victim);
        assert!(!sim.is_up(victim));
        // Persisted log survived the crash (plus election no-ops).
        let data = sim
            .persisted(victim)
            .entries
            .iter()
            .filter(|e| !crate::raft::is_noop(&e.record))
            .count();
        assert_eq!(data, 3);
        sim.restart(victim);
        sim.propose_committed(rollback(3), 200).unwrap();
        for _ in 0..10 {
            sim.step();
        }
        let want: Vec<WalRecord> = (0..4).map(rollback).collect();
        assert_eq!(sim.committed_records(victim), want);
    }

    #[test]
    fn message_loss_and_delay_only_slow_things_down() {
        let mut sim = SimCluster::new(3, 5);
        sim.set_drop_one_in(5);
        sim.set_delay_one_in(4);
        for seq in 0..6 {
            sim.propose_committed(rollback(seq), 400).unwrap();
        }
        sim.set_drop_one_in(0);
        sim.set_delay_one_in(0);
        for _ in 0..20 {
            sim.step();
        }
        let l = sim.leader().unwrap();
        let want: Vec<WalRecord> = (0..6).map(rollback).collect();
        assert_eq!(sim.committed_records(l), want);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed| {
            let mut sim = SimCluster::new(5, seed);
            sim.set_drop_one_in(7);
            let mut acks = Vec::new();
            for seq in 0..5 {
                acks.push(sim.propose_committed(rollback(seq), 300).is_ok());
            }
            (sim.leader(), acks)
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn metrics_record_elections_and_lag() {
        let metrics = MetricsRegistry::new();
        let mut sim = SimCluster::with_metrics(3, 6, metrics.clone());
        sim.propose_committed(rollback(0), 100).unwrap();
        let snap = metrics.snapshot();
        let elections = snap.counter("cluster.leader_elections").unwrap_or(0);
        assert!(elections >= 1);
    }
}
